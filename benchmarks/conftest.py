"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
with a reduced parameterisation (so ``pytest benchmarks/ --benchmark-only``
completes in minutes) and prints the resulting rows, mirroring what the
corresponding full experiment in ``repro.experiments`` produces.  The
``examples/reproduce_paper.py`` script runs the full-size versions.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(ref): the paper table/figure a benchmark regenerates"
    )


@pytest.fixture(scope="session")
def print_rows():
    """Helper that pretty-prints experiment rows beneath the benchmark output."""

    from repro.experiments import render_rows

    def _print(rows, title, columns=None):
        print()
        print(render_rows(rows, columns=columns, title=title))
        return rows

    return _print
