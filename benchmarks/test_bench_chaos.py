"""Serving goodput under injected faults (beyond-paper robustness).

A full :func:`repro.experiments.chaos_sweep.run_chaos_sweep` run — the
same seeded chat stream served fault-free, under an empty fault schedule
(the determinism control), a transient single-shard crash with and
without retries, a correlated pool crash and a rolling restart.  Rows
land in ``BENCH_chaos.json`` for CI trend tracking and the benchmark
*gates* the robustness claims the subsystem exists for: an empty
schedule must be bit-for-bit identical to the no-injector run, retries
must strictly beat no-retries on SLO goodput under a transient crash,
and post-recovery goodput must return to within 10% of the fault-free
baseline.  Set ``BENCH_CHAOS_JSON`` to redirect the artifact path.
"""

import os

import pytest

from repro.experiments.bench_output import write_bench_chaos_json
from repro.experiments.chaos_sweep import (
    CHAOS_SWEEP_COLUMNS,
    gates_pass,
    run_chaos_sweep,
)

BENCH_JSON = os.environ.get("BENCH_CHAOS_JSON", "BENCH_chaos.json")

SWEEP_KWARGS = {
    "num_shards": 4,
    "load_factor": 0.7,
    "num_requests": 120,
    "generation_len": 8,
    "max_retries": 2,
    "retry_backoff": 0.25,
    "seed": 0,
}


@pytest.mark.paper_artifact("Chaos sweep (beyond-paper)")
def test_bench_chaos_sweep(benchmark, print_rows):
    sweep = benchmark.pedantic(
        run_chaos_sweep,
        kwargs=SWEEP_KWARGS,
        iterations=1,
        rounds=1,
    )
    rows = sweep["rows"]
    gates = sweep["gates"]
    print_rows(
        rows,
        columns=list(CHAOS_SWEEP_COLUMNS),
        title=(
            "Chaos sweep: crash / recovery / retry scenarios @ "
            "mixtral-8x7b x4, Poisson arrivals"
        ),
    )
    document = write_bench_chaos_json(
        BENCH_JSON,
        rows,
        gates=gates,
        meta={
            "source": "benchmarks/test_bench_chaos.py",
            "model": "mixtral-8x7b",
            "hardware": "1xT4",
            "workload": "chat",
            **SWEEP_KWARGS,
        },
    )
    by_name = {row["scenario"]: row for row in rows}
    # Every scenario served the identical offered stream (retries add
    # re-submissions on top of the same originals).
    assert by_name["fault-free"]["offered"] == SWEEP_KWARGS["num_requests"]
    assert by_name["transient-crash"]["crashes"] == 1
    assert by_name["transient-crash"]["kv_bytes_lost"] > 0
    # The robustness gates: determinism of the empty schedule ...
    assert gates["empty_schedule_identical"] is True
    # ... retries strictly win under a transient single-shard crash ...
    assert (
        by_name["transient-crash+retry"]["goodput"]
        > by_name["transient-crash"]["goodput"]
    )
    # ... and the recovered cluster returns to baseline goodput.
    assert gates["post_recovery_goodput_ratio"] >= (
        1.0 - gates["recovery_tolerance"]
    )
    assert gates_pass(gates)
    assert document["gates"] == gates
    assert document["meta"]["source"] == "benchmarks/test_bench_chaos.py"
