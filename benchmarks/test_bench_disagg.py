"""Disaggregated vs unified serving under mixed traffic (beyond-paper).

A reduced :func:`repro.experiments.disagg_sweep.run_disagg_sweep` run —
one merged chat + long-prompt stream served by unified, disaggregated and
heterogeneous-fast-prefill clusters at equal device count.  The rows land
in ``BENCH_disagg.json`` for CI trend tracking, and the benchmark *gates*
the architecture claims the subsystem exists for: disaggregation must
match or beat unified SLO-goodput on this traffic, and the heterogeneous
fast-prefill cluster must beat the same-count all-slow split.  Set
``BENCH_DISAGG_JSON`` to redirect the artifact path.
"""

import os

import pytest

from repro.experiments.bench_output import write_bench_serving_json
from repro.experiments.disagg_sweep import DISAGG_COLUMNS, run_disagg_sweep

BENCH_JSON = os.environ.get("BENCH_DISAGG_JSON", "BENCH_disagg.json")

SWEEP_KWARGS = {
    "num_shards": 4,
    "load_factor": 3.0,
    "chat_requests": 48,
    "long_requests": 8,
    "chat_generation_len": 64,
    "long_generation_len": 32,
    "seed": 0,
}


@pytest.mark.paper_artifact("Disaggregation sweep (beyond-paper)")
def test_bench_disagg_sweep(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_disagg_sweep,
        kwargs=SWEEP_KWARGS,
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        columns=list(DISAGG_COLUMNS),
        title=(
            "Disaggregation sweep: mixed chat + summarization @ S1 x4, "
            "Poisson arrivals"
        ),
    )
    document = write_bench_serving_json(
        BENCH_JSON,
        rows,
        meta={
            "source": "benchmarks/test_bench_disagg.py",
            "model": "mixtral-8x7b",
            "hardware": "1xT4",
            "fast_hardware": "1xL4",
            **SWEEP_KWARGS,
        },
    )
    by_config = {row["config"]: row for row in rows}
    assert set(by_config) == {"unified", "disagg", "disagg-het"}
    # Every configuration faced the identical offered stream.
    offered = {row["offered"] for row in rows}
    assert len(offered) == 1
    # The architecture gates: disaggregation holds the tight TPOT SLO that
    # unified prefill interference breaks, at equal device count ...
    assert by_config["disagg"]["goodput"] >= by_config["unified"]["goodput"]
    # ... and putting the fast device type where the FLOPs are (prefill)
    # beats the same-count all-slow split.
    assert by_config["disagg-het"]["goodput"] > by_config["disagg"]["goodput"]
    # Migration happened and was conserved into decode-side completions.
    assert by_config["disagg"]["migrated"] > 0
    assert by_config["disagg-het"]["migrated"] > 0
    assert by_config["unified"]["migrated"] == 0
    assert document["meta"]["source"] == "benchmarks/test_bench_disagg.py"
