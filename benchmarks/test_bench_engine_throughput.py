"""Micro-benchmarks of the core library itself (not a paper artifact).

These keep an eye on the cost of the pieces the experiment harnesses lean
on: the policy search, a CGOPipe step simulation and a functional-engine
decode step.  They are benchmarked properly (multiple rounds) because they
are fast.
"""

import numpy as np
import pytest

from repro.core.optimizer import PolicyOptimizer
from repro.core.policy import Policy
from repro.engine import MoETransformer, MoEWeights, ReferenceExecutor
from repro.hardware import get_hardware
from repro.models import get_model
from repro.schedules import CGOPipeSchedule
from repro.workloads import mtbench


@pytest.mark.paper_artifact("infrastructure")
def test_policy_search_latency(benchmark):
    """§B.2: policy generation is fast (the paper's MILP takes <1 minute)."""
    model = get_model("mixtral-8x7b")
    hardware = get_hardware("1xT4")
    workload = mtbench(generation_len=128)

    def search():
        return PolicyOptimizer(
            model=model, hardware=hardware, workload=workload, padded=True
        ).search()

    result = benchmark(search)
    assert result.throughput > 0


@pytest.mark.paper_artifact("infrastructure")
def test_cgopipe_step_simulation_latency(benchmark):
    model = get_model("mixtral-8x7b")
    hardware = get_hardware("1xT4")
    schedule = CGOPipeSchedule(model, hardware, max_sim_layers=4)
    policy = Policy(
        batch_size=512, micro_batch_size=64, attention_on_gpu=False,
        ffn_on_gpu=True, weights_gpu_ratio=0.05,
    )
    timing = benchmark(schedule.step_timing, policy, 500)
    assert timing.step_time > 0


@pytest.mark.paper_artifact("infrastructure")
def test_functional_engine_decode_step(benchmark):
    config = get_model("tiny-moe")
    model = MoETransformer(MoEWeights.initialize(config, seed=0))
    executor = ReferenceExecutor(model)
    rng = np.random.default_rng(0)
    prompts = rng.integers(0, config.vocab_size, size=(8, 16))
    result = executor.generate(prompts, generation_len=2)

    def step():
        kv = result.kv_state.copy()
        tokens = result.tokens_per_step[-1]
        return executor.decode_step(tokens, kv)

    logits = benchmark(step)
    assert logits.shape == (8, config.vocab_size)
