"""Figure 10: best-policy composition across hardware configurations."""

import pytest

from repro.experiments import run_hardware_sweep
from repro.experiments.hardware_sweep import offload_trends


@pytest.mark.paper_artifact("Figure 10")
def test_fig10_policy_vs_hardware_sweep(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_hardware_sweep,
        kwargs={
            "cpu_gpu_bandwidths_gb": (100, 300, 500),
            "cpu_scaling_ratios": (1, 4, 10),
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        title="Figure 10: best policy on 2xA100-80G (prompt 512, gen 32)",
        columns=[
            "cpu_gpu_bandwidth_gb", "cpu_scaling_ratio", "weights_on_cpu",
            "kv_cache_on_cpu", "attention_on_cpu", "throughput", "error",
        ],
    )
    trends = print_rows([offload_trends(rows)], title="Figure 10 trends")
    trend = trends[0]
    # Paper: KV-cache offloading (CPU attention) only pays off with a strong
    # CPU.  This trend reproduces robustly.
    assert (
        trend["kv_on_cpu_at_high_cpu_scale"]
        > trend["kv_on_cpu_at_low_cpu_scale"]
    )
    # Paper: faster interconnects shift weights toward the CPU.  Under the
    # grid-search optimizer the near-optimal policies are ties in this
    # GPU-rich regime, so the weight trend is reported but not asserted
    # (see EXPERIMENTS.md).
    assert "weights_on_cpu_at_high_bandwidth" in trend
    # Every swept hardware point admits a feasible policy.
    assert all(row.get("error") is None for row in rows)
