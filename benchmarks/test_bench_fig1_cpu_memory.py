"""Figure 1: generation throughput vs. CPU memory for three systems."""

import pytest

from repro.experiments import run_cpu_memory_sweep
from repro.experiments.throughput_vs_cpumem import cpu_memory_to_match


@pytest.mark.paper_artifact("Figure 1")
def test_fig1_throughput_vs_cpu_memory(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_cpu_memory_sweep,
        kwargs={
            "cpu_memory_gb": (128, 160, 192, 256, 320),
            "max_sim_layers": 3,
            "simulate": True,
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        title="Figure 1: throughput vs CPU memory (MTBench @ S1, gen len 128)",
        columns=["cpu_memory_gb", "system", "throughput", "batch_size"],
    )
    saving = cpu_memory_to_match(rows)
    print_rows([saving], title="Figure 1 headline: CPU memory needed to match FlexGen's best")
    assert saving["cpu_memory_saving"] >= 2.0
