"""Figure 4: HRM placement of the GQA attention block (decode, context 512)."""

import pytest

from repro.analysis import attention_case_study
from repro.hardware import get_hardware
from repro.models import get_model


@pytest.mark.paper_artifact("Figure 4")
def test_fig4_hrm_attention_case_study(benchmark, print_rows):
    model = get_model("mixtral-8x7b")
    hardware = get_hardware("1xL4")
    study = benchmark(attention_case_study, model, hardware, 512)
    rows = print_rows(
        study.as_rows(),
        title="Figure 4: Mixtral 8x7B GQA attention on the L4 HRM (context 512)",
    )
    # Paper conclusion: both fp16 and int4 KV sit below P1 -> CPU attention.
    for row in rows:
        assert row["prefer_cpu"]
        assert row["intensity"] < row["p1_intensity"]
