"""Figure 5: HRM placement of the MoE FFN block across batch sizes."""

import pytest

from repro.analysis import ffn_case_study
from repro.hardware import get_hardware
from repro.models import get_model


@pytest.mark.paper_artifact("Figure 5")
def test_fig5_hrm_ffn_case_study(benchmark, print_rows):
    model = get_model("mixtral-8x7b")
    hardware = get_hardware("1xL4")
    study = benchmark(
        ffn_case_study, model, hardware, 128, (32, 128, 1024, 16384)
    )
    print_rows(
        study.as_rows(),
        title="Figure 5: Mixtral 8x7B MoE FFN on the L4 HRM (mu = 128)",
    )
    print_rows(
        [
            {
                "P1_intensity": study.p1_intensity,
                "P2_intensity": study.p2_intensity,
                "kernel_gflops_at_mu128": study.kernel_performance / 1e9,
                "balance_batch_size": study.balance_batch_size,
            }
        ],
        title="Figure 5 turning points",
    )
    assert study.p1_intensity < study.p2_intensity
    assert study.attainable == sorted(study.attainable)
    assert study.balance_batch_size is not None
