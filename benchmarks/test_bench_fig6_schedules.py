"""Figure 6: CGOPipe vs. the baseline decode schedules."""

import pytest

from repro.experiments import run_schedule_comparison
from repro.experiments.pipeline_diagram import comparison_rows


@pytest.mark.paper_artifact("Figure 6")
def test_fig6_schedule_comparison(benchmark, print_rows):
    results = benchmark.pedantic(
        run_schedule_comparison,
        kwargs={"max_sim_layers": 6},
        iterations=1,
        rounds=1,
    )
    rows = print_rows(
        comparison_rows(results),
        title="Figure 6: decode schedules (Mixtral 8x7B @ S1, N=960, mu=64, ctx=512)",
    )
    print()
    for result in results:
        print(f"--- {result.schedule} ---")
        print(result.gantt)
    cgopipe = next(r for r in rows if r["schedule"] == "cgopipe")
    for row in rows:
        if row["schedule"] != "cgopipe":
            assert row["step_time_ms"] > cgopipe["step_time_ms"]
            assert row["gpu_bubble_fraction"] > cgopipe["gpu_bubble_fraction"]
