"""Figure 7: end-to-end MTBench throughput across settings and systems."""

import pytest

from repro.experiments import run_mtbench_experiment
from repro.experiments.e2e import speedup_summary


@pytest.mark.paper_artifact("Figure 7")
def test_fig7_mtbench_single_gpu(benchmark, print_rows):
    """S1 and S2 (single T4 / single L4) across all four generation lengths."""
    rows = benchmark.pedantic(
        run_mtbench_experiment,
        kwargs={
            "settings": ("S1", "S2"),
            "generation_lengths": (32, 64, 128, 256),
            "max_sim_layers": 4,
            "include_unpadded": True,
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        title="Figure 7 (S1, S2): MTBench generation throughput",
        columns=[
            "setting", "generation_len", "system", "throughput",
            "batch_size", "micro_batch_size",
        ],
    )
    summary = print_rows(
        speedup_summary(rows),
        title="Figure 7 speedups: MoE-Lightning vs best baseline",
    )
    for cell in summary:
        assert cell["padded_speedup"] > 1.0
        assert cell["unpadded_speedup"] > cell["padded_speedup"]


@pytest.mark.paper_artifact("Figure 7")
def test_fig7_mtbench_multi_gpu(benchmark, print_rows):
    """S6 and S7 (Mixtral 8x22B on 2x / 4x T4), reduced generation lengths."""
    rows = benchmark.pedantic(
        run_mtbench_experiment,
        kwargs={
            "settings": ("S6", "S7"),
            "generation_lengths": (32, 128),
            "max_sim_layers": 3,
            "include_unpadded": False,
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        title="Figure 7 (S6, S7): Mixtral 8x22B MTBench generation throughput",
        columns=[
            "setting", "generation_len", "system", "throughput",
            "batch_size", "micro_batch_size", "error",
        ],
    )
    summary = speedup_summary(rows)
    for cell in summary:
        assert cell["padded_speedup"] > 1.0
