"""Figure 8: DBRX with tensor parallelism on 2x and 4x T4 nodes."""

import pytest

from repro.experiments import run_tp_scaling
from repro.experiments.tp_scaling import scaling_factors


@pytest.mark.paper_artifact("Figure 8")
def test_fig8_dbrx_tensor_parallel_scaling(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_tp_scaling,
        kwargs={
            "settings": ("S8", "S9"),
            "generation_lengths": (32, 64, 128, 256),
            "max_sim_layers": 3,
            "simulate": True,
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        title="Figure 8: DBRX MTBench throughput, 2xT4 (S8) vs 4xT4 (S9)",
        columns=[
            "setting", "generation_len", "throughput", "batch_size",
            "micro_batch_size", "weights_gpu_ratio", "error",
        ],
    )
    factors = print_rows(
        scaling_factors(rows), title="Figure 8 scaling factors (4xT4 / 2xT4)"
    )
    # More GPUs always help, driven by the larger resident-weight fraction.
    # (The paper reports 2.1-2.8x on its testbed; the PCIe-bound simulator
    # reproduces the direction with a smaller factor — see EXPERIMENTS.md.)
    for factor in factors:
        assert factor["scaling_factor"] > 1.05
