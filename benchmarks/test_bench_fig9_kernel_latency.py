"""Figure 9: CPU attention vs. MoE FFN vs. KV-transfer latency."""

import pytest

from repro.experiments import run_kernel_latency_ablation
from repro.experiments.ablation_kernels import crossover_points


@pytest.mark.paper_artifact("Figure 9")
def test_fig9_kernel_latency_comparison(benchmark, print_rows):
    rows = benchmark(
        run_kernel_latency_ablation,
        "S2",
        (32, 64, 128, 256),
        (128, 256, 512, 1024, 2048),
    )
    print_rows(
        rows,
        title="Figure 9: per-layer latency (seconds) on the S2 host",
        columns=[
            "micro_batch_size", "context_len", "kv_transfer_s",
            "cpu_attention_s", "moe_ffn_s", "kv_over_cpu_attention",
        ],
    )
    crossings = print_rows(
        crossover_points(rows),
        title="Figure 9: context length where CPU attention overtakes the FFN",
    )
    for row in rows:
        # CPU attention is consistently faster than swapping the same KV
        # over PCIe (paper: 3-4x on its testbed).
        assert row["kv_transfer_s"] > 1.5 * row["cpu_attention_s"]
    ffn_latencies = [r["moe_ffn_s"] for r in rows]
    assert max(ffn_latencies) < 1.3 * min(ffn_latencies)
    # CPU attention eventually becomes the bottleneck at large mu x context.
    assert any(c["crossover_context_len"] is not None for c in crossings)
