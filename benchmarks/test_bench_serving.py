"""Online serving: Poisson load sweep (throughput vs. tail latency).

Not a paper artifact — the paper evaluates static batches.  This benchmark
exercises the serving subsystem the way the figures exercise the offline
harness: a reduced sweep whose rows are printed beneath the timing.
"""

import pytest

from repro.experiments import run_serving_sweep
from repro.experiments.serving_sweep import SWEEP_COLUMNS


@pytest.mark.paper_artifact("Serving sweep (beyond-paper)")
def test_bench_serving_sweep(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_serving_sweep,
        kwargs={
            "load_factors": (0.5, 2.0, 8.0),
            "system_names": ("moe-lightning", "flexgen"),
            "num_requests": 32,
            "generation_len": 16,
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        columns=list(SWEEP_COLUMNS),
        title="Serving sweep: MTBench @ S1, Poisson arrivals, FCFS scheduling",
    )
    assert len(rows) == 6  # 3 rates x 2 systems
    for system in ("moe-lightning", "flexgen"):
        points = [row for row in rows if row["system"] == system]
        # Offered load is absorbed or shed, never silently lost.
        for row in points:
            assert row["completed"] + row["rejected"] == row["offered"]
        # Queueing delay grows with offered load (weakly, tail metric).
        ttfts = [row["ttft_p99"] for row in points]
        assert ttfts[-1] >= ttfts[0]
        # SLO attainment does not improve when load octuples.
        assert points[-1]["goodput_fraction"] <= points[0]["goodput_fraction"] + 1e-9
