"""Online serving: Poisson load sweep (throughput vs. tail latency).

Not a paper artifact — the paper evaluates static batches.  This benchmark
exercises the serving subsystem the way the figures exercise the offline
harness: a reduced sweep whose rows are printed beneath the timing, and —
unlike the figure benchmarks — also written to ``BENCH_serving.json``
(throughput, TTFT/TPOT p50/p99, SLO-goodput) so CI can track the serving
trajectory as a machine-readable artifact.  Set ``BENCH_SERVING_JSON`` to
redirect the artifact path.
"""

import os

import pytest

from repro.experiments import run_overlap_sweep, run_serving_sweep, run_shard_scaling
from repro.experiments.bench_output import write_bench_serving_json
from repro.experiments.overlap_sweep import OVERLAP_SWEEP_COLUMNS
from repro.experiments.serving_sweep import SWEEP_COLUMNS
from repro.experiments.shard_scaling import SHARD_SCALING_COLUMNS

BENCH_JSON = os.environ.get("BENCH_SERVING_JSON", "BENCH_serving.json")
BENCH_OVERLAP_JSON = os.environ.get(
    "BENCH_SERVING_OVERLAP_JSON", "BENCH_serving_overlap.json"
)


@pytest.mark.paper_artifact("Serving sweep (beyond-paper)")
def test_bench_serving_sweep(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_serving_sweep,
        kwargs={
            "load_factors": (0.5, 2.0, 8.0),
            "system_names": ("moe-lightning", "flexgen"),
            "num_requests": 32,
            "generation_len": 16,
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        columns=list(SWEEP_COLUMNS),
        title="Serving sweep: MTBench @ S1, Poisson arrivals, FCFS scheduling",
    )
    document = write_bench_serving_json(
        BENCH_JSON,
        rows,
        meta={
            "source": "benchmarks/test_bench_serving.py",
            "model": "mixtral-8x7b",
            "hardware": "1xT4",
            "workload": "mtbench",
            "generation_len": 16,
            "num_requests": 32,
            "seed": 0,
        },
    )
    assert set(document["summary"]) == {"moe-lightning", "flexgen"}
    for metrics in document["summary"].values():
        assert metrics["token_throughput"] > 0
        assert metrics["ttft_p99"] >= metrics["ttft_p50"] > 0
        assert metrics["tpot_p99"] >= metrics["tpot_p50"] > 0
    assert len(rows) == 6  # 3 rates x 2 systems
    for system in ("moe-lightning", "flexgen"):
        points = [row for row in rows if row["system"] == system]
        # Offered load is absorbed or shed, never silently lost.
        for row in points:
            assert row["completed"] + row["rejected"] == row["offered"]
        # Queueing delay grows with offered load (weakly, tail metric).
        ttfts = [row["ttft_p99"] for row in points]
        assert ttfts[-1] >= ttfts[0]
        # SLO attainment does not improve when load octuples.
        assert points[-1]["goodput_fraction"] <= points[0]["goodput_fraction"] + 1e-9


@pytest.mark.paper_artifact("Shard scaling (beyond-paper)")
def test_bench_shard_scaling(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_shard_scaling,
        kwargs={
            "shard_counts": (1, 2, 4),
            "router": "least-loaded",
            "num_requests": 32,
            "generation_len": 8,
            "load_factor": 4.0,
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        columns=list(SHARD_SCALING_COLUMNS),
        title="Shard scaling: MTBench @ S1 x{1,2,4}, least-loaded routing",
    )
    assert [row["num_shards"] for row in rows] == [1, 2, 4]
    throughputs = [row["token_throughput"] for row in rows]
    # More shards absorb the saturating stream strictly faster.
    assert throughputs[1] > throughputs[0]
    assert throughputs[2] > throughputs[1]
    # Tail TTFT shrinks as queues drain across shards.
    assert rows[-1]["ttft_p99"] < rows[0]["ttft_p99"]
    for row in rows:
        assert 0.0 < row["shard_util_min"] <= 1.0


@pytest.mark.paper_artifact("Overlapped prefill/decode streams (beyond-paper)")
def test_bench_overlap_sweep(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_overlap_sweep,
        kwargs={
            "load_factors": (2.0, 4.0),
            "num_requests": 32,
            "generation_len": 16,
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        columns=list(OVERLAP_SWEEP_COLUMNS),
        title="Overlap sweep: chat @ S1, serialized vs. overlapped streams",
    )
    document = write_bench_serving_json(
        BENCH_OVERLAP_JSON,
        rows,
        meta={
            "source": "benchmarks/test_bench_serving.py",
            "model": "mixtral-8x7b",
            "hardware": "1xT4",
            "workload": "chat",
            "generation_len": 16,
            "num_requests": 32,
            "seed": 0,
        },
    )
    assert set(document["summary"]) == {
        "moe-lightning (overlap off)",
        "moe-lightning (overlap on)",
    }
    assert len(rows) == 4  # 2 load factors x {off, on}
    for off_row, on_row in zip(rows[::2], rows[1::2]):
        assert off_row["overlap"] == "off" and on_row["overlap"] == "on"
        # The overlapped engine wins on decode smoothness and goodput.
        assert on_row["mean_tpot"] < off_row["mean_tpot"]
        assert on_row["goodput"] >= off_row["goodput"]
        assert on_row["overlap_fraction"] > 0.0
        assert off_row["overlap_fraction"] == 0.0
