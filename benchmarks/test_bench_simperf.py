"""Simulator raw speed: events/sec of the streaming serving hot path.

Not a paper artifact — this measures the simulator itself.  One reduced
simperf sweep (streaming mode across stream lengths and shard counts, plus
the matched reference pair on a calibration stream) runs under the
benchmark timer and lands in ``BENCH_simperf.json`` so CI can gate on the
event rate: the artifact records absolute events/sec, the streaming hot
path's speedup over both the retained time-sliced loop and the pre-PR
baseline, and a peak-memory row for the flat-memory claim.  Set
``BENCH_SIMPERF_JSON`` to redirect the artifact path.
"""

import os

import pytest

from repro.experiments.bench_output import write_bench_simperf_json
from repro.experiments.simperf_sweep import (
    CACHE_RATIO_FLOOR,
    SIMPERF_COLUMNS,
    cache_aware_ratio,
    check_near_linear_scaling,
    run_simperf_sweep,
    speedup_vs_pre_pr,
    speedup_vs_reference,
)

BENCH_JSON = os.environ.get("BENCH_SIMPERF_JSON", "BENCH_simperf.json")

STREAM_LENGTHS = (5_000, 20_000)
SHARD_COUNTS = (4, 16)
MEMORY_AT = 20_000


@pytest.mark.paper_artifact("Simulator raw speed (beyond-paper)")
def test_bench_simperf_sweep(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_simperf_sweep,
        kwargs={
            "stream_lengths": STREAM_LENGTHS,
            "shard_counts": SHARD_COUNTS,
            "with_reference": True,
            "with_prefix_cache": True,
            "trace_memory_at": MEMORY_AT,
            "seed": 0,
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        columns=list(SIMPERF_COLUMNS),
        title="Simulator raw speed: streaming hot path vs. reference loop",
    )
    speedup = speedup_vs_reference(rows)
    pre_pr_speedup = speedup_vs_pre_pr(rows)
    cache_ratio = cache_aware_ratio(rows)
    document = write_bench_simperf_json(
        BENCH_JSON,
        rows,
        meta={
            "source": "benchmarks/test_bench_simperf.py",
            "model": "mixtral-8x7b",
            "hardware": "1xT4",
            "workload": "chat",
            "stream_lengths": str(STREAM_LENGTHS),
            "shard_counts": str(SHARD_COUNTS),
            "seed": 0,
        },
        speedup_vs_time_sliced=speedup,
        speedup_vs_pre_pr=pre_pr_speedup,
        cache_aware_vs_least_loaded=cache_ratio,
    )

    summary = document["summary"]
    assert summary["num_requests"] == max(STREAM_LENGTHS)
    assert summary["num_shards"] == max(SHARD_COUNTS)
    assert summary["events_per_sec"] > 0
    assert summary["prefix_cache_events_per_sec"] > 0

    # Work conservation on every point: nothing silently dropped.
    for row in rows:
        assert row["completed"] + row["rejected"] == row["num_requests"]
        assert row["num_events"] >= row["num_requests"]

    # Per-event cost stays flat as streams grow (the flat-memory design).
    check_near_linear_scaling(rows)

    # A memory row exists for both router families and stays far below
    # what stored per-request samples would need at this stream length.
    # The cache-aware row's budget is wider: the shared block stores and
    # their LRU structures are real resident state the simulator models.
    memory_rows = [row for row in rows if row.get("peak_mem_mb") is not None]
    assert len(memory_rows) == 2, "sweep must include both peak-memory rows"
    plain_memory = [r for r in memory_rows if not r["prefix_cache"]]
    cache_memory = [r for r in memory_rows if r["prefix_cache"]]
    assert plain_memory and plain_memory[0]["peak_mem_mb"] < 200.0
    assert cache_memory and cache_memory[0]["peak_mem_mb"] < 400.0

    # The streaming hot path must not lose to the retained time-sliced
    # loop on the matched calibration stream (both run post-overhaul
    # shared infrastructure, so this multiple is modest by design).
    assert speedup is not None
    assert speedup >= 0.8, f"streaming at {speedup:.2f}x of the reference loop"

    # ... and it beats the pre-PR hot path decisively.  The pre-PR code
    # scanned all resident KV blocks per admission, so its per-request
    # cost grew with the stream; the recorded baseline (measured at the
    # seed commit on this exact calibration stream, machine-normalised
    # through the time-sliced loop) sits far below the overhauled path.
    assert pre_pr_speedup is not None
    assert pre_pr_speedup >= 10.0, (
        f"streaming speedup {pre_pr_speedup:.1f}x below the 10x floor "
        "over the pre-PR baseline"
    )

    # Cache-aware routing over the shared prefix cache stays within 2x of
    # plain least-loaded routing on the paired calibration stream (the
    # ratio is a median over interleaved pairs, so machine drift cancels).
    assert cache_ratio is not None
    assert cache_ratio >= CACHE_RATIO_FLOOR, (
        f"cache-aware at {cache_ratio:.2f}x of least-loaded, below the "
        f"{CACHE_RATIO_FLOOR:.2f} floor"
    )
