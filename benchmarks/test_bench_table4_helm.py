"""Table 4: HELM synthetic-reasoning and summarization throughput (S1, S2)."""

import pytest

from repro.experiments import run_helm_experiment
from repro.experiments.e2e import speedup_summary


@pytest.mark.paper_artifact("Table 4")
def test_table4_helm_tasks(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_helm_experiment,
        kwargs={
            "settings": ("S1", "S2"),
            "workloads": ("synthetic_reasoning", "summarization"),
            "max_sim_layers": 3,
        },
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        title="Table 4: HELM tasks under S1 & S2",
        columns=[
            "setting", "workload", "system", "throughput",
            "micro_batch_size", "batch_size", "error",
        ],
    )
    summary = print_rows(
        speedup_summary(rows), title="Table 4 speedups vs best baseline"
    )
    # MoE-Lightning(p) outperforms every baseline on every task/setting.
    for cell in summary:
        assert cell["padded_speedup"] > 1.0
