"""Table 5: optimizer-policy ablation (FlexGen policies vs. MoE-Lightning)."""

import pytest

from repro.experiments import run_policy_ablation


@pytest.mark.paper_artifact("Table 5")
def test_table5_policy_ablation(benchmark, print_rows):
    rows = benchmark.pedantic(
        run_policy_ablation,
        kwargs={"max_sim_layers": 4},
        iterations=1,
        rounds=1,
    )
    print_rows(
        rows,
        title="Table 5: MTBench @ S1 (generation length 128)",
        columns=[
            "variant", "micro_batch_size", "batch_size", "throughput",
            "speedup_vs_flexgen",
        ],
    )
    throughputs = [row["throughput"] for row in rows]
    # Paper ordering: their policy < our policy (~1.8x) <= larger N (~2.2x)
    # < MoE-Lightning(p) (~3.2x).
    assert throughputs[1] > 1.3 * throughputs[0]
    assert throughputs[2] >= 0.98 * throughputs[1]
    assert throughputs[3] > 1.15 * throughputs[2]
