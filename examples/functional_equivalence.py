"""Show that CGOPipe's execution order computes exactly the same function.

Builds a miniature Mixtral-shaped MoE model with random weights, generates a
few sequences with (a) straightforward whole-batch execution and (b) the
pipelined CGOPipe ordering (micro-batched, layer-sliced, attention on a
separate CPU path, weights touched page by page), and verifies that logits,
sampled tokens and the final KV cache are identical.

Run with:  python examples/functional_equivalence.py
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.engine import (
    MoETransformer,
    MoEWeights,
    PipelinedExecutor,
    ReferenceExecutor,
    ToyTokenizer,
    max_logit_difference,
    outputs_equivalent,
)
from repro.models import get_model


def main() -> None:
    config = get_model("tiny-moe")
    print(config.describe())
    weights = MoEWeights.initialize(config, seed=2024)
    model = MoETransformer(weights)
    tokenizer = ToyTokenizer(vocab_size=config.vocab_size)

    prompts_text = [
        "offload the experts to host memory",
        "pipeline the attention on the cpu",
        "page the weights so transfers interleave",
        "find the balance point with the roofline model",
        "batch aggressively to amortise the weight traffic",
        "measure generation throughput end to end",
    ]
    prompts = np.array(tokenizer.encode_batch(prompts_text, pad_to=7))
    generation_len = 8

    reference = ReferenceExecutor(model).generate(prompts, generation_len)

    policy = Policy(
        batch_size=prompts.shape[0],
        micro_batch_size=2,
        attention_on_gpu=False,
        ffn_on_gpu=True,
        weights_gpu_ratio=0.25,
    )
    executor = PipelinedExecutor(model, policy)
    print(executor.weight_manager.describe())
    pipelined = executor.generate(prompts, generation_len)

    difference = max_logit_difference(reference, pipelined)
    print(f"max |logit difference| across {generation_len} steps: {difference:.2e}")
    print(f"identical sampled tokens: "
          f"{np.array_equal(reference.generated_tokens, pipelined.generated_tokens)}")
    print(f"identical KV caches:      "
          f"{reference.kv_state.equal_to(pipelined.kv_state)}")
    print(f"outputs_equivalent():     {outputs_equivalent(reference, pipelined)}")
    print()
    for index, text in enumerate(prompts_text[:3]):
        generated = tokenizer.decode(list(reference.generated_tokens[:, index]))
        print(f"  prompt: {text!r}\n  output tokens: {generated}")


if __name__ == "__main__":
    main()
