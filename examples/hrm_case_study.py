"""HRM case study (paper §3.3, Figs. 4-5): where attention and the MoE FFN
land on the Hierarchical Roofline Model of an L4 instance, rendered as ASCII
roofline plots plus the turning-point / balance-point summary.

Run with:  python examples/hrm_case_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import attention_case_study, ffn_case_study
from repro.core.hrm import HierarchicalRoofline
from repro.experiments import render_rows
from repro.hardware import get_hardware
from repro.models import get_model
from repro.utils.ascii_plot import AsciiPlot


def roofline_plot(hrm: HierarchicalRoofline, title: str) -> AsciiPlot:
    """Build the three memory roofs and two compute roofs of Figs. 4-5."""
    plot = AsciiPlot(width=76, height=18, log_x=True, log_y=True, title=title)
    intensities = np.logspace(-1, 4, 40)
    plot.add_series(
        "GPU mem roof", intensities,
        [min(hrm.gpu.peak_flops, hrm.gpu.peak_bandwidth * i) for i in intensities],
        marker="g",
    )
    plot.add_series(
        "CPU mem roof", intensities,
        [min(hrm.cpu.peak_flops, hrm.cpu.peak_bandwidth * i) for i in intensities],
        marker="c",
    )
    plot.add_series(
        "CPU-GPU roof", intensities,
        [min(hrm.gpu.peak_flops, hrm.cross_bandwidth * i) for i in intensities],
        marker="x",
    )
    return plot


def main() -> None:
    model = get_model("mixtral-8x7b")
    hardware = get_hardware("1xL4")
    hrm = HierarchicalRoofline.from_hardware(hardware)

    print(hardware.describe())
    print()

    # ------------------------------------------------------------------
    # Figure 4: the attention block
    # ------------------------------------------------------------------
    attention = attention_case_study(model, hardware, context_len=512)
    plot = roofline_plot(hrm, "Figure 4: GQA attention on the L4 HRM (log-log)")
    for dtype, intensity in attention.intensities.items():
        performance = [
            hrm.attainable_on_cpu(intensity),
            hrm.attainable_on_gpu(intensity, intensity),
        ]
        plot.add_series(f"attention {dtype}", [intensity, intensity], performance, marker="A")
    print(plot.render())
    print()
    print(render_rows(attention.as_rows(), title="Attention placement (context 512)"))
    print()

    # ------------------------------------------------------------------
    # Figure 5: the MoE FFN block
    # ------------------------------------------------------------------
    ffn = ffn_case_study(model, hardware, micro_batch_size=128)
    plot = roofline_plot(hrm, "Figure 5: MoE FFN on the L4 HRM (log-log)")
    plot.add_series(
        "FFN x N", ffn.cross_intensities, ffn.attainable, marker="F"
    )
    print(plot.render())
    print()
    print(render_rows(ffn.as_rows(), title="MoE FFN across batch sizes (mu = 128)"))
    print()
    print(
        f"P1 = {ffn.p1_intensity:.1f} FLOPs/B, P2 = {ffn.p2_intensity:.1f} FLOPs/B, "
        f"kernel roof at mu=128 = {ffn.kernel_performance / 1e12:.1f} TFLOPS, "
        f"balance point reached at N = {ffn.balance_batch_size}"
    )
    print()
    print(
        "Conclusion (matches the paper): decode attention sits below P1 -> run "
        "it on the CPU; the MoE FFN climbs the CPU-GPU bandwidth roof with N "
        "until the balance point, so pick the largest feasible N and mu."
    )


if __name__ == "__main__":
    main()
