"""Visualise CGOPipe against the baseline schedules (paper Fig. 6).

Simulates one decode step of Mixtral 8x7B on the T4 setting under all four
schedules and prints, for each, the per-channel utilisation, the GPU bubble
fraction and an ASCII Gantt chart of the timeline.

Run with:  python examples/pipeline_trace.py
"""

from __future__ import annotations

from repro.experiments import render_rows
from repro.experiments.pipeline_diagram import comparison_rows, run_schedule_comparison


def main() -> None:
    results = run_schedule_comparison(
        setting_name="S1",
        batch_size=960,
        micro_batch_size=64,
        context_len=512,
        max_sim_layers=6,
    )
    print(
        render_rows(
            comparison_rows(results),
            title="Figure 6: decode-step comparison (Mixtral 8x7B @ S1, N=960, mu=64)",
        )
    )
    print()
    legend = (
        "Gantt legend: A=pre-attention  B=attention  C=post-attention (O-proj+FFN)  "
        "W=weight transfer  K=KV transfer  h=hidden load  q=QKV offload  S=sample"
    )
    print(legend)
    for result in results:
        print()
        print(f"--- {result.schedule} (step {result.step_time * 1e3:.0f} ms, "
              f"GPU bubbles {result.gpu_bubble_fraction:.0%}) ---")
        print(result.gantt)


if __name__ == "__main__":
    main()
