"""Explore how the optimal offloading policy changes with the hardware.

Walks a few what-if scenarios around the paper's §6.3 discussion: what does
the HRM optimizer choose on a single T4, on an L4, with double the CPU
memory, with a faster interconnect, and on a GPU-rich 2xA100 node?  For each
scenario it prints the chosen policy, the predicted bottleneck and the
estimated throughput.

Run with:  python examples/policy_explorer.py
"""

from __future__ import annotations

from repro.analysis import classify_policy
from repro.core.optimizer import PolicyOptimizer
from repro.experiments import render_rows
from repro.experiments.hardware_sweep import base_a100_hardware
from repro.hardware import get_hardware
from repro.models import get_model
from repro.workloads import mtbench


def main() -> None:
    model = get_model("mixtral-8x7b")
    workload = mtbench(generation_len=128)

    scenarios = [
        ("1x T4 (S1)", get_hardware("1xT4")),
        ("1x L4 (S2)", get_hardware("1xL4")),
        ("1x T4, 2x CPU memory", get_hardware("1xT4").with_cpu_memory(384e9)),
        ("1x T4, 32 GB/s PCIe", get_hardware("1xT4").with_interconnect_bandwidth(32e9)),
        ("2x A100-80G (GPU-rich)", base_a100_hardware()),
    ]

    rows = []
    for label, hardware in scenarios:
        optimizer = PolicyOptimizer(
            model=model, hardware=hardware, workload=workload, padded=True
        )
        result = optimizer.search()
        policy = result.policy
        report = classify_policy(model, hardware, workload, policy, padded=True)
        rows.append(
            {
                "scenario": label,
                "attention": "GPU" if policy.attention_on_gpu else "CPU",
                "batch_size": policy.batch_size,
                "micro_batch": policy.micro_batch_size,
                "weights_on_gpu": policy.weights_gpu_ratio,
                "kv_on_gpu": policy.kv_cache_gpu_ratio,
                "bottleneck": report.pipeline_bottleneck,
                "capacity_bound": report.capacity_bound,
                "est_tokens_per_s": result.throughput,
            }
        )

    print(
        render_rows(
            rows,
            title="Best policy per hardware scenario (Mixtral 8x7B, MTBench, gen len 128)",
        )
    )
    print()
    print(
        "Reading: on memory-constrained nodes the optimizer offloads weights and "
        "runs attention on the CPU (A_g=0, F_g=1); once the GPUs can hold the "
        "model (2xA100) it keeps everything resident, matching the paper's §6.3."
    )


if __name__ == "__main__":
    main()
