"""Quickstart: estimate MoE-Lightning throughput for Mixtral 8x7B on a T4.

Runs the full pipeline the paper describes for its main setting (S1):

1. load the model / hardware / workload configurations,
2. search for the best offloading policy with the HRM performance model,
3. simulate CGOPipe decode with the discrete-event simulator,
4. report generation throughput and the per-channel utilisation,
5. compare against the FlexGen and DeepSpeed baselines.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import render_rows
from repro.hardware import get_hardware
from repro.models import get_model
from repro.systems import DeepSpeedZeroSystem, FlexGenSystem, MoELightningSystem
from repro.workloads import mtbench


def main() -> None:
    model = get_model("mixtral-8x7b")
    hardware = get_hardware("1xT4")
    workload = mtbench(generation_len=128)

    print(model.describe())
    print(hardware.describe())
    print(workload.describe())
    print()

    systems = [
        MoELightningSystem(model, hardware),
        MoELightningSystem(model, hardware, padded=True),
        FlexGenSystem(model, hardware),
        FlexGenSystem(model, hardware, cpu_attention=True),
        DeepSpeedZeroSystem(model, hardware),
    ]

    rows = []
    for system in systems:
        result = system.run(workload)
        row = result.as_row()
        if result.step_timing is not None:
            row["gpu_util"] = result.step_timing.utilization.get("gpu", 0.0)
            row["htod_util"] = result.step_timing.utilization.get("htod", 0.0)
        rows.append(row)

    print(
        render_rows(
            rows,
            columns=[
                "system", "throughput", "batch_size", "micro_batch_size",
                "weights_gpu_ratio", "attention_on_gpu", "gpu_util", "htod_util",
            ],
            title="MTBench @ S1 (Mixtral 8x7B, 1x T4 16GB, generation length 128)",
        )
    )

    best = max(rows, key=lambda row: row["throughput"])
    baseline = max(
        (row for row in rows if not str(row["system"]).startswith("moe-lightning")),
        key=lambda row: row["throughput"],
    )
    print()
    print(
        f"MoE-Lightning achieves {best['throughput'] / baseline['throughput']:.1f}x "
        f"the best baseline ({baseline['system']}) on this workload."
    )


if __name__ == "__main__":
    main()
