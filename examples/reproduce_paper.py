"""Regenerate every table and figure of the paper's evaluation section.

This is the heavyweight driver behind ``benchmarks/`` (which run reduced
parameterisations): it executes the full experiment harnesses and prints
paper-style tables, optionally writing them to a markdown report.

Run with:  python examples/reproduce_paper.py            (full, ~10-20 min)
           python examples/reproduce_paper.py --fast     (reduced, ~2-3 min)
           python examples/reproduce_paper.py --fast --output report.md
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    render_rows,
    rows_to_markdown,
    run_cpu_memory_sweep,
    run_hardware_sweep,
    run_helm_experiment,
    run_kernel_latency_ablation,
    run_mtbench_experiment,
    run_policy_ablation,
    run_schedule_comparison,
    run_tp_scaling,
)
from repro.experiments.ablation_kernels import crossover_points
from repro.experiments.e2e import speedup_summary
from repro.experiments.hardware_sweep import offload_trends
from repro.experiments.pipeline_diagram import comparison_rows
from repro.experiments.throughput_vs_cpumem import cpu_memory_to_match
from repro.experiments.tp_scaling import scaling_factors


def run_all(fast: bool) -> list[tuple[str, list[dict[str, object]]]]:
    """Run every experiment and return (title, rows) pairs in paper order."""
    layers = 3 if fast else 6
    sections: list[tuple[str, list[dict[str, object]]]] = []

    fig1 = run_cpu_memory_sweep(
        cpu_memory_gb=(128, 160, 192, 256, 320) if fast else (112, 128, 160, 192, 256, 320, 384),
        max_sim_layers=layers,
    )
    sections.append(("Figure 1: throughput vs CPU memory (MTBench @ S1)", fig1))
    sections.append(("Figure 1 headline (CPU memory saving)", [cpu_memory_to_match(fig1)]))

    fig6 = comparison_rows(run_schedule_comparison(max_sim_layers=layers))
    sections.append(("Figure 6: schedule comparison", fig6))

    fig7 = run_mtbench_experiment(
        settings=("S1", "S2") if fast else ("S1", "S2", "S6", "S7"),
        generation_lengths=(32, 128) if fast else (32, 64, 128, 256),
        max_sim_layers=layers,
    )
    sections.append(("Figure 7: MTBench end-to-end throughput", fig7))
    sections.append(("Figure 7 speedups vs best baseline", speedup_summary(fig7)))

    table4 = run_helm_experiment(
        settings=("S1",) if fast else ("S1", "S2"), max_sim_layers=layers
    )
    sections.append(("Table 4: HELM tasks", table4))

    fig8 = run_tp_scaling(
        generation_lengths=(32, 128) if fast else (32, 64, 128, 256),
        max_sim_layers=layers,
    )
    sections.append(("Figure 8: DBRX tensor-parallel scaling", fig8))
    sections.append(("Figure 8 scaling factors", scaling_factors(fig8)))

    table5 = run_policy_ablation(max_sim_layers=layers)
    sections.append(("Table 5: optimizer policy ablation", table5))

    fig9 = run_kernel_latency_ablation()
    sections.append(("Figure 9: kernel latency comparison", fig9))
    sections.append(("Figure 9 crossover points", crossover_points(fig9)))

    fig10 = run_hardware_sweep(
        cpu_gpu_bandwidths_gb=(100, 300, 500) if fast else (100, 200, 300, 400, 500),
        cpu_scaling_ratios=(1, 4, 10) if fast else (1, 2, 4, 6, 8, 10),
    )
    sections.append(("Figure 10: policy vs hardware sweep", fig10))
    sections.append(("Figure 10 offload trends", [offload_trends(fig10)]))

    return sections


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="reduced parameterisation")
    parser.add_argument("--output", default=None, help="also write a markdown report")
    args = parser.parse_args(argv)

    sections = run_all(fast=args.fast)
    markdown_parts = ["# MoE-Lightning reproduction report", ""]
    for title, rows in sections:
        print()
        print(render_rows(rows, title=title))
        markdown_parts.extend([f"## {title}", "", rows_to_markdown(rows), ""])

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(markdown_parts))
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
