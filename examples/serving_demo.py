"""Serving demo: MoE-Lightning and FlexGen under live request traffic.

Where ``quickstart.py`` compares the systems on one static batch, this demo
drives them through the online serving subsystem:

1. stream MTBench requests at increasing Poisson arrival rates and plot the
   throughput-vs-p99-TTFT trade-off per system,
2. compare the three continuous-batching scheduling policies (FCFS,
   prefill-prioritising, decode-prioritising) at a fixed load,
3. show what a bursty (Gamma, cv=3) arrival pattern does to tail latency
   relative to smooth Poisson traffic at the same average rate,
4. scale the same stream across 1/2/4 data-parallel shards behind a
   least-loaded router (the `repro-serve --shards N` mode),
5. serve a multi-turn chat stream with the prefix cache off and on
   (the `repro-serve --workload chat --prefix-cache on` mode) and print
   the hit rate and the TTFT/throughput win cached prefixes buy,
6. serve a loaded chat stream serialized and with overlapped
   prefill/decode streams (the `repro-serve --overlap on` mode) and print
   the TPOT/goodput win of fusing prefills into decode iterations.

Everything is deterministic under the fixed seed, and the headline sweep
is also written to ``BENCH_serving.json`` (throughput, TTFT/TPOT
percentiles, SLO-goodput) for trend tooling.  Reports default to the
streaming P² mode (flat memory in the stream length; percentiles within
sketch tolerance, all other metrics exact) — pass ``--exact-report`` to
store per-request samples and compute exact percentiles instead.  Run
with:

    python examples/serving_demo.py        (or `repro-serve` once installed)
"""

from __future__ import annotations

import argparse
import os

from repro.experiments import (
    render_rows,
    run_cache_sweep,
    run_overlap_sweep,
    run_serving_sweep,
    run_shard_scaling,
    write_bench_serving_json,
)
from repro.experiments.cache_sweep import CACHE_SWEEP_COLUMNS
from repro.experiments.overlap_sweep import OVERLAP_SWEEP_COLUMNS
from repro.experiments.serving_sweep import SWEEP_COLUMNS, offline_capacity
from repro.experiments.shard_scaling import SHARD_SCALING_COLUMNS
from repro.hardware import get_hardware
from repro.models import get_model
from repro.serving import GammaProcess, PoissonProcess, ServingSystem, default_slo
from repro.systems import MoELightningSystem
from repro.utils.ascii_plot import AsciiPlot
from repro.workloads import mtbench

SEED = 0
NUM_REQUESTS = 48
GENERATION_LEN = 16
BENCH_JSON = os.environ.get("BENCH_SERVING_JSON", "BENCH_serving.json")


def load_sweep(store_samples: bool) -> list[dict[str, object]]:
    """Poisson load sweep across both systems (the headline curves)."""
    rows = run_serving_sweep(
        load_factors=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
        system_names=("moe-lightning", "flexgen"),
        generation_len=GENERATION_LEN,
        num_requests=NUM_REQUESTS,
        seed=SEED,
        store_samples=store_samples,
    )
    print(
        render_rows(
            rows,
            columns=list(SWEEP_COLUMNS),
            title="Poisson load sweep: MTBench @ S1 (Mixtral 8x7B, 1x T4)",
        )
    )
    plot = AsciiPlot(
        title="p99 TTFT (s) vs offered load (requests/s)",
        log_y=True,
    )
    markers = {"moe-lightning": "*", "flexgen": "o"}
    for system, marker in markers.items():
        points = [row for row in rows if row["system"] == system]
        plot.add_series(
            system,
            xs=[row["rate_rps"] for row in points],
            ys=[row["ttft_p99"] for row in points],
            marker=marker,
        )
    print()
    print(plot.render())
    return rows


def scheduling_comparison(store_samples: bool) -> None:
    """FCFS vs prefill-first vs decode-first at a fixed overload point."""
    model = get_model("mixtral-8x7b")
    hardware = get_hardware("1xT4")
    workload = mtbench(generation_len=GENERATION_LEN, num_requests=NUM_REQUESTS)
    backend = MoELightningSystem(model, hardware)
    policy = backend.select_policy(workload)
    slo = default_slo(backend, workload, policy)
    rate = 2.0 * offline_capacity(backend, workload, policy)

    rows = []
    for scheduling in ("fcfs", "prefill-first", "decode-first"):
        serving = ServingSystem(
            backend,
            workload,
            policy=policy,
            scheduling=scheduling,
            slo=slo,
            store_samples=store_samples,
        )
        result = serving.run(PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED)
        rows.append(result.as_row())
    print()
    print(
        render_rows(
            rows,
            columns=[
                "scheduling", "ttft_p50", "ttft_p99", "tpot_p50", "tpot_p99",
                "goodput", "goodput_fraction",
            ],
            title=f"Scheduling policies at 2x offline capacity ({rate:.2f} req/s)",
        )
    )


def burstiness_comparison(store_samples: bool) -> None:
    """Smooth vs bursty arrivals at the same average rate."""
    model = get_model("mixtral-8x7b")
    hardware = get_hardware("1xT4")
    workload = mtbench(generation_len=GENERATION_LEN, num_requests=NUM_REQUESTS)
    backend = MoELightningSystem(model, hardware)
    policy = backend.select_policy(workload)
    slo = default_slo(backend, workload, policy)
    rate = offline_capacity(backend, workload, policy)

    rows = []
    for process in (PoissonProcess(rate), GammaProcess(rate, cv=3.0)):
        serving = ServingSystem(
            backend, workload, policy=policy, slo=slo, store_samples=store_samples
        )
        result = serving.run(process, count=NUM_REQUESTS, seed=SEED)
        row = result.as_row()
        row["arrival"] = process.name
        rows.append(row)
    print()
    print(
        render_rows(
            rows,
            columns=[
                "arrival", "ttft_p50", "ttft_p99", "e2e_p99",
                "token_throughput", "goodput_fraction",
            ],
            title=f"Arrival burstiness at offline capacity ({rate:.2f} req/s)",
        )
    )


def shard_scaling(store_samples: bool) -> None:
    """One stream, 1/2/4 shards behind a least-loaded router."""
    rows = run_shard_scaling(
        shard_counts=(1, 2, 4),
        router="least-loaded",
        generation_len=GENERATION_LEN,
        num_requests=NUM_REQUESTS,
        load_factor=4.0,
        seed=SEED,
        store_samples=store_samples,
    )
    print()
    print(
        render_rows(
            rows,
            columns=list(SHARD_SCALING_COLUMNS),
            title="Shard scaling at 4x single-shard load (least-loaded routing)",
        )
    )


def prefix_cache_demo(store_samples: bool) -> None:
    """Multi-turn chat with the prefix cache off vs. on at the same load."""
    rows = run_cache_sweep(
        load_factors=(1.0, 2.0),
        generation_len=GENERATION_LEN,
        num_requests=NUM_REQUESTS,
        turns_per_session=4,
        seed=SEED,
        store_samples=store_samples,
    )
    print()
    print(
        render_rows(
            rows,
            columns=list(CACHE_SWEEP_COLUMNS),
            title=(
                "Prefix cache on multi-turn chat: hit rate vs. TTFT and "
                "throughput (shared block store, chunked prefill)"
            ),
        )
    )
    for load in (1.0, 2.0):
        off = next(
            r for r in rows if r["load_factor"] == load and r["prefix_cache"] == "off"
        )
        on = next(
            r for r in rows if r["load_factor"] == load and r["prefix_cache"] == "on"
        )
        print(
            f"  load {load:g}x: hit rate {on['hit_rate']:.0%}, "
            f"cached tokens {on['cached_token_fraction']:.0%}, "
            f"mean TTFT {off['mean_ttft']:.1f}s -> {on['mean_ttft']:.1f}s, "
            f"throughput {off['token_throughput']:.2f} -> "
            f"{on['token_throughput']:.2f} tok/s"
        )


def overlap_demo(store_samples: bool) -> None:
    """Serialized vs. overlapped prefill/decode streams at the same load."""
    rows = run_overlap_sweep(
        load_factors=(2.0, 4.0),
        generation_len=GENERATION_LEN,
        num_requests=NUM_REQUESTS,
        seed=SEED,
        store_samples=store_samples,
    )
    print()
    print(
        render_rows(
            rows,
            columns=list(OVERLAP_SWEEP_COLUMNS),
            title=(
                "Overlapped prefill/decode streams on loaded chat: "
                "serialized vs. fused weight-streaming passes"
            ),
        )
    )
    for load in (2.0, 4.0):
        off = next(
            r for r in rows if r["load_factor"] == load and r["overlap"] == "off"
        )
        on = next(
            r for r in rows if r["load_factor"] == load and r["overlap"] == "on"
        )
        print(
            f"  load {load:g}x: mean TPOT {off['mean_tpot']:.1f}s -> "
            f"{on['mean_tpot']:.1f}s, goodput {off['goodput']:.3f} -> "
            f"{on['goodput']:.3f} req/s, overlap fraction "
            f"{on['overlap_fraction']:.0%}"
        )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--exact-report",
        action="store_true",
        help=(
            "store per-request samples and compute exact percentiles "
            "instead of the default streaming P² report"
        ),
    )
    args = parser.parse_args(argv)
    store_samples = args.exact_report

    rows = load_sweep(store_samples)
    scheduling_comparison(store_samples)
    burstiness_comparison(store_samples)
    shard_scaling(store_samples)
    prefix_cache_demo(store_samples)
    overlap_demo(store_samples)
    write_bench_serving_json(
        BENCH_JSON,
        rows,
        meta={
            "source": "examples/serving_demo.py",
            "model": "mixtral-8x7b",
            "hardware": "1xT4",
            "workload": "mtbench",
            "generation_len": GENERATION_LEN,
            "num_requests": NUM_REQUESTS,
            "seed": SEED,
            "report": "exact" if store_samples else "streaming",
        },
    )
    print(f"\nwrote {BENCH_JSON}")


if __name__ == "__main__":
    main()
