"""Package metadata and console entry points for the reproduction."""

from setuptools import find_packages, setup

setup(
    name="moe-lightning-repro",
    version="0.9.0",
    description=(
        "Reproduction of MoE-Lightning (ASPLOS'25): high-throughput MoE "
        "inference on memory-constrained GPUs, plus an online "
        "continuous-batching serving simulator with multi-GPU sharding, "
        "heterogeneous device types, prefill/decode disaggregation, "
        "shared-prefix KV caching and end-to-end serving telemetry"
    ),
    long_description=(
        "Analytical (HRM) performance models, a discrete-event pipeline "
        "simulator, the CGOPipe/FlexGen/DeepSpeed schedule family, policy "
        "optimization, the paper's experiment harnesses, an online "
        "serving subsystem (arrival processes, admission control, "
        "continuous batching, SLO metrics), a cluster layer "
        "(tensor/expert partition plans, partitioned roofline models, "
        "sharded serving with routing and chunked prefill), and a shared "
        "ref-counted prefix cache (content-hash-chained KV blocks, "
        "cache-aware routing, multi-turn chat workloads, TTL session "
        "eviction), an opt-in observability layer (request-lifecycle "
        "Chrome traces, streaming P2 percentile metrics, time-series "
        "sampling), and disaggregated serving (heterogeneous device "
        "specs, prefill/decode pools, priced KV migration with "
        "phase-aware routing), and a deterministic fault-injection / "
        "crash-recovery subsystem (seeded fault schedules, retry and "
        "admission-shedding policies, chaos sweeps with acceptance "
        "gates) layered on top."
    ),
    author="paper-repo-growth",
    license="Apache-2.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
    ],
    extras_require={
        "test": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "hypothesis>=6.0",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-serve = repro.experiments.serving_sweep:main",
            "repro-disagg = repro.experiments.disagg_sweep:main",
            "repro-simperf = repro.experiments.simperf_sweep:main",
            "repro-trace = repro.obs.trace_cli:main",
            "repro-chaos = repro.experiments.chaos_sweep:main",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
    ],
)
