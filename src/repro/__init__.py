"""MoE-Lightning reproduction: high-throughput MoE inference on
memory-constrained GPUs (ASPLOS 2025).

The package is organised around the paper's two contributions and the
substrates they need:

* ``repro.core`` — the Hierarchical Roofline Model (HRM), the per-layer
  performance model and the policy optimizer.
* ``repro.schedules`` — CGOPipe and the baseline decode schedules of Fig. 6,
  executed on the discrete-event simulator in ``repro.runtime``.
* ``repro.systems`` — end-to-end MoE-Lightning / FlexGen / DeepSpeed systems
  reporting generation throughput for the workloads in ``repro.workloads``.
* ``repro.engine`` — a functional numpy MoE transformer proving that the
  CGOPipe execution order is semantics-preserving.
* ``repro.experiments`` — one harness per table/figure of the evaluation.

Quickstart::

    from repro.models import get_model
    from repro.hardware import get_hardware
    from repro.workloads import mtbench
    from repro.systems import MoELightningSystem

    system = MoELightningSystem(get_model("mixtral-8x7b"), get_hardware("1xT4"))
    result = system.run(mtbench(generation_len=128))
    print(result.generation_throughput, "tokens/s with", result.policy.describe())
"""

from repro.core.hrm import HierarchicalRoofline
from repro.core.optimizer import PolicyOptimizer
from repro.core.performance_model import EfficiencyModel, PerformanceModel
from repro.core.policy import Policy
from repro.hardware import get_hardware
from repro.models import get_model
from repro.systems import DeepSpeedZeroSystem, FlexGenSystem, MoELightningSystem
from repro.workloads import get_workload

__version__ = "1.0.0"

__all__ = [
    "HierarchicalRoofline",
    "PolicyOptimizer",
    "EfficiencyModel",
    "PerformanceModel",
    "Policy",
    "get_hardware",
    "get_model",
    "get_workload",
    "MoELightningSystem",
    "FlexGenSystem",
    "DeepSpeedZeroSystem",
    "__version__",
]
