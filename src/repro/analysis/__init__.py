"""Analysis helpers: HRM case studies, bottleneck classification, diagrams.

These modules turn the core library's numbers into the figures of the
paper's analysis sections: the HRM roofline plots of Fig. 4-5, the schedule
comparison of Fig. 6, performance-region classification (§3.3) and the
tensor-parallel scaling analysis (§5.3).
"""

from repro.analysis.hrm_plots import (
    AttentionCaseStudy,
    FFNCaseStudy,
    attention_case_study,
    ffn_case_study,
)
from repro.analysis.bottleneck import (
    BottleneckReport,
    classify_policy,
    sweep_batch_size,
)
from repro.analysis.schedule_diagram import ScheduleComparison, compare_schedules
from repro.analysis.scaling import ScalingPoint, tensor_parallel_scaling

__all__ = [
    "AttentionCaseStudy",
    "FFNCaseStudy",
    "attention_case_study",
    "ffn_case_study",
    "BottleneckReport",
    "classify_policy",
    "sweep_batch_size",
    "ScheduleComparison",
    "compare_schedules",
    "ScalingPoint",
    "tensor_parallel_scaling",
]
