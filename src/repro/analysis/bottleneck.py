"""Performance-region classification (§3.3).

Given a policy, names the binding resource (GPU compute, GPU memory
bandwidth, CPU compute/bandwidth, CPU-GPU interconnect) and whether the
policy is GPU- or CPU-memory *capacity* bound — i.e. whether raising the
batch or micro-batch size is blocked by memory rather than by the pipeline.
This is the machinery behind statements like "CGOPipe renders the system
GPU memory capacity bound in these settings" (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memory_model import MemoryModel
from repro.core.performance_model import EfficiencyModel, PerformanceModel
from repro.core.policy import Policy
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.utils.validation import require_positive_int
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class BottleneckReport:
    """Binding constraints for one policy."""

    policy: Policy
    pipeline_bottleneck: str
    gpu_memory_utilization: float
    cpu_memory_utilization: float
    gpu_memory_bound: bool
    cpu_memory_bound: bool
    throughput: float

    @property
    def capacity_bound(self) -> str:
        """Which memory capacity (if any) blocks further scaling."""
        if self.gpu_memory_bound and self.cpu_memory_bound:
            return "gpu+cpu"
        if self.gpu_memory_bound:
            return "gpu"
        if self.cpu_memory_bound:
            return "cpu"
        return "none"


def classify_policy(
    model: ModelConfig,
    hardware: HardwareSpec,
    workload: WorkloadSpec,
    policy: Policy,
    efficiency: EfficiencyModel | None = None,
    padded: bool = False,
    capacity_threshold: float = 0.92,
) -> BottleneckReport:
    """Classify the binding resources of ``policy``.

    A memory is considered capacity-bound when the policy uses more than
    ``capacity_threshold`` of its usable space, i.e. the optimizer could not
    meaningfully grow the batch/micro-batch/resident-weight knobs further.
    """
    performance = PerformanceModel(
        model=model,
        hardware=hardware,
        workload=workload,
        efficiency=efficiency or EfficiencyModel(),
        padded=padded,
    )
    memory = MemoryModel(model=model, hardware=hardware, workload=workload, padded=padded)
    usage = memory.usage(policy)
    estimate = performance.estimate(policy)
    return BottleneckReport(
        policy=policy,
        pipeline_bottleneck=estimate.bottleneck,
        gpu_memory_utilization=usage.gpu_utilization,
        cpu_memory_utilization=usage.cpu_utilization,
        gpu_memory_bound=usage.gpu_utilization >= capacity_threshold,
        cpu_memory_bound=usage.cpu_utilization >= capacity_threshold,
        throughput=estimate.throughput,
    )


def sweep_batch_size(
    model: ModelConfig,
    hardware: HardwareSpec,
    workload: WorkloadSpec,
    base_policy: Policy,
    batch_sizes: list[int],
    padded: bool = False,
) -> list[BottleneckReport]:
    """Classify the same policy shape across a range of batch sizes.

    Used to show how the bottleneck migrates from interconnect-bound at small
    ``N`` to CPU/GPU-bound at large ``N`` (the Fig. 1 narrative).
    """
    reports = []
    for batch_size in batch_sizes:
        require_positive_int("batch_size", batch_size)
        policy = base_policy.with_batch_size(batch_size)
        reports.append(
            classify_policy(
                model, hardware, workload, policy, padded=padded
            )
        )
    return reports
