"""HRM case studies for the attention and MoE-FFN blocks (Figs. 4 and 5).

The paper's case study places Mixtral 8x7B's decode-stage attention and MoE
feed-forward computations on the two-level HRM of an L4 instance.  These
helpers compute the same quantities numerically:

* the five roofs (CPU/GPU memory bandwidth, CPU-GPU bandwidth, CPU/GPU peak
  FLOPS);
* the operational intensities of the attention block for different KV-cache
  data types (which sit *below* P1 — hence CPU attention);
* the operational intensities of the MoE FFN at different batch sizes, the
  turning points P1/P2 and the attainable performance along the sweep (which
  saturates at the balance point).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hrm import HierarchicalRoofline
from repro.hardware.spec import HardwareSpec
from repro.models.config import DataType, ModelConfig
from repro.models.flops import attention_decode_cost, ffn_cost
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class AttentionCaseStudy:
    """Fig. 4: where decode attention lands on the HRM."""

    context_len: int
    intensities: dict[str, float]
    p1_intensity: dict[str, float]
    prefer_cpu: dict[str, bool]
    cpu_performance: dict[str, float]
    gpu_performance: dict[str, float]

    def as_rows(self) -> list[dict[str, object]]:
        """One row per KV-cache data type (for report tables)."""
        return [
            {
                "kv_dtype": dtype,
                "intensity": self.intensities[dtype],
                "p1_intensity": self.p1_intensity[dtype],
                "prefer_cpu": self.prefer_cpu[dtype],
                "cpu_gflops": self.cpu_performance[dtype] / 1e9,
                "gpu_gflops": self.gpu_performance[dtype] / 1e9,
            }
            for dtype in self.intensities
        ]


@dataclass(frozen=True)
class FFNCaseStudy:
    """Fig. 5: where the MoE FFN lands on the HRM across batch sizes."""

    micro_batch_size: int
    gpu_intensity: float
    kernel_performance: float
    p1_intensity: float
    p2_intensity: float
    batch_sizes: list[int] = field(default_factory=list)
    cross_intensities: list[float] = field(default_factory=list)
    attainable: list[float] = field(default_factory=list)
    bottlenecks: list[str] = field(default_factory=list)

    @property
    def balance_batch_size(self) -> int | None:
        """Smallest swept batch size whose attainable performance hits P2."""
        for batch, perf in zip(self.batch_sizes, self.attainable):
            if perf >= self.kernel_performance * 0.999:
                return batch
        return None

    def as_rows(self) -> list[dict[str, object]]:
        """One row per swept batch size (for report tables)."""
        return [
            {
                "batch_size": batch,
                "cross_intensity": intensity,
                "attainable_gflops": perf / 1e9,
                "bottleneck": bottleneck,
            }
            for batch, intensity, perf, bottleneck in zip(
                self.batch_sizes,
                self.cross_intensities,
                self.attainable,
                self.bottlenecks,
            )
        ]


def attention_case_study(
    model: ModelConfig,
    hardware: HardwareSpec,
    context_len: int = 512,
    kv_dtypes: tuple[DataType, ...] = (DataType.FLOAT16, DataType.INT4),
) -> AttentionCaseStudy:
    """Reproduce Fig. 4 for ``model`` on ``hardware`` at ``context_len``.

    The attention operational intensity is independent of the batch size
    (FLOPs and bytes both scale with it), so a batch of one is used.
    """
    require_positive_int("context_len", context_len)
    hrm = HierarchicalRoofline.from_hardware(hardware)
    intensities: dict[str, float] = {}
    p1: dict[str, float] = {}
    prefer_cpu: dict[str, bool] = {}
    cpu_perf: dict[str, float] = {}
    gpu_perf: dict[str, float] = {}
    for kv_dtype in kv_dtypes:
        variant = ModelConfig(
            name=f"{model.name}-kv-{kv_dtype.label}",
            num_layers=model.num_layers,
            hidden_size=model.hidden_size,
            intermediate_size=model.intermediate_size,
            num_query_heads=model.num_query_heads,
            num_kv_heads=model.num_kv_heads,
            num_experts=model.num_experts,
            top_k=model.top_k,
            vocab_size=model.vocab_size,
            dtype=model.dtype,
            kv_dtype=kv_dtype,
        )
        cost = attention_decode_cost(variant, batch=1, context_len=context_len)
        intensity = cost.operational_intensity
        label = kv_dtype.label
        intensities[label] = intensity
        p1[label] = hrm.p1(intensity)
        prefer_cpu[label] = hrm.prefer_cpu(intensity, intensity)
        cpu_perf[label] = hrm.attainable_on_cpu(intensity)
        gpu_perf[label] = hrm.attainable_on_gpu(intensity, intensity)
    return AttentionCaseStudy(
        context_len=context_len,
        intensities=intensities,
        p1_intensity=p1,
        prefer_cpu=prefer_cpu,
        cpu_performance=cpu_perf,
        gpu_performance=gpu_perf,
    )


def ffn_case_study(
    model: ModelConfig,
    hardware: HardwareSpec,
    micro_batch_size: int = 128,
    batch_sizes: tuple[int, ...] = (32, 128, 1024, 16384),
) -> FFNCaseStudy:
    """Reproduce Fig. 5 for ``model`` on ``hardware``.

    The GPU-side intensity of the MoE FFN is set by the micro-batch size
    (every kernel launch re-reads the expert weights from HBM); the CPU-side
    intensity grows with the total batch size ``N`` because the same streamed
    weights serve more tokens.  Attainable performance climbs along the
    CPU-GPU bandwidth roof until it hits the balance point at P2.
    """
    require_positive_int("micro_batch_size", micro_batch_size)
    hrm = HierarchicalRoofline.from_hardware(hardware)
    kernel_cost = ffn_cost(model, micro_batch_size)
    gpu_intensity = kernel_cost.operational_intensity
    kernel_performance = hrm.gpu.roofline.attainable(gpu_intensity)
    p2 = hrm.p2(gpu_intensity)

    cross_intensities: list[float] = []
    attainable: list[float] = []
    bottlenecks: list[str] = []
    p1_value = 0.0
    for batch in batch_sizes:
        cost = ffn_cost(model, batch)
        # Per-byte-streamed intensity: all experts' weights cross PCIe once
        # per layer regardless of N, so intensity grows linearly with N.
        cross_intensity = cost.flops / max(cost.weight_bytes, 1.0)
        cross_intensities.append(cross_intensity)
        roofs = hrm.roofs_on_gpu(gpu_intensity, cross_intensity)
        attainable.append(roofs.attainable)
        bottlenecks.append(roofs.bottleneck)
        p1_value = hrm.p1(cross_intensity)

    return FFNCaseStudy(
        micro_batch_size=micro_batch_size,
        gpu_intensity=gpu_intensity,
        kernel_performance=kernel_performance,
        p1_intensity=p1_value,
        p2_intensity=p2,
        batch_sizes=list(batch_sizes),
        cross_intensities=cross_intensities,
        attainable=attainable,
        bottlenecks=bottlenecks,
    )
