"""Tensor-parallel scaling analysis (§4.3 / §5.3, Fig. 8).

MoE-Lightning scales within a node with tensor parallelism: each added GPU
contributes memory capacity and HBM bandwidth, which raises both the largest
feasible resident-weight fraction ``r_w`` and the feasible micro-batch size,
so throughput can grow *super-linearly* with GPU count even though the
CPU-GPU interconnect is shared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.performance_model import EfficiencyModel
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.systems.moe_lightning import MoELightningSystem
from repro.utils.validation import require_positive_int
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class ScalingPoint:
    """Throughput of one tensor-parallel group size."""

    tp_size: int
    throughput: float
    batch_size: int
    micro_batch_size: int
    weights_gpu_ratio: float

    def speedup_over(self, baseline: "ScalingPoint") -> float:
        """Throughput ratio relative to ``baseline``."""
        if baseline.throughput <= 0:
            return float("inf")
        return self.throughput / baseline.throughput

    def scaling_efficiency(self, baseline: "ScalingPoint") -> float:
        """Speedup divided by the GPU-count ratio (1.0 = linear scaling)."""
        gpu_ratio = self.tp_size / baseline.tp_size
        return self.speedup_over(baseline) / gpu_ratio


def tensor_parallel_scaling(
    model: ModelConfig,
    base_hardware: HardwareSpec,
    workload: WorkloadSpec,
    tp_sizes: tuple[int, ...] = (2, 4),
    padded: bool = False,
    efficiency: EfficiencyModel | None = None,
    max_sim_layers: int | None = 6,
    simulate: bool = True,
) -> list[ScalingPoint]:
    """Measure MoE-Lightning throughput across tensor-parallel group sizes."""
    points = []
    for tp_size in tp_sizes:
        require_positive_int("tp_size", tp_size)
        hardware = base_hardware.with_tensor_parallel(tp_size)
        system = MoELightningSystem(
            model,
            hardware,
            padded=padded,
            efficiency=efficiency,
            max_sim_layers=max_sim_layers,
        )
        result = system.run(workload, simulate=simulate)
        points.append(
            ScalingPoint(
                tp_size=tp_size,
                throughput=result.generation_throughput,
                batch_size=result.policy.batch_size,
                micro_batch_size=result.policy.micro_batch_size,
                weights_gpu_ratio=result.policy.weights_gpu_ratio,
            )
        )
    return points
