"""Schedule comparison (Fig. 6): traces, bubbles and Gantt renderings.

Runs each schedule on the same (model, hardware, policy, context) and
collects per-channel utilisation, GPU bubble fractions and an ASCII Gantt
chart of a steady-state window — the textual equivalent of the paper's
Fig. 6 timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.performance_model import EfficiencyModel
from repro.core.policy import Policy
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.runtime.resources import ResourceKind
from repro.schedules import (
    CGOPipeSchedule,
    FastDecodeSchedule,
    FlexGenCPUSchedule,
    FlexGenSchedule,
)
from repro.schedules.base import PipelineSchedule


@dataclass(frozen=True)
class ScheduleComparison:
    """Per-schedule timing and utilisation for one configuration."""

    schedule: str
    step_time: float
    gpu_utilization: float
    htod_utilization: float
    cpu_utilization: float
    gpu_bubble_fraction: float
    gantt: str = field(compare=False, default="")

    def as_row(self) -> dict[str, object]:
        """Flat dictionary used by report tables."""
        return {
            "schedule": self.schedule,
            "step_time_ms": self.step_time * 1e3,
            "gpu_util": self.gpu_utilization,
            "htod_util": self.htod_utilization,
            "cpu_util": self.cpu_utilization,
            "gpu_bubble_fraction": self.gpu_bubble_fraction,
        }


def default_schedule_set(
    model: ModelConfig,
    hardware: HardwareSpec,
    efficiency: EfficiencyModel | None = None,
    max_sim_layers: int | None = 4,
) -> list[PipelineSchedule]:
    """The four schedules of Fig. 6, CGOPipe first."""
    kwargs = {"efficiency": efficiency, "max_sim_layers": max_sim_layers}
    return [
        CGOPipeSchedule(model, hardware, **kwargs),
        FastDecodeSchedule(model, hardware, **kwargs),
        FlexGenCPUSchedule(model, hardware, **kwargs),
        FlexGenSchedule(model, hardware, **kwargs),
    ]


def compare_schedules(
    model: ModelConfig,
    hardware: HardwareSpec,
    policy: Policy,
    context_len: int = 512,
    efficiency: EfficiencyModel | None = None,
    max_sim_layers: int | None = 4,
    gantt_width: int = 96,
) -> list[ScheduleComparison]:
    """Run every Fig. 6 schedule under a common policy and compare them.

    CPU-attention schedules run the policy as given; the GPU-attention
    schedule (FlexGen S4) runs its GPU-attention twin so every schedule
    executes the same batch shape.
    """
    results = []
    for schedule in default_schedule_set(
        model, hardware, efficiency=efficiency, max_sim_layers=max_sim_layers
    ):
        if schedule.uses_cpu_attention:
            run_policy = policy.with_kv_cache_gpu_ratio(0.0)
            if run_policy.attention_on_gpu:
                run_policy = Policy(
                    batch_size=policy.batch_size,
                    micro_batch_size=policy.micro_batch_size,
                    attention_on_gpu=False,
                    ffn_on_gpu=True,
                    weights_gpu_ratio=policy.weights_gpu_ratio,
                )
        else:
            run_policy = Policy(
                batch_size=policy.batch_size,
                micro_batch_size=policy.micro_batch_size,
                attention_on_gpu=True,
                ffn_on_gpu=True,
                weights_gpu_ratio=policy.weights_gpu_ratio,
                kv_cache_gpu_ratio=0.0,
            )
        timing = schedule.step_timing(run_policy, context_len)
        simulation = schedule.simulate(run_policy, context_len, num_steps=1)
        trace = simulation.trace
        results.append(
            ScheduleComparison(
                schedule=schedule.name,
                step_time=timing.step_time,
                gpu_utilization=timing.utilization.get("gpu", 0.0),
                htod_utilization=timing.utilization.get("htod", 0.0),
                cpu_utilization=timing.utilization.get("cpu", 0.0),
                gpu_bubble_fraction=timing.gpu_bubble_fraction,
                gantt=trace.gantt(
                    width=gantt_width,
                    resources=[
                        ResourceKind.GPU,
                        ResourceKind.CPU,
                        ResourceKind.DTOH,
                        ResourceKind.HTOD,
                    ],
                ),
            )
        )
    return results
