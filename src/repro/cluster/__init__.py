"""Cluster abstraction: devices, inter-GPU links and partition plans.

This package is the seam between the single-node models of
:mod:`repro.core` / :mod:`repro.hardware` and every multi-GPU story —
tensor/expert-parallel execution (:class:`PartitionPlan` +
the partitioned core models) and data-parallel sharded serving
(:class:`ClusterSpec` + :class:`~repro.serving.sharded.ShardedServingSystem`).

* :mod:`repro.cluster.spec` — :class:`GPULinkSpec` (NVLink / PCIe-P2P /
  Ethernet), :class:`DeviceSpec` (per-device node, phase role and load
  state) and :class:`ClusterSpec` (N devices + link, shared-host,
  scale-out or heterogeneous).
* :mod:`repro.cluster.partition` — :class:`PartitionPlan` splitting a
  model's weights, KV cache and FLOPs across shards and pricing the
  resulting collectives.
"""

from repro.cluster.partition import CollectiveTraffic, PartitionPlan
from repro.cluster.spec import (
    DEVICE_ROLES,
    DEVICE_STATES,
    ClusterSpec,
    DeviceSpec,
    GPULinkSpec,
    ethernet_100g,
    nvlink,
    pcie_peer_link,
)

__all__ = [
    "ClusterSpec",
    "CollectiveTraffic",
    "DEVICE_ROLES",
    "DEVICE_STATES",
    "DeviceSpec",
    "GPULinkSpec",
    "PartitionPlan",
    "ethernet_100g",
    "nvlink",
    "pcie_peer_link",
]
