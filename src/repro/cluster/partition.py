"""Tensor/expert-parallel partitioning of a model over a cluster.

A :class:`PartitionPlan` fixes how one :class:`~repro.models.config.ModelConfig`
is split across the devices of a :class:`~repro.cluster.spec.ClusterSpec`:

* **attention** (and its KV cache) is head-parallel across *all*
  ``num_shards`` devices — the standard Megatron column/row split of the
  Q/K/V/O projections;
* **expert FFNs** combine tensor slicing within each expert (``tp_size``)
  with whole-expert placement across expert-parallel groups (``ep_size``),
  the DeepSpeed-MoE arrangement, so every device holds exactly
  ``1/num_shards`` of the expert bytes;
* **embeddings / LM head** are vocab-parallel across all devices.

Every per-shard byte and FLOP quantity is therefore the unsharded total
divided by ``num_shards`` — an invariant the property tests pin down: shard
footprints must sum back to the unsharded model exactly.

What parallelism *costs* is communication, and the plan models it on the
cluster's device link: a ring all-reduce of the layer's activations after
the attention output projection and after the FFN (each moving
``2 (g-1)/g`` of the tensor bytes per device), plus dispatch/combine
all-to-alls when experts are distributed (``top_k (e-1)/e`` of the hidden
bytes each way).  The partitioned performance model folds these volumes
into the HRM roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec, DeviceSpec
from repro.hardware.spec import HardwareSpec
from repro.core.policy import Policy
from repro.models.config import ModelConfig
from repro.models.memory import (
    attention_weight_bytes,
    embedding_weight_bytes,
    ffn_weight_bytes,
    kv_cache_bytes_per_token,
    model_weight_bytes,
)
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class CollectiveTraffic:
    """Per-device link traffic of one layer's collectives (one step).

    ``bytes_on_link`` already includes the ring / all-to-all volume factors,
    so time on the link is simply ``bytes_on_link / link_bandwidth`` plus
    ``launches`` times the link latency.
    """

    bytes_on_link: float
    launches: int

    @property
    def is_empty(self) -> bool:
        """True when the plan requires no communication (single shard)."""
        return self.bytes_on_link <= 0.0 and self.launches == 0


@dataclass(frozen=True)
class PartitionPlan:
    """How a model's weights, KV cache and FLOPs split across devices.

    ``tp_size`` is the tensor-slicing degree inside each expert;
    ``ep_size`` the number of expert-parallel groups.  Their product must
    equal the cluster's device count.  Attention is always head-parallel
    across all devices.
    """

    cluster: ClusterSpec
    tp_size: int
    ep_size: int = 1

    def __post_init__(self) -> None:
        require_positive_int("tp_size", self.tp_size)
        require_positive_int("ep_size", self.ep_size)
        if self.tp_size * self.ep_size != self.cluster.num_devices:
            raise ConfigurationError(
                f"tp_size ({self.tp_size}) x ep_size ({self.ep_size}) must "
                f"equal the cluster's num_devices ({self.cluster.num_devices})"
            )

    # ------------------------------------------------------------------
    # Shape checks
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Total number of model shards (= cluster devices)."""
        return self.cluster.num_devices

    @property
    def is_trivial(self) -> bool:
        """True when the model is not actually split (one shard)."""
        return self.num_shards == 1

    def validate_model(self, model: ModelConfig) -> None:
        """Raise when ``model`` cannot be split evenly by this plan."""
        shards = self.num_shards
        if shards == 1:
            return
        if model.num_kv_heads % shards != 0:
            raise ConfigurationError(
                f"{model.name}: num_kv_heads ({model.num_kv_heads}) must be "
                f"divisible by the shard count ({shards}) for head-parallel "
                f"attention"
            )
        if model.intermediate_size % self.tp_size != 0:
            raise ConfigurationError(
                f"{model.name}: intermediate_size ({model.intermediate_size}) "
                f"must be divisible by tp_size ({self.tp_size})"
            )
        if model.num_experts % self.ep_size != 0:
            raise ConfigurationError(
                f"{model.name}: num_experts ({model.num_experts}) must be "
                f"divisible by ep_size ({self.ep_size})"
            )

    # ------------------------------------------------------------------
    # Per-shard byte / FLOP accounting
    # ------------------------------------------------------------------
    @property
    def shard_fraction(self) -> float:
        """Fraction of weights, KV bytes and FLOPs each shard carries."""
        return 1.0 / self.num_shards

    # ------------------------------------------------------------------
    # Per-device views (heterogeneous clusters)
    # ------------------------------------------------------------------
    def shard_device(self, shard_id: int) -> "DeviceSpec":
        """The :class:`~repro.cluster.spec.DeviceSpec` shard ``shard_id`` runs on."""
        return self.cluster.device(shard_id)

    def shard_device_hardware(self, shard_id: int) -> "HardwareSpec":
        """The node shard ``shard_id`` prices against (its *own* device)."""
        return self.cluster.device_hardware(shard_id)

    @property
    def binding_device_gpu_memory(self) -> float:
        """GPU capacity of the tightest device in the cluster.

        The plan splits bytes evenly, so a shard placed on the smallest
        device is the one that decides whether the plan fits; on a
        homogeneous cluster this is simply the node's GPU memory.
        """
        if not self.cluster.devices:
            return self.cluster.node.gpu_memory
        return min(d.node.gpu_memory for d in self.cluster.devices)

    def shard_weight_bytes(self, model: ModelConfig) -> float:
        """Parameter bytes resident on one shard."""
        return model_weight_bytes(model) * self.shard_fraction

    def shard_attention_weight_bytes(self, model: ModelConfig) -> float:
        """One shard's slice of a layer's attention weights."""
        return attention_weight_bytes(model) * self.shard_fraction

    def shard_ffn_weight_bytes(self, model: ModelConfig) -> float:
        """One shard's slice of a layer's expert (FFN) weights."""
        return ffn_weight_bytes(model) * self.shard_fraction

    def shard_embedding_weight_bytes(self, model: ModelConfig) -> float:
        """One shard's vocab-parallel slice of the embeddings / LM head."""
        return embedding_weight_bytes(model) * self.shard_fraction

    def shard_kv_bytes_per_token(self, model: ModelConfig) -> float:
        """KV-cache bytes one token adds on one shard (head-parallel split)."""
        return kv_cache_bytes_per_token(model) * self.shard_fraction

    def shard_activation_bytes(self, model: ModelConfig, tokens: int) -> float:
        """Peak activation bytes on one shard for ``tokens`` tokens.

        Hidden states (input + residual) are replicated on every shard;
        the QKV projections and expert intermediates are sharded.
        """
        require_positive_int("tokens", tokens)
        dtype_bytes = model.dtype.num_bytes
        hidden = 2.0 * tokens * model.hidden_size
        qkv = tokens * (model.hidden_size + 2 * model.kv_dim) * self.shard_fraction
        ffn = (
            tokens
            * model.top_k
            * 2
            * model.intermediate_size
            * self.shard_fraction
        )
        return (hidden + qkv + ffn) * dtype_bytes

    # ------------------------------------------------------------------
    # Collective communication volumes
    # ------------------------------------------------------------------
    @staticmethod
    def _ring_allreduce_bytes(tensor_bytes: float, group: int) -> float:
        """Per-device link traffic of a ring all-reduce over ``group``."""
        if group <= 1:
            return 0.0
        return 2.0 * (group - 1) / group * tensor_bytes

    def layer_collective_traffic(
        self, model: ModelConfig, policy: Policy, tokens: int
    ) -> CollectiveTraffic:
        """Link traffic of one layer's collectives over ``tokens`` tokens.

        One all-reduce after the (sharded) attention output projection,
        plus — when the FFN runs on the GPU — either a second all-reduce
        (pure tensor parallelism) or dispatch/combine all-to-alls across
        expert groups with an all-reduce inside each group.  CPU-side
        placements involve the shared host, not the device link, so they
        add nothing here.
        """
        if self.is_trivial:
            return CollectiveTraffic(bytes_on_link=0.0, launches=0)
        hidden_bytes = float(tokens) * model.hidden_size * model.dtype.num_bytes
        traffic = self._ring_allreduce_bytes(hidden_bytes, self.num_shards)
        launches = 2
        if policy.ffn_on_gpu:
            if self.ep_size > 1:
                remote = (self.ep_size - 1) / self.ep_size
                alltoall = model.top_k * remote * hidden_bytes
                traffic += 2.0 * alltoall  # dispatch + combine
                launches += 2
                if self.tp_size > 1:
                    traffic += self._ring_allreduce_bytes(
                        hidden_bytes, self.tp_size
                    )
                    launches += 2
            else:
                traffic += self._ring_allreduce_bytes(
                    hidden_bytes, self.num_shards
                )
                launches += 2
        return CollectiveTraffic(bytes_on_link=traffic, launches=launches)

    def describe(self) -> str:
        """Human-readable summary used by reports."""
        return (
            f"{self.num_shards} shards (tp={self.tp_size}, ep={self.ep_size}) "
            f"over {self.cluster.link.name}"
        )
