"""Cluster specification: N accelerator devices plus the link between them.

A :class:`ClusterSpec` names the devices an execution spans and the GPU-to-GPU
interconnect collectives run over, generalising the single-node
:class:`~repro.hardware.spec.HardwareSpec` in two directions:

* **tensor/expert parallelism** — ``num_devices`` GPUs inside one box share
  the CPU host and the PCIe root complex (``host_shared=True``, the paper's
  2xT4 / 4xT4 settings) and split one model via a
  :class:`~repro.cluster.partition.PartitionPlan`;
* **scale-out serving** — ``num_devices`` identical nodes, each with its own
  host (``host_shared=False``), serve as data-parallel shards behind a
  :class:`~repro.serving.router.ShardRouter`.

A 1-device cluster is the degenerate case every existing single-GPU code
path maps onto; :meth:`ClusterSpec.single` builds it from a plain
:class:`HardwareSpec` so callers that never think about clusters keep
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hardware.spec import HardwareSpec
from repro.utils.errors import ConfigurationError
from repro.utils.units import GB
from repro.utils.validation import require_positive, require_positive_int


@dataclass(frozen=True)
class GPULinkSpec:
    """The device-to-device link collectives run over (NVLink / PCIe P2P).

    ``bandwidth`` is bytes/s per direction *per device*: ring collectives
    keep every device's link busy simultaneously, so collective time is the
    per-device traffic divided by this number.  ``latency`` is charged per
    collective launch.
    """

    name: str
    bandwidth: float  # bytes / second, per direction per device
    latency: float = 5e-6  # seconds per collective launch

    def __post_init__(self) -> None:
        require_positive("bandwidth", self.bandwidth)
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency}")


def nvlink() -> GPULinkSpec:
    """NVLink 3.0-class link (A100 boards): ~300 GB/s per direction."""
    return GPULinkSpec(name="NVLink", bandwidth=300 * GB)


def pcie_peer_link() -> GPULinkSpec:
    """PCIe peer-to-peer path between GPUs that lack NVLink (T4/L4 hosts)."""
    return GPULinkSpec(name="PCIe-P2P", bandwidth=12 * GB, latency=10e-6)


def ethernet_100g() -> GPULinkSpec:
    """100 GbE between scale-out nodes: ~12.5 GB/s with higher launch cost."""
    return GPULinkSpec(name="100GbE", bandwidth=12.5 * GB, latency=50e-6)


@dataclass(frozen=True)
class ClusterSpec:
    """``num_devices`` devices, the node each one lives in, and their link.

    ``node`` describes what a *single* device sees (exactly one GPU, so
    ``node.tp_size`` must be 1).  ``host_shared`` declares whether all
    devices sit in one box sharing that node's CPU and PCIe (tensor-parallel
    settings) or each device brings its own full node (scale-out serving).
    """

    name: str
    node: HardwareSpec
    num_devices: int = 1
    link: GPULinkSpec = field(default_factory=pcie_peer_link)
    host_shared: bool = True

    def __post_init__(self) -> None:
        require_positive_int("num_devices", self.num_devices)
        if self.node.tp_size != 1:
            raise ConfigurationError(
                f"cluster node must hold exactly one GPU (tp_size=1), got "
                f"tp_size={self.node.tp_size}; use ClusterSpec.from_hardware() "
                f"to split an aggregate node into devices"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, hardware: HardwareSpec) -> "ClusterSpec":
        """The trivial 1-device cluster every single-GPU caller lives on.

        A multi-GPU aggregate node (``tp_size > 1``) is split into its
        devices, so ``single`` on any registry entry gives the equivalent
        cluster view.
        """
        if hardware.tp_size > 1:
            return cls.from_hardware(hardware)
        return cls(name=hardware.name, node=hardware, num_devices=1)

    @classmethod
    def from_hardware(
        cls, hardware: HardwareSpec, link: GPULinkSpec | None = None
    ) -> "ClusterSpec":
        """Split an aggregate ``tp_size``-GPU node into a shared-host cluster.

        This is the bridge from the Table 2 registry entries (``2xT4``,
        ``4xT4``) onto the cluster layer: same devices, same shared host,
        but with the inter-GPU link — and therefore collective costs — made
        explicit.
        """
        node = replace(
            hardware,
            tp_size=1,
            name=f"{hardware.gpu.name}+{hardware.cpu.name}",
        )
        return cls(
            name=hardware.name,
            node=node,
            num_devices=hardware.tp_size,
            link=link or pcie_peer_link(),
            host_shared=True,
        )

    @classmethod
    def scale_out(
        cls,
        node: HardwareSpec,
        num_devices: int,
        link: GPULinkSpec | None = None,
        name: str | None = None,
    ) -> "ClusterSpec":
        """``num_devices`` identical full nodes behind a network link.

        Each device keeps its node's whole CPU host and PCIe link, which is
        the right model for data-parallel serving shards.
        """
        return cls(
            name=name or f"{num_devices}x[{node.name}]",
            node=node,
            num_devices=num_devices,
            link=link or ethernet_100g(),
            host_shared=False,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        """True for a 1-device cluster (the backward-compatible default)."""
        return self.num_devices == 1

    def aggregate_hardware(self) -> HardwareSpec:
        """The whole cluster as one :class:`HardwareSpec` (Table 1 symbols).

        For a shared host this is exactly the registry's aggregate node —
        GPU capacity/bandwidth/FLOPs multiplied by ``num_devices``, CPU and
        PCIe shared.  For scale-out clusters the hosts aggregate too.
        """
        if self.is_trivial:
            return self.node
        name = f"{self.num_devices}x{self.node.gpu.name}+{self.node.cpu.name}"
        if self.host_shared:
            return replace(self.node, name=name, tp_size=self.num_devices)
        cpu = replace(
            self.node.cpu,
            memory_bytes=self.node.cpu.memory_bytes * self.num_devices,
            memory_bandwidth=self.node.cpu.memory_bandwidth * self.num_devices,
            peak_flops=self.node.cpu.peak_flops * self.num_devices,
            cores=self.node.cpu.cores * self.num_devices,
        )
        interconnect = replace(
            self.node.interconnect,
            bandwidth=self.node.interconnect.bandwidth * self.num_devices,
        )
        return replace(
            self.node,
            name=name,
            cpu=cpu,
            interconnect=interconnect,
            tp_size=self.num_devices,
        )

    def shard_hardware(self) -> HardwareSpec:
        """The node one data-parallel shard sees.

        Scale-out shards own their whole node; shards of a shared host split
        its CPU memory/bandwidth/compute and its PCIe bandwidth evenly.
        """
        if self.is_trivial or not self.host_shared:
            return self.node
        share = 1.0 / self.num_devices
        cpu = replace(
            self.node.cpu,
            memory_bytes=self.node.cpu.memory_bytes * share,
            memory_bandwidth=self.node.cpu.memory_bandwidth * share,
            peak_flops=self.node.cpu.peak_flops * share,
            cores=max(1, self.node.cpu.cores // self.num_devices),
        )
        interconnect = replace(
            self.node.interconnect,
            bandwidth=self.node.interconnect.bandwidth * share,
        )
        return replace(
            self.node,
            name=f"{self.node.name}/shard",
            cpu=cpu,
            interconnect=interconnect,
        )

    def describe(self) -> str:
        """Human-readable summary used by reports."""
        sharing = "shared host" if self.host_shared else "one host per device"
        return (
            f"{self.name}: {self.num_devices}x {self.node.gpu.name} over "
            f"{self.link.name} ({self.link.bandwidth / 1e9:.0f} GB/s/dev, "
            f"{sharing})"
        )
