"""Cluster specification: N accelerator devices plus the link between them.

A :class:`ClusterSpec` names the devices an execution spans and the GPU-to-GPU
interconnect collectives run over, generalising the single-node
:class:`~repro.hardware.spec.HardwareSpec` in two directions:

* **tensor/expert parallelism** — ``num_devices`` GPUs inside one box share
  the CPU host and the PCIe root complex (``host_shared=True``, the paper's
  2xT4 / 4xT4 settings) and split one model via a
  :class:`~repro.cluster.partition.PartitionPlan`;
* **scale-out serving** — ``num_devices`` identical nodes, each with its own
  host (``host_shared=False``), serve as data-parallel shards behind a
  :class:`~repro.serving.router.ShardRouter`.

A 1-device cluster is the degenerate case every existing single-GPU code
path maps onto; :meth:`ClusterSpec.single` builds it from a plain
:class:`HardwareSpec` so callers that never think about clusters keep
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hardware.spec import HardwareSpec
from repro.utils.errors import ConfigurationError
from repro.utils.units import GB
from repro.utils.validation import require_positive, require_positive_int

#: Phase roles a device can take in a disaggregated serving cluster.
DEVICE_ROLES = ("unified", "prefill", "decode")

#: Model-load states (Helix-style): a device with no weights resident, one
#: still streaming weights in, and one ready to serve.
DEVICE_STATES = ("no-model", "loading", "ready")


@dataclass(frozen=True)
class DeviceSpec:
    """One device of a (possibly heterogeneous) cluster.

    ``node`` is the full single-GPU node the device brings (its own memory
    capacity and roofline parameters), ``role`` the serving phase it is
    specialised for, and ``state``/``ready_at`` its model-load state: a
    ``loading`` device holds weights-in-flight and starts serving at
    ``ready_at`` simulated seconds; a ``no-model`` device never serves and
    is skipped by the router entirely.
    """

    device_id: int
    node: HardwareSpec
    role: str = "unified"
    state: str = "ready"
    ready_at: float = 0.0

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ConfigurationError(
                f"device_id must be >= 0, got {self.device_id}"
            )
        if self.role not in DEVICE_ROLES:
            raise ConfigurationError(
                f"unknown device role {self.role!r}; choose from {DEVICE_ROLES}"
            )
        if self.state not in DEVICE_STATES:
            raise ConfigurationError(
                f"unknown device state {self.state!r}; choose from "
                f"{DEVICE_STATES}"
            )
        if self.node.tp_size != 1:
            raise ConfigurationError(
                f"a DeviceSpec node must hold exactly one GPU (tp_size=1), "
                f"got tp_size={self.node.tp_size}"
            )
        if self.ready_at < 0:
            raise ConfigurationError(
                f"ready_at must be >= 0, got {self.ready_at}"
            )
        if self.state == "ready" and self.ready_at != 0.0:
            raise ConfigurationError(
                "a ready device must have ready_at == 0.0; use state='loading'"
            )

    @property
    def serves(self) -> bool:
        """Whether the device can (eventually) serve requests."""
        return self.state != "no-model"


@dataclass(frozen=True)
class GPULinkSpec:
    """The device-to-device link collectives run over (NVLink / PCIe P2P).

    ``bandwidth`` is bytes/s per direction *per device*: ring collectives
    keep every device's link busy simultaneously, so collective time is the
    per-device traffic divided by this number.  ``latency`` is charged per
    collective launch.
    """

    name: str
    bandwidth: float  # bytes / second, per direction per device
    latency: float = 5e-6  # seconds per collective launch

    def __post_init__(self) -> None:
        require_positive("bandwidth", self.bandwidth)
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency}")


def nvlink() -> GPULinkSpec:
    """NVLink 3.0-class link (A100 boards): ~300 GB/s per direction."""
    return GPULinkSpec(name="NVLink", bandwidth=300 * GB)


def pcie_peer_link() -> GPULinkSpec:
    """PCIe peer-to-peer path between GPUs that lack NVLink (T4/L4 hosts)."""
    return GPULinkSpec(name="PCIe-P2P", bandwidth=12 * GB, latency=10e-6)


def ethernet_100g() -> GPULinkSpec:
    """100 GbE between scale-out nodes: ~12.5 GB/s with higher launch cost."""
    return GPULinkSpec(name="100GbE", bandwidth=12.5 * GB, latency=50e-6)


@dataclass(frozen=True)
class ClusterSpec:
    """``num_devices`` devices, the node each one lives in, and their link.

    ``node`` describes what a *single* device sees (exactly one GPU, so
    ``node.tp_size`` must be 1).  ``host_shared`` declares whether all
    devices sit in one box sharing that node's CPU and PCIe (tensor-parallel
    settings) or each device brings its own full node (scale-out serving).
    """

    name: str
    node: HardwareSpec
    num_devices: int = 1
    link: GPULinkSpec = field(default_factory=pcie_peer_link)
    host_shared: bool = True
    devices: tuple[DeviceSpec, ...] = ()

    def __post_init__(self) -> None:
        require_positive_int("num_devices", self.num_devices)
        if self.node.tp_size != 1:
            raise ConfigurationError(
                f"cluster node must hold exactly one GPU (tp_size=1), got "
                f"tp_size={self.node.tp_size}; use ClusterSpec.from_hardware() "
                f"to split an aggregate node into devices"
            )
        if self.devices:
            if len(self.devices) != self.num_devices:
                raise ConfigurationError(
                    f"devices lists {len(self.devices)} entries but "
                    f"num_devices is {self.num_devices}"
                )
            for i, dev in enumerate(self.devices):
                if dev.device_id != i:
                    raise ConfigurationError(
                        f"devices must be listed in id order: slot {i} holds "
                        f"device_id {dev.device_id}"
                    )
            roles = {d.role for d in self.devices}
            if "unified" in roles and roles & {"prefill", "decode"}:
                raise ConfigurationError(
                    "a cluster mixes either unified devices or "
                    "prefill/decode specialists, not both"
                )
            if roles & {"prefill", "decode"}:
                serving = [d for d in self.devices if d.serves]
                if not any(d.role == "prefill" for d in serving):
                    raise ConfigurationError(
                        "a disaggregated cluster needs at least one serving "
                        "prefill device"
                    )
                if not any(d.role == "decode" for d in serving):
                    raise ConfigurationError(
                        "a disaggregated cluster needs at least one serving "
                        "decode device"
                    )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, hardware: HardwareSpec) -> "ClusterSpec":
        """The trivial 1-device cluster every single-GPU caller lives on.

        A multi-GPU aggregate node (``tp_size > 1``) is split into its
        devices, so ``single`` on any registry entry gives the equivalent
        cluster view.
        """
        if hardware.tp_size > 1:
            return cls.from_hardware(hardware)
        return cls(name=hardware.name, node=hardware, num_devices=1)

    @classmethod
    def from_hardware(
        cls, hardware: HardwareSpec, link: GPULinkSpec | None = None
    ) -> "ClusterSpec":
        """Split an aggregate ``tp_size``-GPU node into a shared-host cluster.

        This is the bridge from the Table 2 registry entries (``2xT4``,
        ``4xT4``) onto the cluster layer: same devices, same shared host,
        but with the inter-GPU link — and therefore collective costs — made
        explicit.
        """
        node = replace(
            hardware,
            tp_size=1,
            name=f"{hardware.gpu.name}+{hardware.cpu.name}",
        )
        return cls(
            name=hardware.name,
            node=node,
            num_devices=hardware.tp_size,
            link=link or pcie_peer_link(),
            host_shared=True,
        )

    @classmethod
    def scale_out(
        cls,
        node: HardwareSpec,
        num_devices: int,
        link: GPULinkSpec | None = None,
        name: str | None = None,
    ) -> "ClusterSpec":
        """``num_devices`` identical full nodes behind a network link.

        Each device keeps its node's whole CPU host and PCIe link, which is
        the right model for data-parallel serving shards.
        """
        return cls(
            name=name or f"{num_devices}x[{node.name}]",
            node=node,
            num_devices=num_devices,
            link=link or ethernet_100g(),
            host_shared=False,
        )

    @classmethod
    def of_devices(
        cls,
        devices: list[DeviceSpec] | tuple[DeviceSpec, ...],
        link: GPULinkSpec | None = None,
        name: str | None = None,
    ) -> "ClusterSpec":
        """A scale-out cluster built from explicit per-device specs.

        This is the heterogeneous constructor: each device brings its own
        full node (its own GPU type, memory and roofline parameters), a
        phase role and a load state.  ``node`` is set to the first device's
        node so scalar-cluster callers keep a representative view.
        """
        devs = tuple(devices)
        if not devs:
            raise ConfigurationError("of_devices needs at least one device")
        return cls(
            name=name or f"{len(devs)}dev[{devs[0].node.gpu.name}...]",
            node=devs[0].node,
            num_devices=len(devs),
            link=link or ethernet_100g(),
            host_shared=False,
            devices=devs,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        """True for a 1-device cluster (the backward-compatible default)."""
        return self.num_devices == 1

    @property
    def is_heterogeneous(self) -> bool:
        """True when per-device specs list more than one distinct node."""
        return bool(self.devices) and any(
            d.node != self.node for d in self.devices
        )

    @property
    def is_disaggregated(self) -> bool:
        """True when devices are specialised into prefill/decode roles."""
        return bool(self.devices) and any(
            d.role != "unified" for d in self.devices
        )

    def device(self, device_id: int) -> DeviceSpec:
        """The :class:`DeviceSpec` of one device.

        Scalar clusters (no explicit ``devices``) synthesize a ready,
        unified device over :meth:`shard_hardware`, so every cluster can be
        viewed per-device.
        """
        if not 0 <= device_id < self.num_devices:
            raise ConfigurationError(
                f"device_id {device_id} out of range for "
                f"{self.num_devices}-device cluster"
            )
        if self.devices:
            return self.devices[device_id]
        return DeviceSpec(device_id=device_id, node=self.shard_hardware())

    def device_hardware(self, device_id: int) -> HardwareSpec:
        """The node one device sees (per-device for heterogeneous clusters)."""
        return self.device(device_id).node

    def aggregate_hardware(self) -> HardwareSpec:
        """The whole cluster as one :class:`HardwareSpec` (Table 1 symbols).

        For a shared host this is exactly the registry's aggregate node —
        GPU capacity/bandwidth/FLOPs multiplied by ``num_devices``, CPU and
        PCIe shared.  For scale-out clusters the hosts aggregate too.

        A *heterogeneous* cluster aggregates at the bottleneck: tensor /
        expert parallelism barriers every device at each collective, so the
        group paces at ``num_devices`` times the slowest device's roofline,
        and the equal split bounds per-shard capacity by the smallest
        device's memory.
        """
        if self.is_heterogeneous:
            return self._bottleneck_aggregate()
        if self.is_trivial:
            return self.node
        name = f"{self.num_devices}x{self.node.gpu.name}+{self.node.cpu.name}"
        if self.host_shared:
            return replace(self.node, name=name, tp_size=self.num_devices)
        cpu = replace(
            self.node.cpu,
            memory_bytes=self.node.cpu.memory_bytes * self.num_devices,
            memory_bandwidth=self.node.cpu.memory_bandwidth * self.num_devices,
            peak_flops=self.node.cpu.peak_flops * self.num_devices,
            cores=self.node.cpu.cores * self.num_devices,
        )
        interconnect = replace(
            self.node.interconnect,
            bandwidth=self.node.interconnect.bandwidth * self.num_devices,
        )
        return replace(
            self.node,
            name=name,
            cpu=cpu,
            interconnect=interconnect,
            tp_size=self.num_devices,
        )

    def _bottleneck_aggregate(self) -> HardwareSpec:
        """Barrier-paced aggregate of a heterogeneous device set.

        Collectives synchronise every device, so the group's GPU roofline is
        ``num_devices`` times the *slowest* device's, and the equal
        partition split caps usable memory at ``num_devices`` times the
        *smallest* device's.  Hosts (scale-out) sum.
        """
        n = self.num_devices
        nodes = [d.node for d in self.devices]
        gpu = replace(
            nodes[0].gpu,
            name=f"{n}xhet[{nodes[0].gpu.name}...]",
            memory_bytes=min(x.gpu.memory_bytes for x in nodes) * n,
            memory_bandwidth=min(x.gpu.memory_bandwidth for x in nodes) * n,
            peak_flops=min(x.gpu.peak_flops for x in nodes) * n,
        )
        cpu = replace(
            nodes[0].cpu,
            memory_bytes=sum(x.cpu.memory_bytes for x in nodes),
            memory_bandwidth=sum(x.cpu.memory_bandwidth for x in nodes),
            peak_flops=sum(x.cpu.peak_flops for x in nodes),
            cores=sum(x.cpu.cores for x in nodes),
        )
        interconnect = replace(
            nodes[0].interconnect,
            bandwidth=sum(x.interconnect.bandwidth for x in nodes),
        )
        return replace(
            nodes[0],
            name=f"{n}xhet[{self.name}]",
            gpu=gpu,
            cpu=cpu,
            interconnect=interconnect,
            tp_size=n,
        )

    def shard_hardware(self) -> HardwareSpec:
        """The node one data-parallel shard sees.

        Scale-out shards own their whole node; shards of a shared host split
        its CPU memory/bandwidth/compute and its PCIe bandwidth evenly.
        For a heterogeneous cluster this is the *representative* node — use
        :meth:`device_hardware` for a specific shard.
        """
        if self.is_trivial or not self.host_shared:
            return self.node
        share = 1.0 / self.num_devices
        cpu = replace(
            self.node.cpu,
            memory_bytes=self.node.cpu.memory_bytes * share,
            memory_bandwidth=self.node.cpu.memory_bandwidth * share,
            peak_flops=self.node.cpu.peak_flops * share,
            cores=max(1, self.node.cpu.cores // self.num_devices),
        )
        interconnect = replace(
            self.node.interconnect,
            bandwidth=self.node.interconnect.bandwidth * share,
        )
        return replace(
            self.node,
            name=f"{self.node.name}/shard",
            cpu=cpu,
            interconnect=interconnect,
        )

    def describe(self) -> str:
        """Human-readable summary used by reports."""
        sharing = "shared host" if self.host_shared else "one host per device"
        if self.devices:
            parts = []
            for dev in self.devices:
                tag = dev.node.gpu.name
                if dev.role != "unified":
                    tag += f":{dev.role}"
                if dev.state != "ready":
                    tag += f"({dev.state})"
                parts.append(tag)
            return (
                f"{self.name}: [{', '.join(parts)}] over {self.link.name} "
                f"({self.link.bandwidth / 1e9:.0f} GB/s/dev, {sharing})"
            )
        return (
            f"{self.name}: {self.num_devices}x {self.node.gpu.name} over "
            f"{self.link.name} ({self.link.bandwidth / 1e9:.0f} GB/s/dev, "
            f"{sharing})"
        )
