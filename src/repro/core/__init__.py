"""Core contribution: HRM, the performance model and the policy optimizer.

This package implements the paper's primary analytical machinery:

* :mod:`repro.core.roofline` — the classical Roofline Model (§3.1).
* :mod:`repro.core.hrm` — the Hierarchical Roofline Model with per-level
  compute/memory roofs, cross-level memory roofs, turning points and the
  balance point (§3.2).
* :mod:`repro.core.policy` — the policy tuple ``(N, μ, A_g, F_g, r_w, r_c)``
  (Table 1).
* :mod:`repro.core.memory_model` — GPU/CPU memory-constraint accounting for
  a policy.
* :mod:`repro.core.performance_model` — the per-layer decode latency model
  ``T = max(comm_cpu_to_gpu, T_cpu, T_gpu)`` (Eqs. 12-14) and end-to-end
  throughput estimation.
* :mod:`repro.core.optimizer` — the policy search that maximises estimated
  throughput subject to the memory constraints (§4.2).
"""

from repro.core.roofline import RooflineModel, RooflinePoint
from repro.core.hrm import (
    HierarchicalRoofline,
    MemoryLevel,
    RoofSet,
    balance_point_intensity,
    turning_point_p1,
    turning_point_p2,
)
from repro.core.policy import Placement, Policy
from repro.core.memory_model import (
    MemoryModel,
    PartitionedMemoryModel,
    PolicyMemoryUsage,
)
from repro.core.performance_model import (
    LatencyBreakdown,
    PartitionedPerformanceModel,
    PerformanceModel,
    ThroughputEstimate,
)
from repro.core.optimizer import OptimizerResult, PolicyOptimizer

__all__ = [
    "RooflineModel",
    "RooflinePoint",
    "HierarchicalRoofline",
    "MemoryLevel",
    "RoofSet",
    "balance_point_intensity",
    "turning_point_p1",
    "turning_point_p2",
    "Placement",
    "Policy",
    "MemoryModel",
    "PartitionedMemoryModel",
    "PolicyMemoryUsage",
    "LatencyBreakdown",
    "PartitionedPerformanceModel",
    "PerformanceModel",
    "ThroughputEstimate",
    "OptimizerResult",
    "PolicyOptimizer",
]
