"""Hierarchical Roofline Model (HRM), paper §3.2.

The HRM extends the classical roofline to a hierarchy of memory levels, each
coupled with a processor.  For a computation ``x`` executed at level ``i``
that fetches data from level ``j`` the attainable performance is bounded by
three roofs (Eq. 7):

* the compute roof at level ``i``:        ``P <= P_peak^i``
* the memory roof at level ``i``:         ``P <= B_peak^i * I^i``
* the cross-level memory roof ``j -> i``: ``P <= B_peak^{j,i} * I^j``

Two turning points and a balance point fall out of these roofs:

* **P1** (Eq. 9): below this intensity it is better to compute at level
  ``j`` (e.g. on the CPU) than to move the data to level ``i`` (the GPU).
* **P2** (Eq. 10): below this intensity the computation at level ``i`` is
  bound by the ``j -> i`` interconnect rather than by level ``i`` itself.
* **balance point** (Eq. 11): the intensity pair at which the level-``i``
  memory roof equals the cross-level roof; the policy optimizer looks for
  the maximum balance point that fits in device memory.

In this reproduction the hierarchy is two levels — level ``i`` = GPU
(HBM + CUDA cores), level ``j`` = CPU (DRAM + cores) — connected by PCIe,
exactly the configuration of the paper's case study (Fig. 3-5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.roofline import RooflineModel
from repro.hardware.spec import HardwareSpec
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the memory hierarchy: a memory coupled with a processor."""

    name: str
    peak_flops: float
    peak_bandwidth: float
    capacity_bytes: float

    def __post_init__(self) -> None:
        require_positive("peak_flops", self.peak_flops)
        require_positive("peak_bandwidth", self.peak_bandwidth)
        require_positive("capacity_bytes", self.capacity_bytes)

    @property
    def roofline(self) -> RooflineModel:
        """The single-level roofline of this memory level."""
        return RooflineModel(
            peak_flops=self.peak_flops, peak_bandwidth=self.peak_bandwidth
        )


@dataclass(frozen=True)
class RoofSet:
    """The attainable performance of one computation under the three roofs."""

    compute_roof: float
    local_memory_roof: float
    cross_memory_roof: float

    @property
    def attainable(self) -> float:
        """Eq. 7: the minimum of the three roofs."""
        return min(self.compute_roof, self.local_memory_roof, self.cross_memory_roof)

    @property
    def bottleneck(self) -> str:
        """Which roof is binding: ``compute``, ``local_memory`` or ``interconnect``."""
        roofs = {
            "compute": self.compute_roof,
            "local_memory": self.local_memory_roof,
            "interconnect": self.cross_memory_roof,
        }
        return min(roofs, key=roofs.get)


def turning_point_p1(
    lower: MemoryLevel, cross_bandwidth: float, intensity_at_lower: float
) -> float:
    """Critical intensity of turning point P1 (Eq. 9).

    Below the returned ``I^j`` it is not beneficial to transfer the data from
    level ``j`` (``lower``) to level ``i`` for computation, because the lower
    level could finish the work at least as fast locally.
    """
    require_positive("cross_bandwidth", cross_bandwidth)
    require_positive("intensity_at_lower", intensity_at_lower)
    lower_perf = min(
        lower.peak_flops, lower.peak_bandwidth * intensity_at_lower
    )
    return lower_perf / cross_bandwidth


def turning_point_p2(
    upper: MemoryLevel, cross_bandwidth: float, intensity_at_upper: float
) -> float:
    """Critical intensity of turning point P2 (Eq. 10).

    Below the returned ``I^j`` the computation executed at level ``i``
    (``upper``) is bound by the ``j -> i`` interconnect; above it, level
    ``i``'s own roofline is the binding constraint.
    """
    require_positive("cross_bandwidth", cross_bandwidth)
    require_positive("intensity_at_upper", intensity_at_upper)
    upper_perf = min(upper.peak_flops, upper.peak_bandwidth * intensity_at_upper)
    return upper_perf / cross_bandwidth


def balance_point_intensity(
    upper: MemoryLevel, cross_bandwidth: float, intensity_at_upper: float
) -> float:
    """The cross-level intensity ``I^j`` satisfying the balance point (Eq. 11).

    At the balance point ``B_peak^i * I^i = B_peak^{j,i} * I^j``: the
    level-``i`` memory roof and the cross-level roof are equal, so neither
    the local memory nor the interconnect is idle.
    """
    require_positive("cross_bandwidth", cross_bandwidth)
    require_positive("intensity_at_upper", intensity_at_upper)
    return upper.peak_bandwidth * intensity_at_upper / cross_bandwidth


@dataclass(frozen=True)
class HierarchicalRoofline:
    """A two-level HRM: GPU (level ``i``) over CPU (level ``j``) over PCIe."""

    gpu: MemoryLevel
    cpu: MemoryLevel
    cross_bandwidth: float

    def __post_init__(self) -> None:
        require_positive("cross_bandwidth", self.cross_bandwidth)
        if self.gpu.peak_flops < self.cpu.peak_flops:
            raise ConfigurationError(
                "HRM assumes the upper level (GPU) has peak FLOPS >= the lower "
                "level (CPU); see paper footnote 1"
            )

    @classmethod
    def from_hardware(cls, hardware: HardwareSpec) -> "HierarchicalRoofline":
        """Build the two-level HRM straight from a :class:`HardwareSpec`."""
        gpu = MemoryLevel(
            name="gpu",
            peak_flops=hardware.gpu_flops,
            peak_bandwidth=hardware.gpu_bandwidth,
            capacity_bytes=hardware.gpu_memory,
        )
        cpu = MemoryLevel(
            name="cpu",
            peak_flops=hardware.cpu_flops,
            peak_bandwidth=hardware.cpu_bandwidth,
            capacity_bytes=hardware.cpu_memory,
        )
        return cls(gpu=gpu, cpu=cpu, cross_bandwidth=hardware.cpu_gpu_bandwidth)

    # ------------------------------------------------------------------
    # Roofs and attainable performance
    # ------------------------------------------------------------------
    def roofs_on_gpu(
        self, gpu_intensity: float, cpu_intensity: float
    ) -> RoofSet:
        """Roofs for a computation on the GPU fetching data from the CPU.

        ``gpu_intensity`` is ``I^i`` (FLOPs per byte of GPU-HBM traffic);
        ``cpu_intensity`` is ``I^j`` (FLOPs per byte fetched from CPU DRAM
        over the interconnect).
        """
        require_positive("gpu_intensity", gpu_intensity)
        require_positive("cpu_intensity", cpu_intensity)
        return RoofSet(
            compute_roof=self.gpu.peak_flops,
            local_memory_roof=self.gpu.peak_bandwidth * gpu_intensity,
            cross_memory_roof=self.cross_bandwidth * cpu_intensity,
        )

    def roofs_on_cpu(self, cpu_intensity: float) -> RoofSet:
        """Roofs for a computation executed on the CPU with local data (Eq. 8)."""
        require_positive("cpu_intensity", cpu_intensity)
        return RoofSet(
            compute_roof=self.cpu.peak_flops,
            local_memory_roof=self.cpu.peak_bandwidth * cpu_intensity,
            cross_memory_roof=float("inf"),
        )

    def attainable_on_gpu(self, gpu_intensity: float, cpu_intensity: float) -> float:
        """Eq. 7 evaluated for GPU execution with CPU-resident data."""
        return self.roofs_on_gpu(gpu_intensity, cpu_intensity).attainable

    def attainable_on_cpu(self, cpu_intensity: float) -> float:
        """Eq. 8 evaluated for CPU execution."""
        return self.roofs_on_cpu(cpu_intensity).attainable

    # ------------------------------------------------------------------
    # Turning points and balance point (for a given computation)
    # ------------------------------------------------------------------
    def p1(self, cpu_intensity: float) -> float:
        """Turning point P1 for a computation with CPU-side intensity ``I^j``."""
        return turning_point_p1(self.cpu, self.cross_bandwidth, cpu_intensity)

    def p2(self, gpu_intensity: float) -> float:
        """Turning point P2 for a computation with GPU-side intensity ``I^i``."""
        return turning_point_p2(self.gpu, self.cross_bandwidth, gpu_intensity)

    def balance_point(self, gpu_intensity: float) -> float:
        """Balance-point cross-level intensity for GPU-side intensity ``I^i``."""
        return balance_point_intensity(
            self.gpu, self.cross_bandwidth, gpu_intensity
        )

    def prefer_cpu(self, gpu_intensity: float, cpu_intensity: float) -> bool:
        """Whether executing the computation on the CPU is at least as fast.

        This is the P1 test of §3.3: when the CPU-side intensity falls below
        P1's critical intensity, moving the data to the GPU cannot beat
        computing where the data lives.
        """
        gpu_perf = self.attainable_on_gpu(gpu_intensity, cpu_intensity)
        cpu_perf = self.attainable_on_cpu(cpu_intensity)
        return cpu_perf >= gpu_perf

    def classify_gpu_execution(
        self, gpu_intensity: float, cpu_intensity: float
    ) -> str:
        """Name the binding constraint for GPU execution of a computation."""
        return self.roofs_on_gpu(gpu_intensity, cpu_intensity).bottleneck

    def sweep_cross_intensity(
        self, gpu_intensity: float, cpu_intensities: Sequence[float]
    ) -> list[float]:
        """Attainable GPU performance across a range of ``I^j`` values.

        Used to produce the Fig. 5-style series: performance grows linearly
        along the interconnect roof until the balance point, then flattens.
        """
        return [
            self.attainable_on_gpu(gpu_intensity, cpu_intensity)
            for cpu_intensity in cpu_intensities
        ]
