"""GPU / CPU memory-constraint accounting for a policy.

The policy optimizer rejects any candidate whose projected GPU or CPU memory
footprint exceeds the hardware capacity (paper §4.2: "without violating the
CPU and GPU memory constraints").  This module projects those footprints
analytically:

GPU memory holds
    * the statically resident weight fraction ``r_w``,
    * a double buffer for the streamed layer weights (Appendix A.1 allocates
      ``2 x sizeof(W_L)`` so the next layer's page transfers overlap with the
      current layer's compute),
    * the GPU-resident KV-cache fraction ``r_c``,
    * peak activations of the widest live micro-batch (prefill is the peak
      because a micro-batch there carries ``μ x prompt_len`` tokens).

CPU memory holds
    * the weight fraction that is not GPU-resident,
    * the CPU-resident KV-cache fraction at its end-of-generation size,
    * pinned staging buffers for weight pages and intermediate tensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.policy import Policy
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.models.memory import (
    MemoryFootprint,
    activation_bytes,
    attention_weight_bytes,
    embedding_weight_bytes,
    kv_cache_bytes_per_token,
    layer_weight_bytes,
    model_weight_bytes,
)
from repro.utils.errors import ConfigurationError, InfeasiblePolicyError
from repro.utils.validation import require_fraction
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.cluster.partition import PartitionPlan


@dataclass(frozen=True)
class PolicyMemoryUsage:
    """Projected GPU and CPU footprints for one policy."""

    gpu: MemoryFootprint
    cpu: MemoryFootprint
    gpu_capacity: float
    cpu_capacity: float

    @property
    def gpu_fits(self) -> bool:
        """Whether the GPU footprint fits within usable GPU memory."""
        return self.gpu.total <= self.gpu_capacity

    @property
    def cpu_fits(self) -> bool:
        """Whether the CPU footprint fits within usable CPU memory."""
        return self.cpu.total <= self.cpu_capacity

    @property
    def feasible(self) -> bool:
        """Whether the policy fits in both memories."""
        return self.gpu_fits and self.cpu_fits

    @property
    def gpu_utilization(self) -> float:
        """Fraction of usable GPU memory occupied."""
        return self.gpu.total / self.gpu_capacity

    @property
    def cpu_utilization(self) -> float:
        """Fraction of usable CPU memory occupied."""
        return self.cpu.total / self.cpu_capacity


@dataclass(frozen=True)
class MemoryModel:
    """Analytical memory model for (model, hardware, workload) triples.

    ``reserve_fraction`` keeps a slice of each memory for allocator overhead,
    CUDA context, fragmentation and the framework itself.
    """

    model: ModelConfig
    hardware: HardwareSpec
    workload: WorkloadSpec
    reserve_fraction: float = 0.08
    padded: bool = False

    def __post_init__(self) -> None:
        require_fraction("reserve_fraction", self.reserve_fraction)

    # ------------------------------------------------------------------
    # Capacities
    # ------------------------------------------------------------------
    @property
    def usable_gpu_memory(self) -> float:
        """GPU bytes available to the policy after the reserve."""
        return self.hardware.gpu_memory * (1.0 - self.reserve_fraction)

    @property
    def usable_cpu_memory(self) -> float:
        """CPU bytes available to the policy after the reserve."""
        return self.hardware.cpu_memory * (1.0 - self.reserve_fraction)

    # ------------------------------------------------------------------
    # Footprint components
    # ------------------------------------------------------------------
    def prompt_len(self) -> int:
        """Prompt length charged per request (max when padding is in force)."""
        return self.workload.effective_prompt_len(self.padded)

    def kv_cache_total_bytes(self, policy: Policy) -> float:
        """KV-cache bytes for the whole batch at end of generation."""
        tokens_per_request = self.prompt_len() + self.workload.generation_len
        return (
            policy.batch_size
            * tokens_per_request
            * kv_cache_bytes_per_token(self.model)
        )

    def streamed_layer_bytes(self, policy: Policy) -> float:
        """Bytes of one layer's weights that must be streamed from CPU."""
        per_layer = layer_weight_bytes(self.model)
        if not policy.ffn_on_gpu:
            # Only the attention-side weights need to reach the GPU.
            per_layer = attention_weight_bytes(self.model)
        return policy.weights_cpu_ratio * per_layer

    def gpu_activation_peak(self, policy: Policy) -> float:
        """Peak activation bytes on the GPU across prefill and decode."""
        decode_tokens = policy.micro_batch_size
        prefill_tokens = policy.micro_batch_size * self.prompt_len()
        return max(
            activation_bytes(self.model, decode_tokens),
            activation_bytes(self.model, prefill_tokens),
        )

    def gpu_usage(self, policy: Policy) -> MemoryFootprint:
        """Projected GPU footprint for ``policy``."""
        total_weights = model_weight_bytes(self.model)
        resident_weights = policy.weights_gpu_ratio * total_weights
        # Embeddings / LM head are small relative to the expert stacks and are
        # kept on the GPU so prefill and sampling never wait on them.
        resident_weights += (
            policy.weights_cpu_ratio * embedding_weight_bytes(self.model)
        )
        double_buffer = 2.0 * self.streamed_layer_bytes(policy)
        kv_on_gpu = policy.kv_cache_gpu_ratio * self.kv_cache_total_bytes(policy)
        return MemoryFootprint(
            weights=resident_weights,
            kv_cache=kv_on_gpu,
            activations=self.gpu_activation_peak(policy),
            workspace=double_buffer,
        )

    def cpu_usage(self, policy: Policy) -> MemoryFootprint:
        """Projected CPU footprint for ``policy``."""
        total_weights = model_weight_bytes(self.model)
        cpu_weights = policy.weights_cpu_ratio * total_weights
        kv_on_cpu = policy.kv_cache_cpu_ratio * self.kv_cache_total_bytes(policy)
        # Pinned staging: two weight pages in flight plus per-micro-batch
        # hidden-state buffers (Appendix A.1).
        pinned = 2.0 * self.streamed_layer_bytes(policy)
        hidden_buffers = (
            2.0
            * policy.batch_size
            * self.model.hidden_size
            * self.model.dtype.num_bytes
        )
        return MemoryFootprint(
            weights=cpu_weights,
            kv_cache=kv_on_cpu,
            activations=hidden_buffers,
            workspace=pinned,
        )

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def usage(self, policy: Policy) -> PolicyMemoryUsage:
        """Both footprints plus the capacities they are judged against."""
        return PolicyMemoryUsage(
            gpu=self.gpu_usage(policy),
            cpu=self.cpu_usage(policy),
            gpu_capacity=self.usable_gpu_memory,
            cpu_capacity=self.usable_cpu_memory,
        )

    def is_feasible(self, policy: Policy) -> bool:
        """Whether ``policy`` fits in GPU and CPU memory."""
        return self.usage(policy).feasible

    def check(self, policy: Policy) -> PolicyMemoryUsage:
        """Like :meth:`usage` but raises when the policy does not fit."""
        usage = self.usage(policy)
        if not usage.gpu_fits:
            raise InfeasiblePolicyError(
                f"policy {policy.describe()} needs "
                f"{usage.gpu.total / 1e9:.2f} GB of GPU memory but only "
                f"{usage.gpu_capacity / 1e9:.2f} GB is usable"
            )
        if not usage.cpu_fits:
            raise InfeasiblePolicyError(
                f"policy {policy.describe()} needs "
                f"{usage.cpu.total / 1e9:.2f} GB of CPU memory but only "
                f"{usage.cpu_capacity / 1e9:.2f} GB is usable"
            )
        return usage

    # ------------------------------------------------------------------
    # Derived bounds used by the optimizer
    # ------------------------------------------------------------------
    def max_weights_gpu_ratio(self, policy: Policy) -> float:
        """Largest ``r_w`` that fits on the GPU for this ``(N, μ, r_c)``.

        More static weights always reduces interconnect traffic, so the
        optimizer pushes ``r_w`` to this bound.
        """
        total_weights = model_weight_bytes(self.model)
        base = self.gpu_usage(policy.with_weights_gpu_ratio(0.0))
        headroom = self.usable_gpu_memory - base.total
        if headroom <= 0 or total_weights <= 0:
            return 0.0
        return min(1.0, max(0.0, headroom / total_weights))

    def max_batch_size(self, policy: Policy) -> int:
        """Largest batch size ``N`` whose CPU-side footprint still fits."""
        tokens_per_request = self.prompt_len() + self.workload.generation_len
        kv_per_request = tokens_per_request * kv_cache_bytes_per_token(self.model)
        hidden_per_request = 2.0 * self.model.hidden_size * self.model.dtype.num_bytes
        per_request = (
            policy.kv_cache_cpu_ratio * kv_per_request + hidden_per_request
        )
        fixed = self.cpu_usage(policy.with_batch_size(1)).total - per_request
        headroom = self.usable_cpu_memory - fixed
        if policy.kv_cache_cpu_ratio <= 0:
            return max(1, self.workload.num_requests)
        if headroom <= 0:
            return 0
        return int(headroom / per_request)


@dataclass(frozen=True)
class PartitionedMemoryModel(MemoryModel):
    """Per-shard memory constraints for a partitioned model.

    The aggregate model judges the whole footprint against the whole
    cluster's GPU memory; partitioned execution must instead fit every
    *shard* on its *device*.  Weights, KV cache and the streamed-weight
    double buffer divide evenly across shards (the
    :class:`~repro.cluster.partition.PartitionPlan` invariant), while
    activations keep their replicated hidden states, so the per-shard
    footprint is strictly more than ``1/num_shards`` of the aggregate —
    exactly the difference that makes a nearly-full aggregate fit overflow
    a device.

    The CPU side is inherited unchanged: shards of one box share the host,
    so host memory is charged once for the whole batch.  ``hardware`` must
    be the cluster's aggregate view (as for the partitioned performance
    model); per-device capacity comes from the plan's cluster node.
    """

    plan: "PartitionPlan | None" = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.plan is None:
            raise ConfigurationError(
                "PartitionedMemoryModel requires a PartitionPlan"
            )
        self.plan.validate_model(self.model)

    # ------------------------------------------------------------------
    # Per-device capacity
    # ------------------------------------------------------------------
    @property
    def usable_gpu_memory(self) -> float:
        """One device's GPU bytes available to the policy after the reserve.

        Shards split the model *evenly*, so on a heterogeneous cluster the
        binding device is the one with the least memory: every shard must
        fit on the tightest device for the plan to be executable at all.
        """
        return self.plan.binding_device_gpu_memory * (
            1.0 - self.reserve_fraction
        )

    # ------------------------------------------------------------------
    # Per-shard footprints
    # ------------------------------------------------------------------
    def _shard_activation_peak(self, policy: Policy) -> float:
        """Peak per-shard activation bytes across prefill and decode."""
        decode_tokens = policy.micro_batch_size
        prefill_tokens = policy.micro_batch_size * self.prompt_len()
        return max(
            self.plan.shard_activation_bytes(self.model, decode_tokens),
            self.plan.shard_activation_bytes(self.model, prefill_tokens),
        )

    def gpu_usage(self, policy: Policy) -> MemoryFootprint:
        """Projected footprint of ``policy`` on *one* shard's device."""
        fraction = self.plan.shard_fraction
        total_weights = model_weight_bytes(self.model)
        resident_weights = policy.weights_gpu_ratio * total_weights * fraction
        resident_weights += (
            policy.weights_cpu_ratio
            * embedding_weight_bytes(self.model)
            * fraction
        )
        double_buffer = 2.0 * self.streamed_layer_bytes(policy) * fraction
        kv_on_gpu = (
            policy.kv_cache_gpu_ratio
            * self.kv_cache_total_bytes(policy)
            * fraction
        )
        return MemoryFootprint(
            weights=resident_weights,
            kv_cache=kv_on_gpu,
            activations=self._shard_activation_peak(policy),
            workspace=double_buffer,
        )

    def max_weights_gpu_ratio(self, policy: Policy) -> float:
        """Largest ``r_w`` whose per-shard weight slice still fits."""
        shard_weights = self.plan.shard_weight_bytes(self.model)
        base = self.gpu_usage(policy.with_weights_gpu_ratio(0.0))
        headroom = self.usable_gpu_memory - base.total
        if headroom <= 0 or shard_weights <= 0:
            return 0.0
        return min(1.0, max(0.0, headroom / shard_weights))
