"""Policy optimizer (paper §4.2).

Searches the policy space ``(N, μ, A_g, F_g, r_w, r_c)`` for the candidate
that maximises estimated generation throughput subject to the GPU and CPU
memory constraints.  The paper solves this with a small MILP; the space is
tiny (two integers with natural grids, two binaries, two ratios whose
optimum is at a memory-capacity boundary), so a structured grid search with
analytical inner steps finds the same optima in milliseconds:

* ``r_w`` (static weight fraction) — more resident weights always reduces
  interconnect traffic, so for each ``(N, μ, A_g, F_g, r_c)`` we push it to
  the largest value that still fits in GPU memory.
* ``N`` — larger batches amortise weight transfers until the CPU-side KV
  cache no longer fits, so candidates include the CPU-memory bound.
* ``μ`` — swept over a power-of-two grid bounded by the GPU-activation fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.memory_model import MemoryModel, PartitionedMemoryModel
from repro.core.performance_model import (
    EfficiencyModel,
    PartitionedPerformanceModel,
    PerformanceModel,
    ThroughputEstimate,
)
from repro.core.policy import Policy
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.utils.errors import InfeasiblePolicyError
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.cluster.partition import PartitionPlan


def _power_of_two_grid(minimum: int, maximum: int) -> list[int]:
    """Powers of two in ``[minimum, maximum]``, always including the bounds."""
    if maximum < minimum:
        return []
    values = []
    value = 1
    while value <= maximum:
        if value >= minimum:
            values.append(value)
        value *= 2
    if not values or values[0] != minimum:
        values.insert(0, minimum)
    if values[-1] != maximum:
        values.append(maximum)
    return sorted(set(values))


@dataclass(frozen=True)
class OptimizerResult:
    """Outcome of a policy search."""

    policy: Policy
    estimate: ThroughputEstimate
    candidates_evaluated: int
    feasible_candidates: int

    @property
    def throughput(self) -> float:
        """Estimated generation throughput of the selected policy."""
        return self.estimate.throughput

    @property
    def bottleneck(self) -> str:
        """Binding resource of the selected policy at mid-generation."""
        return self.estimate.bottleneck


@dataclass
class PolicyOptimizer:
    """Searches for the best policy for a (model, hardware, workload) triple.

    Parameters
    ----------
    allow_cpu_attention / allow_gpu_attention:
        Restrict the ``A_g`` axis; e.g. the FlexGen baseline without CPU
        attention sets ``allow_cpu_attention=False``.
    allow_cpu_ffn:
        Whether the latency-oriented corner ``F_g = 0`` is searched.
    max_micro_batch_size / max_batch_size:
        Optional hard caps, used to mimic baseline systems' limits.
    padded:
        Charge the maximum prompt length per request (padding-based systems).
    """

    model: ModelConfig
    hardware: HardwareSpec
    workload: WorkloadSpec
    efficiency: EfficiencyModel = field(default_factory=EfficiencyModel)
    padded: bool = False
    allow_cpu_attention: bool = True
    allow_gpu_attention: bool = True
    allow_cpu_ffn: bool = False
    max_micro_batch_size: int | None = None
    max_batch_size: int | None = None
    ratio_steps: int = 5
    partition: "PartitionPlan | None" = None

    def __post_init__(self) -> None:
        if not (self.allow_cpu_attention or self.allow_gpu_attention):
            raise InfeasiblePolicyError(
                "at least one of CPU or GPU attention must be allowed"
            )

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    @property
    def performance_model(self) -> PerformanceModel:
        """The analytical model used to score candidates.

        With a :class:`~repro.cluster.partition.PartitionPlan` the search is
        scored by the partitioned model, so collective-communication costs
        shape the chosen policy exactly as they shape the reported runs.
        """
        if self.partition is not None and not self.partition.is_trivial:
            return PartitionedPerformanceModel(
                model=self.model,
                hardware=self.hardware,
                workload=self.workload,
                efficiency=self.efficiency,
                padded=self.padded,
                plan=self.partition,
            )
        return PerformanceModel(
            model=self.model,
            hardware=self.hardware,
            workload=self.workload,
            efficiency=self.efficiency,
            padded=self.padded,
        )

    @property
    def memory_model(self) -> MemoryModel:
        """The memory-constraint model used to prune candidates.

        Partitioned searches prune on per-shard (per-device) fit, matching
        the constraint the end-to-end run enforces.
        """
        if self.partition is not None and not self.partition.is_trivial:
            return PartitionedMemoryModel(
                model=self.model,
                hardware=self.hardware,
                workload=self.workload,
                padded=self.padded,
                plan=self.partition,
            )
        return MemoryModel(
            model=self.model,
            hardware=self.hardware,
            workload=self.workload,
            padded=self.padded,
        )

    def attention_placements(self) -> list[bool]:
        """Allowed values of ``A_g`` (True = GPU attention)."""
        placements = []
        if self.allow_cpu_attention:
            placements.append(False)
        if self.allow_gpu_attention:
            placements.append(True)
        return placements

    def ffn_placements(self) -> list[bool]:
        """Allowed values of ``F_g`` (True = GPU FFN)."""
        return [True, False] if self.allow_cpu_ffn else [True]

    def micro_batch_candidates(self) -> list[int]:
        """Micro-batch sizes to sweep, bounded by the GPU activation fit."""
        memory = self.memory_model
        upper = self.max_micro_batch_size or 4096
        upper = min(upper, self.max_batch_size or upper)
        candidates = []
        for mu in _power_of_two_grid(1, upper):
            probe = Policy(batch_size=mu, micro_batch_size=mu)
            if memory.gpu_usage(probe).total <= memory.usable_gpu_memory:
                candidates.append(mu)
        # Keep a useful spread even when nothing fits (optimizer will report
        # infeasibility later instead of silently returning an empty sweep).
        return candidates or [1]

    def batch_size_candidates(self, policy: Policy) -> list[int]:
        """Batch sizes to sweep for a given micro-batch size."""
        memory = self.memory_model
        cap = self.max_batch_size or self.workload.num_requests
        max_n = min(memory.max_batch_size(policy), cap)
        mu = policy.micro_batch_size
        if max_n < mu:
            return []
        max_multiplier = max_n // mu
        multipliers = _power_of_two_grid(1, max_multiplier)
        # Always include the memory-bound maximum: the best balance point is
        # usually at the largest N that still fits (paper §3.3).
        sizes = sorted({m * mu for m in multipliers} | {max_multiplier * mu})
        return sizes

    def ratio_candidates(self) -> list[float]:
        """Grid of KV-cache GPU ratios ``r_c`` to sweep."""
        steps = max(1, self.ratio_steps)
        return [i / steps for i in range(steps + 1)]

    def candidate_policies(self) -> Iterable[Policy]:
        """Yield every candidate policy in the structured search space."""
        memory = self.memory_model
        for gpu_attention in self.attention_placements():
            for gpu_ffn in self.ffn_placements():
                kv_ratios = self.ratio_candidates() if gpu_attention else [0.0]
                for mu in self.micro_batch_candidates():
                    for kv_ratio in kv_ratios:
                        # The probe used to bound the batch size carries the
                        # KV split and the largest weight fraction the GPU can
                        # host, so CPU memory is charged realistically (the
                        # weights it does not hold stay on the CPU).
                        probe = Policy(
                            batch_size=mu,
                            micro_batch_size=mu,
                            attention_on_gpu=gpu_attention,
                            ffn_on_gpu=gpu_ffn,
                            kv_cache_gpu_ratio=kv_ratio,
                        )
                        probe = probe.with_weights_gpu_ratio(
                            memory.max_weights_gpu_ratio(probe)
                        )
                        for batch_size in self.batch_size_candidates(probe):
                            candidate = Policy(
                                batch_size=batch_size,
                                micro_batch_size=mu,
                                attention_on_gpu=gpu_attention,
                                ffn_on_gpu=gpu_ffn,
                                kv_cache_gpu_ratio=kv_ratio,
                            )
                            best_rw = memory.max_weights_gpu_ratio(candidate)
                            yield candidate.with_weights_gpu_ratio(best_rw)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self) -> OptimizerResult:
        """Run the policy search and return the best feasible policy.

        Raises :class:`InfeasiblePolicyError` when no candidate fits memory.
        """
        performance = self.performance_model
        memory = self.memory_model
        best: tuple[float, Policy, ThroughputEstimate] | None = None
        evaluated = 0
        feasible = 0
        for candidate in self.candidate_policies():
            evaluated += 1
            if not memory.is_feasible(candidate):
                continue
            feasible += 1
            estimate = performance.estimate(candidate)
            score = estimate.throughput
            if best is None or score > best[0]:
                best = (score, candidate, estimate)
        if best is None:
            raise InfeasiblePolicyError(
                f"no feasible policy for {self.model.name} on "
                f"{self.hardware.name} with workload {self.workload.name}"
            )
        _, policy, estimate = best
        return OptimizerResult(
            policy=policy,
            estimate=estimate,
            candidates_evaluated=evaluated,
            feasible_candidates=feasible,
        )

    def evaluate(self, policy: Policy) -> ThroughputEstimate:
        """Score a fixed policy (used by the Tab. 5 policy ablation)."""
        return self.performance_model.estimate_feasible(policy)

    def best_of(self, policies: Sequence[Policy]) -> OptimizerResult:
        """Pick the best feasible policy out of an explicit candidate list."""
        performance = self.performance_model
        memory = self.memory_model
        best: tuple[float, Policy, ThroughputEstimate] | None = None
        feasible = 0
        for candidate in policies:
            if not memory.is_feasible(candidate):
                continue
            feasible += 1
            estimate = performance.estimate(candidate)
            if best is None or estimate.throughput > best[0]:
                best = (estimate.throughput, candidate, estimate)
        if best is None:
            raise InfeasiblePolicyError("none of the supplied policies is feasible")
        _, policy, estimate = best
        return OptimizerResult(
            policy=policy,
            estimate=estimate,
            candidates_evaluated=len(policies),
            feasible_candidates=feasible,
        )
