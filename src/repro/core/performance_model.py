"""HRM-based performance model (paper §4.2, Eqs. 12-14).

The model estimates the per-layer decode latency of a policy as

``T = max(comm_cpu_to_gpu, T_cpu, T_gpu)``

where each computation's time is itself the ``max`` of its compute time at
(derated) peak FLOPS and its data-movement time at (derated) peak bandwidth
— exactly the two-roof form of Eq. 8/14 — and the CPU-to-GPU communication
term aggregates the streamed weight pages, the hidden-state uploads after
CPU attention and any KV-cache transfers required by the policy.

The same machinery estimates prefill latency and end-to-end generation
throughput (generated tokens divided by prefill + decode time, the paper's
metric), which is what the policy optimizer maximises.

All peaks are derated by an :class:`EfficiencyModel`; the paper similarly
pairs "theoretically calculated computation flops and bytes with profiled
peak performance and memory bandwidth".  The defaults are deliberately
modest and shared across every system we compare, so relative results —
the quantity the paper argues the model predicts well — do not depend on
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.memory_model import MemoryModel
from repro.core.policy import Policy
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.models.flops import (
    attention_decode_cost,
    attention_prefill_cost,
    ffn_cost,
    layer_norm_cost,
    lm_head_cost,
    o_proj_cost,
    qkv_proj_cost,
)
from repro.models.memory import kv_cache_bytes_per_token_per_layer
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_fraction, require_positive, require_positive_int
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.cluster.partition import PartitionPlan


@dataclass(frozen=True)
class EfficiencyModel:
    """Derating factors applied to hardware peaks.

    Real kernels do not reach spec-sheet peaks; decode-time GEMMs in
    particular are launched on small micro-batches.  A single set of factors
    is shared by every system under comparison.
    """

    gpu_compute: float = 0.55
    gpu_memory: float = 0.80
    cpu_compute: float = 0.45
    cpu_memory: float = 0.65
    interconnect: float = 0.85

    def __post_init__(self) -> None:
        for name in (
            "gpu_compute",
            "gpu_memory",
            "cpu_compute",
            "cpu_memory",
            "interconnect",
        ):
            require_fraction(name, getattr(self, name))
            require_positive(name, getattr(self, name))


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-layer decode latency decomposition (one decode step, one layer)."""

    comm_htod: float
    comm_dtoh: float
    t_cpu: float
    t_gpu: float
    components: dict = field(default_factory=dict, compare=False)

    @property
    def t_layer(self) -> float:
        """Eq. 12: the pipelined per-layer latency."""
        return max(self.comm_htod, self.comm_dtoh, self.t_cpu, self.t_gpu)

    @property
    def bottleneck(self) -> str:
        """Which term of Eq. 12 binds: ``htod``, ``dtoh``, ``cpu`` or ``gpu``."""
        terms = {
            "htod": self.comm_htod,
            "dtoh": self.comm_dtoh,
            "cpu": self.t_cpu,
            "gpu": self.t_gpu,
        }
        return max(terms, key=terms.get)

    @property
    def overlap_speedup(self) -> float:
        """Serial sum of all resource times divided by the critical path.

        A value of 1.0 means no overlap at all; values approaching the
        number of busy resources mean the pipeline hides almost everything
        behind the bottleneck resource.
        """
        serial = self.comm_htod + self.comm_dtoh + self.t_cpu + self.t_gpu
        critical = self.t_layer
        return serial / critical if critical > 0 else 1.0


@dataclass(frozen=True)
class ThroughputEstimate:
    """End-to-end generation-throughput estimate for one policy."""

    policy: Policy
    prefill_time: float
    decode_time: float
    tokens_generated: int
    breakdown: LatencyBreakdown
    bottleneck: str

    @property
    def total_time(self) -> float:
        """Prefill plus decode time for the batch."""
        return self.prefill_time + self.decode_time

    @property
    def throughput(self) -> float:
        """Generated tokens per second (the paper's metric)."""
        if self.total_time <= 0:
            return 0.0
        return self.tokens_generated / self.total_time

    @property
    def decode_throughput(self) -> float:
        """Generated tokens per second counting decode time only."""
        if self.decode_time <= 0:
            return 0.0
        return self.tokens_generated / self.decode_time


@dataclass(frozen=True)
class PerformanceModel:
    """Analytical latency/throughput model for a (model, hardware, workload).

    ``padded`` selects whether every request is charged the workload's
    maximum prompt length (FlexGen and MoE-Lightning(p)) or the average
    (MoE-Lightning with variable-length batching).
    """

    model: ModelConfig
    hardware: HardwareSpec
    workload: WorkloadSpec
    efficiency: EfficiencyModel = field(default_factory=EfficiencyModel)
    padded: bool = False

    # ------------------------------------------------------------------
    # Effective hardware rates
    # ------------------------------------------------------------------
    @property
    def gpu_flops(self) -> float:
        """Derated GPU FLOPs/s."""
        return self.hardware.gpu_flops * self.efficiency.gpu_compute

    @property
    def gpu_bandwidth(self) -> float:
        """Derated GPU HBM bandwidth."""
        return self.hardware.gpu_bandwidth * self.efficiency.gpu_memory

    @property
    def cpu_flops(self) -> float:
        """Derated CPU FLOPs/s."""
        return self.hardware.cpu_flops * self.efficiency.cpu_compute

    @property
    def cpu_bandwidth(self) -> float:
        """Derated CPU DRAM bandwidth."""
        return self.hardware.cpu_bandwidth * self.efficiency.cpu_memory

    @property
    def interconnect_bandwidth(self) -> float:
        """Derated CPU-GPU interconnect bandwidth (per direction)."""
        return self.hardware.cpu_gpu_bandwidth * self.efficiency.interconnect

    @property
    def memory_model(self) -> MemoryModel:
        """The matching memory-constraint model."""
        return MemoryModel(
            model=self.model,
            hardware=self.hardware,
            workload=self.workload,
            padded=self.padded,
        )

    def prompt_len(self) -> int:
        """Prompt length charged per request under the padding setting."""
        return self.workload.effective_prompt_len(self.padded)

    # ------------------------------------------------------------------
    # Primitive task times (Eq. 8 / Eq. 14: max(comm, comp))
    # ------------------------------------------------------------------
    def _gpu_task_time(self, flops: float, local_bytes: float) -> float:
        return max(flops / self.gpu_flops, local_bytes / self.gpu_bandwidth)

    def _cpu_task_time(self, flops: float, local_bytes: float) -> float:
        return max(flops / self.cpu_flops, local_bytes / self.cpu_bandwidth)

    def _transfer_time(self, num_bytes: float, num_transfers: int = 1) -> float:
        latency = self.hardware.interconnect.latency * max(num_transfers, 0)
        return num_bytes / self.interconnect_bandwidth + latency

    # ------------------------------------------------------------------
    # Decode-stage per-layer latency (Eqs. 12-14)
    # ------------------------------------------------------------------
    def layer_decode_breakdown(
        self, policy: Policy, context_len: int
    ) -> LatencyBreakdown:
        """Latency breakdown for one decode step of one layer at ``context_len``."""
        require_positive_int("context_len", context_len)
        mu = policy.micro_batch_size
        n_ub = policy.num_micro_batches
        dtype_bytes = self.model.dtype.num_bytes

        pre = layer_norm_cost(self.model, mu).combine(qkv_proj_cost(self.model, mu))
        attn = attention_decode_cost(self.model, mu, context_len)
        o_proj = o_proj_cost(self.model, mu)
        ffn = ffn_cost(self.model, mu)

        components: dict[str, float] = {}

        # --- GPU time -------------------------------------------------
        t_gpu = n_ub * self._gpu_task_time(pre.flops, pre.total_bytes)
        components["gpu_pre_attn"] = t_gpu
        t_o = n_ub * self._gpu_task_time(o_proj.flops, o_proj.total_bytes)
        t_gpu += t_o
        components["gpu_o_proj"] = t_o
        if policy.ffn_on_gpu:
            t_ffn = n_ub * self._gpu_task_time(ffn.flops, ffn.total_bytes)
            t_gpu += t_ffn
            components["gpu_ffn"] = t_ffn
        if policy.attention_on_gpu:
            t_attn_gpu = n_ub * self._gpu_task_time(attn.flops, attn.total_bytes)
            t_gpu += t_attn_gpu
            components["gpu_attention"] = t_attn_gpu

        # --- CPU time -------------------------------------------------
        t_cpu = 0.0
        if not policy.attention_on_gpu:
            t_cpu += n_ub * self._cpu_task_time(attn.flops, attn.total_bytes)
            components["cpu_attention"] = t_cpu
        if not policy.ffn_on_gpu:
            t_ffn_cpu = n_ub * self._cpu_task_time(ffn.flops, ffn.total_bytes)
            t_cpu += t_ffn_cpu
            components["cpu_ffn"] = t_ffn_cpu

        # --- Host-to-device traffic ------------------------------------
        memory = self.memory_model
        weight_bytes = memory.streamed_layer_bytes(policy)
        htod_bytes = weight_bytes
        components["htod_weight_bytes"] = weight_bytes
        htod_transfers = n_ub if weight_bytes > 0 else 0
        if not policy.attention_on_gpu:
            # Hidden states return to the GPU after CPU attention (D2).
            hidden_up = policy.batch_size * self.model.hidden_size * dtype_bytes
            htod_bytes += hidden_up
            htod_transfers += n_ub
            components["htod_hidden_bytes"] = hidden_up
        if policy.attention_on_gpu:
            kv_bytes = (
                policy.kv_cache_cpu_ratio
                * policy.batch_size
                * context_len
                * kv_cache_bytes_per_token_per_layer(self.model)
            )
            htod_bytes += kv_bytes
            htod_transfers += n_ub if kv_bytes > 0 else 0
            components["htod_kv_bytes"] = kv_bytes
        if not policy.ffn_on_gpu:
            # Hidden states move down for the CPU FFN and back up afterwards.
            hidden_round_trip = (
                policy.batch_size * self.model.hidden_size * dtype_bytes
            )
            htod_bytes += hidden_round_trip
            htod_transfers += n_ub
            components["htod_ffn_hidden_bytes"] = hidden_round_trip
        comm_htod = self._transfer_time(htod_bytes, htod_transfers)

        # --- Device-to-host traffic ------------------------------------
        dtoh_bytes = 0.0
        dtoh_transfers = 0
        if not policy.attention_on_gpu:
            # Query, plus the new token's key/value, offloaded after QKV (D1).
            qkv_down = (
                policy.batch_size
                * (self.model.hidden_size + 2 * self.model.kv_dim)
                * dtype_bytes
            )
            dtoh_bytes += qkv_down
            dtoh_transfers += n_ub
            components["dtoh_qkv_bytes"] = qkv_down
        else:
            # New token's key/value written back to the CPU-resident cache.
            kv_write = (
                policy.kv_cache_cpu_ratio
                * policy.batch_size
                * 2
                * self.model.kv_dim
                * dtype_bytes
            )
            dtoh_bytes += kv_write
            dtoh_transfers += n_ub if kv_write > 0 else 0
            components["dtoh_kv_write_bytes"] = kv_write
        if not policy.ffn_on_gpu:
            dtoh_bytes += policy.batch_size * self.model.hidden_size * dtype_bytes
            dtoh_transfers += n_ub
        comm_dtoh = self._transfer_time(dtoh_bytes, dtoh_transfers)

        # --- Tensor/expert-parallel collectives (partitioned models) ----
        # Collectives serialise with the GPU stream, so they extend t_gpu
        # rather than forming a fifth pipelined resource.  The base model
        # runs on one shard and contributes exactly zero here.
        t_collective = self._collective_decode_time(policy)
        if t_collective > 0.0:
            t_gpu += t_collective
            components["gpu_collective"] = t_collective

        return LatencyBreakdown(
            comm_htod=comm_htod,
            comm_dtoh=comm_dtoh,
            t_cpu=t_cpu,
            t_gpu=t_gpu,
            components=components,
        )

    # ------------------------------------------------------------------
    # Collective-communication hooks (overridden by the partitioned model)
    # ------------------------------------------------------------------
    def _collective_decode_time(self, policy: Policy) -> float:
        """Per-layer collective time of one decode step (0 on one shard)."""
        return 0.0

    def _collective_prefill_time(self, policy: Policy) -> float:
        """Per-layer collective time of the whole-batch prefill (0 base)."""
        return 0.0

    def decode_step_latency(self, policy: Policy, context_len: int) -> float:
        """Latency of one full decode step (all layers plus the LM head)."""
        layer = self.layer_decode_breakdown(policy, context_len).t_layer
        head = lm_head_cost(self.model, policy.batch_size)
        t_head = self._gpu_task_time(head.flops, head.total_bytes)
        return self.model.num_layers * layer + t_head

    def decode_time(self, policy: Policy, num_samples: int = 9) -> float:
        """Total decode time for the batch, integrating over context growth.

        The per-step latency changes with the context length (attention and
        KV traffic grow as the cache fills); we sample the step latency at
        ``num_samples`` evenly spaced context lengths and integrate with the
        trapezoidal rule.
        """
        require_positive_int("num_samples", num_samples)
        gen_len = self.workload.generation_len
        start = self.prompt_len()
        if gen_len == 1:
            return self.decode_step_latency(policy, start + 1)
        sample_count = min(num_samples, gen_len)
        positions = [
            start + 1 + round(i * (gen_len - 1) / (sample_count - 1))
            for i in range(sample_count)
        ]
        latencies = [self.decode_step_latency(policy, pos) for pos in positions]
        total = 0.0
        for i in range(sample_count - 1):
            steps = positions[i + 1] - positions[i]
            total += 0.5 * (latencies[i] + latencies[i + 1]) * steps
        return total

    # ------------------------------------------------------------------
    # Prefill stage
    # ------------------------------------------------------------------
    def prefill_time(self, policy: Policy) -> float:
        """Prefill latency for the whole batch.

        Prefill runs on the GPU for every micro-batch (paper §4); weights
        stream up, prompt KV streams down to the CPU cache, and compute is
        usually the binding term.
        """
        prompt = self.prompt_len()
        mu = policy.micro_batch_size
        n_ub = policy.num_micro_batches

        pre = layer_norm_cost(self.model, mu * prompt).combine(
            qkv_proj_cost(self.model, mu * prompt)
        )
        attn = attention_prefill_cost(self.model, mu, prompt)
        o_proj = o_proj_cost(self.model, mu * prompt)
        ffn = ffn_cost(self.model, mu * prompt)

        flops = pre.flops + attn.flops + o_proj.flops + ffn.flops
        local_bytes = (
            pre.total_bytes + attn.total_bytes + o_proj.total_bytes + ffn.total_bytes
        )
        gpu_time = n_ub * self._gpu_task_time(flops, local_bytes)
        t_collective = self._collective_prefill_time(policy)
        if t_collective > 0.0:
            gpu_time += t_collective

        memory = self.memory_model
        weight_time = self._transfer_time(memory.streamed_layer_bytes(policy), 1)
        kv_offload_bytes = (
            policy.kv_cache_cpu_ratio
            * policy.batch_size
            * prompt
            * kv_cache_bytes_per_token_per_layer(self.model)
        )
        kv_offload_time = self._transfer_time(kv_offload_bytes, n_ub)

        per_layer = max(gpu_time, weight_time, kv_offload_time)
        head = lm_head_cost(self.model, policy.batch_size)
        t_head = self._gpu_task_time(head.flops, head.total_bytes)
        return self.model.num_layers * per_layer + t_head

    # ------------------------------------------------------------------
    # End-to-end estimate
    # ------------------------------------------------------------------
    def estimate(self, policy: Policy) -> ThroughputEstimate:
        """Full throughput estimate for ``policy`` (does not check memory)."""
        mid_context = self.prompt_len() + max(1, self.workload.generation_len // 2)
        breakdown = self.layer_decode_breakdown(policy, mid_context)
        prefill = self.prefill_time(policy)
        decode = self.decode_time(policy)
        tokens = policy.batch_size * self.workload.generation_len
        return ThroughputEstimate(
            policy=policy,
            prefill_time=prefill,
            decode_time=decode,
            tokens_generated=tokens,
            breakdown=breakdown,
            bottleneck=breakdown.bottleneck,
        )

    def estimate_feasible(self, policy: Policy) -> ThroughputEstimate:
        """Like :meth:`estimate` but first enforces the memory constraints."""
        self.memory_model.check(policy)
        return self.estimate(policy)


@dataclass(frozen=True)
class PartitionedPerformanceModel(PerformanceModel):
    """HRM model for a model partitioned across a cluster's devices.

    The aggregate roofline terms are inherited unchanged — ``hardware``
    must be the cluster's :meth:`~repro.cluster.spec.ClusterSpec.aggregate_hardware`
    view, under which per-shard compute at one device's rate equals the
    aggregate computation at the aggregate rate, and the shared host/PCIe
    terms are identical.  What partitioning *adds* is the collective
    traffic of the :class:`~repro.cluster.partition.PartitionPlan`, priced
    on the cluster's device link (derated by the shared interconnect
    efficiency) and folded into the GPU stream time of every layer.
    """

    plan: "PartitionPlan | None" = None

    def __post_init__(self) -> None:
        if self.plan is None:
            raise ConfigurationError(
                "PartitionedPerformanceModel requires a PartitionPlan"
            )
        self.plan.validate_model(self.model)

    # ------------------------------------------------------------------
    # Link rates and collective times
    # ------------------------------------------------------------------
    @property
    def link_bandwidth(self) -> float:
        """Derated device-to-device link bandwidth (per direction/device)."""
        return self.plan.cluster.link.bandwidth * self.efficiency.interconnect

    @property
    def memory_model(self) -> MemoryModel:
        """The matching per-shard memory-constraint model."""
        from repro.core.memory_model import PartitionedMemoryModel

        return PartitionedMemoryModel(
            model=self.model,
            hardware=self.hardware,
            workload=self.workload,
            padded=self.padded,
            plan=self.plan,
        )

    def _collective_time(self, traffic) -> float:
        """Wall time of one layer's collectives on the device link."""
        if traffic.is_empty:
            return 0.0
        return (
            traffic.bytes_on_link / self.link_bandwidth
            + traffic.launches * self.plan.cluster.link.latency
        )

    def _collective_decode_time(self, policy: Policy) -> float:
        """Per-layer collective time for one decode step of the batch."""
        traffic = self.plan.layer_collective_traffic(
            self.model, policy, policy.batch_size
        )
        return self._collective_time(traffic)

    def _collective_prefill_time(self, policy: Policy) -> float:
        """Per-layer collective time for prefilling the whole batch."""
        traffic = self.plan.layer_collective_traffic(
            self.model, policy, policy.batch_size * self.prompt_len()
        )
        return self._collective_time(traffic)

    def collective_decode_step_time(self, policy: Policy) -> float:
        """All-layer collective time of one decode step.

        The discrete-event schedule simulators are single-node and know
        nothing about collectives; end-to-end system runs add this on top
        of each simulated decode step.
        """
        return self.model.num_layers * self._collective_decode_time(policy)
