"""The offloading policy tuple (paper Table 1, "Policy, P").

A policy fixes, for a given (model, hardware, workload) triple:

* ``batch_size`` ``N``   — tokens processed per pass of the whole model,
* ``micro_batch_size`` ``μ`` — tokens per GPU kernel launch,
* ``attention_on_gpu`` ``A_g`` — whether the attention core runs on the GPU,
* ``ffn_on_gpu`` ``F_g`` — whether the MoE FFN runs on the GPU,
* ``weights_gpu_ratio`` ``r_w`` — fraction of weights resident on the GPU,
* ``kv_cache_gpu_ratio`` ``r_c`` — fraction of the KV cache resident on GPU.

The paper's main setting produces ``A_g = 0, F_g = 1`` (CPU attention, GPU
FFN); §6.3 explores other corners under different hardware.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_fraction, require_positive_int


class Placement(enum.Enum):
    """Where a computation runs."""

    GPU = "gpu"
    CPU = "cpu"


@dataclass(frozen=True)
class Policy:
    """An offloading/scheduling policy ``(N, μ, A_g, F_g, r_w, r_c)``."""

    batch_size: int
    micro_batch_size: int
    attention_on_gpu: bool = False
    ffn_on_gpu: bool = True
    weights_gpu_ratio: float = 0.0
    kv_cache_gpu_ratio: float = 0.0

    def __post_init__(self) -> None:
        require_positive_int("batch_size", self.batch_size)
        require_positive_int("micro_batch_size", self.micro_batch_size)
        require_fraction("weights_gpu_ratio", self.weights_gpu_ratio)
        require_fraction("kv_cache_gpu_ratio", self.kv_cache_gpu_ratio)
        if self.micro_batch_size > self.batch_size:
            raise ConfigurationError(
                f"micro_batch_size ({self.micro_batch_size}) cannot exceed "
                f"batch_size ({self.batch_size})"
            )
        if not self.attention_on_gpu and self.kv_cache_gpu_ratio > 0:
            raise ConfigurationError(
                "kv_cache_gpu_ratio > 0 requires attention_on_gpu=True: with "
                "CPU attention the KV cache lives entirely in CPU memory"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_micro_batches(self) -> int:
        """Number of micro-batches per pass (``N / μ`` rounded up)."""
        return math.ceil(self.batch_size / self.micro_batch_size)

    @property
    def attention_placement(self) -> Placement:
        """Placement of the attention core."""
        return Placement.GPU if self.attention_on_gpu else Placement.CPU

    @property
    def ffn_placement(self) -> Placement:
        """Placement of the MoE FFN."""
        return Placement.GPU if self.ffn_on_gpu else Placement.CPU

    @property
    def weights_cpu_ratio(self) -> float:
        """Fraction of weights streamed from CPU each layer (``1 - r_w``)."""
        return 1.0 - self.weights_gpu_ratio

    @property
    def kv_cache_cpu_ratio(self) -> float:
        """Fraction of the KV cache resident in CPU memory (``1 - r_c``)."""
        return 1.0 - self.kv_cache_gpu_ratio

    @property
    def streams_weights(self) -> bool:
        """Whether any per-layer weight streaming from CPU is required."""
        return self.weights_gpu_ratio < 1.0

    def as_tuple(self) -> tuple:
        """The 6-tuple ``(N, μ, A_g, F_g, r_w, r_c)`` in the paper's order."""
        return (
            self.batch_size,
            self.micro_batch_size,
            int(self.attention_on_gpu),
            int(self.ffn_on_gpu),
            self.weights_gpu_ratio,
            self.kv_cache_gpu_ratio,
        )

    # ------------------------------------------------------------------
    # Convenience constructors / modifiers
    # ------------------------------------------------------------------
    def with_batch_size(self, batch_size: int) -> "Policy":
        """Copy with a different batch size (micro-batch size clamped)."""
        require_positive_int("batch_size", batch_size)
        return replace(
            self,
            batch_size=batch_size,
            micro_batch_size=min(self.micro_batch_size, batch_size),
        )

    def with_micro_batch_size(self, micro_batch_size: int) -> "Policy":
        """Copy with a different micro-batch size."""
        require_positive_int("micro_batch_size", micro_batch_size)
        return replace(self, micro_batch_size=micro_batch_size)

    def with_weights_gpu_ratio(self, ratio: float) -> "Policy":
        """Copy with a different static-weight ratio."""
        return replace(self, weights_gpu_ratio=require_fraction("ratio", ratio))

    def with_kv_cache_gpu_ratio(self, ratio: float) -> "Policy":
        """Copy with a different GPU-resident KV-cache ratio."""
        return replace(self, kv_cache_gpu_ratio=require_fraction("ratio", ratio))

    def describe(self) -> str:
        """Human-readable summary used by reports."""
        return (
            f"N={self.batch_size}, mu={self.micro_batch_size} "
            f"({self.num_micro_batches} micro-batches), "
            f"attention={'GPU' if self.attention_on_gpu else 'CPU'}, "
            f"ffn={'GPU' if self.ffn_on_gpu else 'CPU'}, "
            f"r_w={self.weights_gpu_ratio:.2f}, r_c={self.kv_cache_gpu_ratio:.2f}"
        )
