"""The classical Roofline Model (paper §3.1).

The roofline bounds achievable performance ``P`` (FLOPs/s) of a computation
with operational intensity ``I`` (FLOPs/byte) on a processor with peak
compute ``P_peak`` and memory bandwidth ``B_peak``:

``P <= min(P_peak, B_peak * I)``

The intersection ``I_crit = P_peak / B_peak`` separates the memory-bound
region (left) from the compute-bound region (right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.utils.validation import require_positive


@dataclass(frozen=True)
class RooflinePoint:
    """A computation placed on the roofline.

    ``intensity`` is FLOPs/byte, ``performance`` the attainable FLOPs/s and
    ``bound`` either ``"memory"`` or ``"compute"``.
    """

    intensity: float
    performance: float
    bound: str

    @property
    def is_memory_bound(self) -> bool:
        """Whether the computation is limited by memory bandwidth."""
        return self.bound == "memory"

    @property
    def is_compute_bound(self) -> bool:
        """Whether the computation is limited by peak compute."""
        return self.bound == "compute"


@dataclass(frozen=True)
class RooflineModel:
    """A single-level roofline: one processor, one memory."""

    peak_flops: float
    peak_bandwidth: float

    def __post_init__(self) -> None:
        require_positive("peak_flops", self.peak_flops)
        require_positive("peak_bandwidth", self.peak_bandwidth)

    @property
    def critical_intensity(self) -> float:
        """The turning point ``I_crit = P_peak / B_peak`` (Eq. 3)."""
        return self.peak_flops / self.peak_bandwidth

    def memory_roof(self, intensity: float) -> float:
        """Performance bound imposed by memory bandwidth (Eq. 1)."""
        require_positive("intensity", intensity)
        return self.peak_bandwidth * intensity

    def compute_roof(self) -> float:
        """Performance bound imposed by peak compute (Eq. 2)."""
        return self.peak_flops

    def attainable(self, intensity: float) -> float:
        """Attainable performance at ``intensity`` (the roofline itself)."""
        return min(self.compute_roof(), self.memory_roof(intensity))

    def classify(self, intensity: float) -> RooflinePoint:
        """Place a computation on the roofline and name its bottleneck."""
        performance = self.attainable(intensity)
        bound = "compute" if intensity >= self.critical_intensity else "memory"
        return RooflinePoint(intensity=intensity, performance=performance, bound=bound)

    def time_for(self, flops: float, bytes_moved: float) -> float:
        """Execution time of a task with the given FLOPs and byte traffic.

        This is the ``max(comm, comp)`` form used throughout the paper's
        performance model (Eq. 14): the task takes at least as long as its
        compute at peak FLOPs and at least as long as its data movement at
        peak bandwidth.
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes_moved must be non-negative")
        compute_time = flops / self.peak_flops
        memory_time = bytes_moved / self.peak_bandwidth
        return max(compute_time, memory_time)

    def sweep(self, intensities: Sequence[float]) -> list[RooflinePoint]:
        """Evaluate the roofline at a list of intensities (for plotting)."""
        return [self.classify(intensity) for intensity in intensities]
