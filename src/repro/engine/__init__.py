"""Functional MoE transformer engine (numpy).

The simulated systems in :mod:`repro.systems` answer *how fast* a schedule
runs; this package answers *whether the schedule computes the right thing*.
It implements a small but architecturally faithful MoE transformer — RMSNorm,
rotary position embeddings, grouped-query attention with a paged KV cache,
top-k expert routing and SwiGLU expert FFNs — and two execution paths over
the same weights:

* :mod:`repro.engine.reference` — straightforward whole-batch execution;
* :mod:`repro.engine.pipelined` — execution in CGOPipe order (micro-batched,
  layer by layer, attention computed on a separate "CPU" path from offloaded
  QKV, weights touched one page at a time),

plus an equivalence checker proving both produce identical logits, which is
the correctness argument for the scheduling contribution.
"""

from repro.engine.numerics import (
    gqa_attention_decode,
    gqa_attention_prefill,
    rms_norm,
    rotary_embedding,
    silu,
    softmax,
    top_k_routing,
)
from repro.engine.weights_init import MoEWeights
from repro.engine.moe_model import MoETransformer
from repro.engine.kv_state import KVCacheState
from repro.engine.reference import ReferenceExecutor
from repro.engine.pipelined import PipelinedExecutor
from repro.engine.sampling import greedy_sample, sample_top_k
from repro.engine.tokenizer import ToyTokenizer
from repro.engine.equivalence import max_logit_difference, outputs_equivalent

__all__ = [
    "gqa_attention_decode",
    "gqa_attention_prefill",
    "rms_norm",
    "rotary_embedding",
    "silu",
    "softmax",
    "top_k_routing",
    "MoEWeights",
    "MoETransformer",
    "KVCacheState",
    "ReferenceExecutor",
    "PipelinedExecutor",
    "greedy_sample",
    "sample_top_k",
    "ToyTokenizer",
    "max_logit_difference",
    "outputs_equivalent",
]
