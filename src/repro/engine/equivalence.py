"""Equivalence checking between reference and pipelined executions.

CGOPipe's claim is that it only *reorders* work; these helpers quantify and
assert that the reordered execution computes the same function.
"""

from __future__ import annotations

import numpy as np

from repro.engine.reference import GenerationResult


def max_logit_difference(a: GenerationResult, b: GenerationResult) -> float:
    """Largest absolute logit difference across all steps of two runs."""
    if len(a.logits_per_step) != len(b.logits_per_step):
        raise ValueError(
            f"runs have different lengths: {len(a.logits_per_step)} vs "
            f"{len(b.logits_per_step)} steps"
        )
    worst = 0.0
    for left, right in zip(a.logits_per_step, b.logits_per_step):
        worst = max(worst, float(np.max(np.abs(left - right))))
    return worst


def outputs_equivalent(
    a: GenerationResult, b: GenerationResult, atol: float = 1e-8
) -> bool:
    """Whether two runs sampled identical tokens and near-identical logits."""
    if max_logit_difference(a, b) > atol:
        return False
    if not np.array_equal(a.generated_tokens, b.generated_tokens):
        return False
    if a.kv_state is not None and b.kv_state is not None:
        return a.kv_state.equal_to(b.kv_state, atol=atol)
    return True
