"""Numerical KV-cache state for the functional engine.

Stores keys and values per layer in dense ``(batch, max_len, n_kv, head_dim)``
arrays with per-sequence lengths, mirroring what the paged KV cache holds in
pages.  Both the reference and the pipelined executor mutate an instance of
this class, so equality of their final states is part of the equivalence
check.
"""

from __future__ import annotations

import numpy as np

from repro.models.config import ModelConfig
from repro.utils.errors import SimulationError
from repro.utils.validation import require_positive_int


class KVCacheState:
    """Dense per-layer KV cache for a batch of sequences."""

    def __init__(self, config: ModelConfig, batch_size: int, max_len: int) -> None:
        require_positive_int("batch_size", batch_size)
        require_positive_int("max_len", max_len)
        self.config = config
        self.batch_size = batch_size
        self.max_len = max_len
        head_dim = config.head_dim
        n_kv = config.num_kv_heads
        shape = (config.num_layers, batch_size, max_len, n_kv, head_dim)
        self.keys = np.zeros(shape)
        self.values = np.zeros(shape)
        self.lengths = np.zeros(batch_size, dtype=int)

    def append_prefill(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Store prompt keys/values for ``layer``.

        ``k``/``v`` have shape ``(batch, seq, n_kv, head_dim)``; sequence
        lengths are only advanced after the last layer so every layer sees the
        same starting offsets.
        """
        seq = k.shape[1]
        if seq > self.max_len:
            raise SimulationError("prompt longer than the allocated KV cache")
        self.keys[layer, :, :seq] = k
        self.values[layer, :, :seq] = v
        if layer == self.config.num_layers - 1:
            self.lengths[:] = seq

    def append_decode(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Store one decode step's keys/values for ``layer``.

        ``k``/``v`` have shape ``(batch, n_kv, head_dim)``.
        """
        positions = self.lengths
        if np.any(positions >= self.max_len):
            raise SimulationError("KV cache overflow during decode")
        batch_index = np.arange(self.batch_size)
        self.keys[layer, batch_index, positions] = k
        self.values[layer, batch_index, positions] = v
        if layer == self.config.num_layers - 1:
            self.lengths += 1

    def layer_view(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Keys and values of ``layer`` (including unused tail slots)."""
        return self.keys[layer], self.values[layer]

    def copy(self) -> "KVCacheState":
        """Deep copy (used to fork reference vs. pipelined executions)."""
        clone = KVCacheState(self.config, self.batch_size, self.max_len)
        clone.keys = self.keys.copy()
        clone.values = self.values.copy()
        clone.lengths = self.lengths.copy()
        return clone

    def equal_to(self, other: "KVCacheState", atol: float = 1e-9) -> bool:
        """Whether two cache states hold the same tensors and lengths."""
        return (
            np.array_equal(self.lengths, other.lengths)
            and np.allclose(self.keys, other.keys, atol=atol)
            and np.allclose(self.values, other.values, atol=atol)
        )
