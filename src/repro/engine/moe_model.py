"""The functional MoE transformer.

:class:`MoETransformer` exposes the per-layer operations at the granularity
the schedules reason about — pre-attention (norm + QKV projection + RoPE),
the attention core, and post-attention (output projection + routed expert
FFN) — so the reference executor and the pipelined executor can call exactly
the same numerical code while ordering it differently.  Every operation is
pure per sequence/token, which is what makes micro-batched, layer-sliced
execution bit-compatible with whole-batch execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.kv_state import KVCacheState
from repro.engine.numerics import (
    gqa_attention_decode,
    gqa_attention_prefill,
    rms_norm,
    rotary_embedding,
    silu,
    softmax,
    top_k_routing,
)
from repro.engine.weights_init import MoEWeights
from repro.models.config import ModelConfig
from repro.utils.errors import ConfigurationError, SimulationError


@dataclass
class AttentionInputs:
    """QKV tensors produced by pre-attention for one group of sequences."""

    q: np.ndarray  # (batch, n_q, head_dim) in decode, (batch, seq, n_q, d) in prefill
    k: np.ndarray
    v: np.ndarray
    residual: np.ndarray  # hidden states before the attention block


class MoETransformer:
    """A numpy MoE transformer operating on explicit KV-cache state."""

    def __init__(self, weights: MoEWeights) -> None:
        self.weights = weights
        self.config: ModelConfig = weights.config

    # ------------------------------------------------------------------
    # Embedding / head
    # ------------------------------------------------------------------
    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        """Token embeddings for ``token_ids`` of shape ``(batch, seq)`` or ``(batch,)``."""
        if np.any(token_ids < 0) or np.any(token_ids >= self.config.vocab_size):
            raise ConfigurationError("token id out of vocabulary range")
        return self.weights.embedding[token_ids]

    def logits(self, hidden: np.ndarray) -> np.ndarray:
        """Final norm + LM head."""
        normed = rms_norm(hidden, self.weights.final_norm)
        return normed @ self.weights.lm_head

    # ------------------------------------------------------------------
    # Per-layer operations (decode granularity)
    # ------------------------------------------------------------------
    def _split_heads(self, x: np.ndarray, num_heads: int) -> np.ndarray:
        head_dim = self.config.head_dim
        return x.reshape(*x.shape[:-1], num_heads, head_dim)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(*x.shape[:-2], -1)

    def pre_attention_decode(
        self, layer_index: int, hidden: np.ndarray, positions: np.ndarray
    ) -> AttentionInputs:
        """Norm + QKV projection + RoPE for one decode step.

        ``hidden`` has shape ``(batch, hidden)``; ``positions`` has shape
        ``(batch,)`` (the absolute position of the token being decoded).
        """
        layer = self.weights.layers[layer_index]
        normed = rms_norm(hidden, layer.input_norm)
        q = self._split_heads(normed @ layer.wq, self.config.num_query_heads)
        k = self._split_heads(normed @ layer.wk, self.config.num_kv_heads)
        v = self._split_heads(normed @ layer.wv, self.config.num_kv_heads)
        q = rotary_embedding(q[:, None], positions[:, None])[:, 0]
        k = rotary_embedding(k[:, None], positions[:, None])[:, 0]
        return AttentionInputs(q=q, k=k, v=v, residual=hidden)

    def attention_decode(
        self,
        layer_index: int,
        inputs: AttentionInputs,
        kv_state: KVCacheState,
        rows: np.ndarray,
    ) -> np.ndarray:
        """Attention core for one decode step over the rows ``rows``.

        The new K/V is appended to the cache for those rows first (so the
        token attends to itself), then grouped-query attention runs over the
        cached context.  Returns ``(len(rows), hidden)`` attention outputs
        (pre output-projection).
        """
        positions = kv_state.lengths[rows]
        if np.any(positions >= kv_state.max_len):
            raise SimulationError(
                "KV cache overflow during decode: increase max_len when "
                "creating the KVCacheState"
            )
        kv_state.keys[layer_index, rows, positions] = inputs.k
        kv_state.values[layer_index, rows, positions] = inputs.v
        k_cache = kv_state.keys[layer_index, rows]
        v_cache = kv_state.values[layer_index, rows]
        out = gqa_attention_decode(
            inputs.q, k_cache, v_cache, context_lens=positions + 1
        )
        return self._merge_heads(out)

    def moe_ffn(self, layer_index: int, hidden: np.ndarray) -> np.ndarray:
        """Routed expert FFN over ``(tokens, hidden)`` inputs."""
        layer = self.weights.layers[layer_index]
        if not self.config.is_moe or layer.router is None:
            expert = layer.experts[0]
            gate = silu(hidden @ expert["w_gate"]) * (hidden @ expert["w_up"])
            return gate @ expert["w_down"]
        router_logits = hidden @ layer.router
        indices, gates = top_k_routing(router_logits, self.config.top_k)
        output = np.zeros_like(hidden)
        for expert_index, expert in enumerate(layer.experts):
            # Tokens (and their top-k slot) routed to this expert.
            token_rows, slot = np.nonzero(indices == expert_index)
            if token_rows.size == 0:
                continue
            tokens = hidden[token_rows]
            gate = silu(tokens @ expert["w_gate"]) * (tokens @ expert["w_up"])
            expert_out = gate @ expert["w_down"]
            output[token_rows] += expert_out * gates[token_rows, slot][:, None]
        return output

    def post_attention(
        self, layer_index: int, attn_output: np.ndarray, residual: np.ndarray
    ) -> np.ndarray:
        """Output projection, residual adds and the routed FFN."""
        layer = self.weights.layers[layer_index]
        hidden = residual + attn_output @ layer.wo
        normed = rms_norm(hidden, layer.post_attn_norm)
        return hidden + self.moe_ffn(layer_index, normed)

    # ------------------------------------------------------------------
    # Per-layer operations (prefill granularity)
    # ------------------------------------------------------------------
    def prefill_layer(
        self,
        layer_index: int,
        hidden: np.ndarray,
        positions: np.ndarray,
        kv_state: KVCacheState,
    ) -> np.ndarray:
        """One full layer over a prompt: ``hidden`` is ``(batch, seq, hidden)``."""
        layer = self.weights.layers[layer_index]
        normed = rms_norm(hidden, layer.input_norm)
        q = self._split_heads(normed @ layer.wq, self.config.num_query_heads)
        k = self._split_heads(normed @ layer.wk, self.config.num_kv_heads)
        v = self._split_heads(normed @ layer.wv, self.config.num_kv_heads)
        q = rotary_embedding(q, positions)
        k = rotary_embedding(k, positions)
        kv_state.append_prefill(layer_index, k, v)
        attn = gqa_attention_prefill(q, k, v)
        attn = self._merge_heads(attn)
        hidden = hidden + attn @ layer.wo
        normed = rms_norm(hidden, layer.post_attn_norm)
        batch, seq, width = normed.shape
        ffn_out = self.moe_ffn(layer_index, normed.reshape(batch * seq, width))
        return hidden + ffn_out.reshape(batch, seq, width)

    # ------------------------------------------------------------------
    # Routing introspection (used by tests and examples)
    # ------------------------------------------------------------------
    def router_distribution(self, layer_index: int, hidden: np.ndarray) -> np.ndarray:
        """Softmax router probabilities for ``(tokens, hidden)`` inputs."""
        layer = self.weights.layers[layer_index]
        if layer.router is None:
            return np.ones((hidden.shape[0], 1))
        return softmax(hidden @ layer.router, axis=-1)
