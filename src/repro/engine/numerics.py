"""Numerical building blocks of the MoE transformer (numpy).

Everything operates on float64/float32 numpy arrays with explicit shapes in
the docstrings.  The functions are written for clarity and testability, not
speed — the engine exists to validate execution-order semantics, not to be a
fast kernel library.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer normalisation.

    ``x`` has shape ``(..., hidden)``; ``weight`` has shape ``(hidden,)``.
    """
    variance = np.mean(np.square(x), axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation used by the gated expert FFNs."""
    return x / (1.0 + np.exp(-x))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def rotary_embedding(
    x: np.ndarray, positions: np.ndarray, base: float = 10_000.0
) -> np.ndarray:
    """Apply rotary position embeddings.

    ``x`` has shape ``(batch, seq, heads, head_dim)`` and ``positions`` has
    shape ``(batch, seq)`` (absolute token positions).  ``head_dim`` must be
    even.
    """
    head_dim = x.shape[-1]
    if head_dim % 2 != 0:
        raise ConfigurationError("rotary embeddings require an even head_dim")
    half = head_dim // 2
    freqs = 1.0 / (base ** (np.arange(half) / half))
    angles = positions[..., None] * freqs  # (batch, seq, half)
    cos = np.cos(angles)[:, :, None, :]
    sin = np.sin(angles)[:, :, None, :]
    x1, x2 = x[..., :half], x[..., half:]
    rotated = np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)
    return rotated


def _expand_kv(kv: np.ndarray, group_size: int) -> np.ndarray:
    """Repeat KV heads so each query head sees its shared KV head (GQA)."""
    return np.repeat(kv, group_size, axis=-2)


def gqa_attention_prefill(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
) -> np.ndarray:
    """Causal grouped-query attention over a full prompt.

    Shapes: ``q`` is ``(batch, seq, n_q, head_dim)``, ``k``/``v`` are
    ``(batch, seq, n_kv, head_dim)``.  Returns ``(batch, seq, n_q, head_dim)``.
    """
    batch, seq, n_q, head_dim = q.shape
    n_kv = k.shape[2]
    if n_q % n_kv != 0:
        raise ConfigurationError("query heads must be a multiple of KV heads")
    group = n_q // n_kv
    k_full = _expand_kv(k, group)
    v_full = _expand_kv(v, group)
    scale = 1.0 / np.sqrt(head_dim)
    # (batch, heads, seq_q, seq_k)
    scores = np.einsum("bqhd,bkhd->bhqk", q, k_full) * scale
    causal = np.tril(np.ones((seq, seq), dtype=bool))
    scores = np.where(causal[None, None, :, :], scores, -np.inf)
    weights = softmax(scores, axis=-1)
    out = np.einsum("bhqk,bkhd->bqhd", weights, v_full)
    return out


def gqa_attention_decode(
    q: np.ndarray,
    k_cache: np.ndarray,
    v_cache: np.ndarray,
    context_lens: np.ndarray | None = None,
) -> np.ndarray:
    """Grouped-query attention for a single decode step.

    Shapes: ``q`` is ``(batch, n_q, head_dim)``; ``k_cache``/``v_cache`` are
    ``(batch, max_context, n_kv, head_dim)``.  ``context_lens`` (shape
    ``(batch,)``) masks out unused cache slots for sequences shorter than
    ``max_context``.  Returns ``(batch, n_q, head_dim)``.
    """
    batch, n_q, head_dim = q.shape
    max_context, n_kv = k_cache.shape[1], k_cache.shape[2]
    if n_q % n_kv != 0:
        raise ConfigurationError("query heads must be a multiple of KV heads")
    group = n_q // n_kv
    k_full = _expand_kv(k_cache, group)  # (batch, ctx, n_q, head_dim)
    v_full = _expand_kv(v_cache, group)
    scale = 1.0 / np.sqrt(head_dim)
    scores = np.einsum("bhd,bchd->bhc", q, k_full) * scale
    if context_lens is not None:
        mask = np.arange(max_context)[None, :] < context_lens[:, None]
        scores = np.where(mask[:, None, :], scores, -np.inf)
    weights = softmax(scores, axis=-1)
    return np.einsum("bhc,bchd->bhd", weights, v_full)


def top_k_routing(logits: np.ndarray, top_k: int) -> tuple[np.ndarray, np.ndarray]:
    """Select the top-k experts per token and their normalised weights.

    ``logits`` has shape ``(tokens, num_experts)``.  Returns ``(indices,
    weights)`` with shapes ``(tokens, top_k)``; the weights are a softmax over
    the selected experts' logits (the Mixtral convention).
    """
    if top_k <= 0 or top_k > logits.shape[-1]:
        raise ConfigurationError(
            f"top_k must be in [1, {logits.shape[-1]}], got {top_k}"
        )
    indices = np.argpartition(-logits, top_k - 1, axis=-1)[:, :top_k]
    # Sort the selected experts by logit so the output is deterministic.
    row = np.arange(logits.shape[0])[:, None]
    order = np.argsort(-logits[row, indices], axis=-1)
    indices = np.take_along_axis(indices, order, axis=-1)
    selected = logits[row, indices]
    weights = softmax(selected, axis=-1)
    return indices, weights
