"""Pipelined executor: CGOPipe execution order over the same weights.

Decode steps are executed the way Algorithm 1 orders them — micro-batch by
micro-batch within each layer, with the attention core computed on a logical
"CPU path" from offloaded QKV tensors and the result loaded back before the
post-attention block — and the streamed weights are touched page by page
through the paged weight manager, exercising the double-buffer state machine.

Because every operation is pure per sequence, this ordering produces exactly
the same logits as the reference executor; ``repro.engine.equivalence``
asserts that, which is the correctness argument for CGOPipe's reordering.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.engine.kv_state import KVCacheState
from repro.engine.moe_model import MoETransformer
from repro.engine.reference import GenerationResult, ReferenceExecutor
from repro.engine.sampling import greedy_sample
from repro.models.memory import layer_weight_bytes
from repro.runtime.memory_manager import MemoryPool
from repro.runtime.weights import PagedWeightManager
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int


class PipelinedExecutor:
    """Micro-batched, CGOPipe-ordered execution of decode."""

    def __init__(self, model: MoETransformer, policy: Policy) -> None:
        if policy.attention_on_gpu:
            raise ConfigurationError(
                "the pipelined executor models CGOPipe, which runs attention "
                "on the CPU path (attention_on_gpu must be False)"
            )
        self.model = model
        self.policy = policy
        # A small GPU pool sized for the double buffer keeps the paged weight
        # manager honest about its buffer lifecycle during execution.
        streamed = max(
            1.0, policy.weights_cpu_ratio * layer_weight_bytes(model.config)
        )
        self.gpu_pool = MemoryPool(
            name="gpu-weights", capacity_bytes=4 * streamed, page_bytes=streamed / 64
        )
        self.weight_manager = PagedWeightManager(
            model=model.config, policy=policy, gpu_pool=self.gpu_pool
        )

    # ------------------------------------------------------------------
    # Micro-batch slicing
    # ------------------------------------------------------------------
    def micro_batch_rows(self, batch_size: int) -> list[np.ndarray]:
        """Row indices of each micro-batch for a batch of ``batch_size``."""
        mu = self.policy.micro_batch_size
        return [
            np.arange(start, min(start + mu, batch_size))
            for start in range(0, batch_size, mu)
        ]

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def decode_step(self, tokens: np.ndarray, kv_state: KVCacheState) -> np.ndarray:
        """One decode step in CGOPipe order; returns ``(batch, vocab)`` logits."""
        batch = tokens.shape[0]
        rows_per_mb = self.micro_batch_rows(batch)
        positions = kv_state.lengths.copy()
        hidden = self.model.embed(tokens)
        output_hidden = np.empty_like(hidden)

        # Per-micro-batch hidden states flow layer by layer; the "CPU path"
        # holds attention outputs between the QKV offload and the hidden load.
        current = {mb: hidden[rows] for mb, rows in enumerate(rows_per_mb)}
        for layer in range(self.model.config.num_layers):
            # Touch this layer's streamed pages (double-buffer rotation).
            self.weight_manager.begin_prefetch(layer)
            for _ in self.weight_manager.pages_for_layer(layer):
                pass
            self.weight_manager.advance_layer()

            cpu_path: dict[int, tuple] = {}
            # Pre-attention + QKV offload + CPU attention, two micro-batches
            # ahead of post-attention (Algorithm 1's launch order).
            for mb, rows in enumerate(rows_per_mb):
                inputs = self.model.pre_attention_decode(
                    layer, current[mb], positions[rows]
                )
                attn_out = self.model.attention_decode(layer, inputs, kv_state, rows)
                cpu_path[mb] = (attn_out, inputs.residual)
                # Post-attention lags two micro-batches behind.
                ready = mb - 2
                if ready >= 0:
                    attn_ready, residual_ready = cpu_path.pop(ready)
                    current[ready] = self.model.post_attention(
                        layer, attn_ready, residual_ready
                    )
            for mb in sorted(cpu_path):
                attn_ready, residual_ready = cpu_path.pop(mb)
                current[mb] = self.model.post_attention(layer, attn_ready, residual_ready)

        for mb, rows in enumerate(rows_per_mb):
            output_hidden[rows] = current[mb]
        kv_state.lengths += 1
        return self.model.logits(output_hidden)

    def generate(
        self,
        prompts: np.ndarray,
        generation_len: int,
        max_len: int | None = None,
        reference_prefill: ReferenceExecutor | None = None,
    ) -> GenerationResult:
        """Prefill (whole batch, as the paper does on GPU) then pipelined decode."""
        require_positive_int("generation_len", generation_len)
        batch, prompt_len = prompts.shape
        capacity = max_len or (prompt_len + generation_len + 1)
        kv_state = KVCacheState(self.model.config, batch, capacity)
        result = GenerationResult(kv_state=kv_state)

        prefill_executor = reference_prefill or ReferenceExecutor(self.model)
        last_hidden = prefill_executor.prefill(prompts, kv_state)
        logits = self.model.logits(last_hidden)
        tokens = greedy_sample(logits)
        result.logits_per_step.append(logits)
        result.tokens_per_step.append(tokens)

        for _ in range(generation_len - 1):
            logits = self.decode_step(tokens, kv_state)
            tokens = greedy_sample(logits)
            result.logits_per_step.append(logits)
            result.tokens_per_step.append(tokens)
        return result
