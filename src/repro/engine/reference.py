"""Reference executor: straightforward whole-batch execution.

Prefill runs layer by layer over the full padded prompt matrix; each decode
step runs every layer over the whole batch at once.  This is the semantics
the pipelined executor must match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.kv_state import KVCacheState
from repro.engine.moe_model import MoETransformer
from repro.engine.sampling import greedy_sample
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int


@dataclass
class GenerationResult:
    """Outcome of a generation run: logits trace, sampled tokens, cache."""

    logits_per_step: list[np.ndarray] = field(default_factory=list)
    tokens_per_step: list[np.ndarray] = field(default_factory=list)
    kv_state: KVCacheState | None = None

    @property
    def generated_tokens(self) -> np.ndarray:
        """Sampled token ids with shape ``(steps, batch)``."""
        return np.stack(self.tokens_per_step) if self.tokens_per_step else np.empty((0, 0))


class ReferenceExecutor:
    """Whole-batch, layer-by-layer execution of prefill and decode."""

    def __init__(self, model: MoETransformer) -> None:
        self.model = model

    def prefill(
        self, prompts: np.ndarray, kv_state: KVCacheState
    ) -> np.ndarray:
        """Run prefill over ``prompts`` of shape ``(batch, prompt_len)``.

        Returns the hidden states of the last prompt position,
        shape ``(batch, hidden)``.
        """
        if prompts.ndim != 2:
            raise ConfigurationError("prompts must have shape (batch, prompt_len)")
        batch, prompt_len = prompts.shape
        positions = np.broadcast_to(np.arange(prompt_len), (batch, prompt_len))
        hidden = self.model.embed(prompts)
        for layer in range(self.model.config.num_layers):
            hidden = self.model.prefill_layer(layer, hidden, positions, kv_state)
        return hidden[:, -1, :]

    def decode_step(
        self, tokens: np.ndarray, kv_state: KVCacheState
    ) -> np.ndarray:
        """Run one decode step for ``tokens`` of shape ``(batch,)``.

        Returns logits of shape ``(batch, vocab)``.
        """
        batch = tokens.shape[0]
        rows = np.arange(batch)
        positions = kv_state.lengths.copy()
        hidden = self.model.embed(tokens)
        for layer in range(self.model.config.num_layers):
            inputs = self.model.pre_attention_decode(layer, hidden, positions)
            attn_out = self.model.attention_decode(layer, inputs, kv_state, rows)
            hidden = self.model.post_attention(layer, attn_out, inputs.residual)
        kv_state.lengths += 1
        return self.model.logits(hidden)

    def generate(
        self, prompts: np.ndarray, generation_len: int, max_len: int | None = None
    ) -> GenerationResult:
        """Prefill then greedily decode ``generation_len`` tokens."""
        require_positive_int("generation_len", generation_len)
        batch, prompt_len = prompts.shape
        capacity = max_len or (prompt_len + generation_len + 1)
        kv_state = KVCacheState(self.model.config, batch, capacity)
        result = GenerationResult(kv_state=kv_state)

        last_hidden = self.prefill(prompts, kv_state)
        logits = self.model.logits(last_hidden)
        tokens = greedy_sample(logits)
        result.logits_per_step.append(logits)
        result.tokens_per_step.append(tokens)

        for _ in range(generation_len - 1):
            logits = self.decode_step(tokens, kv_state)
            tokens = greedy_sample(logits)
            result.logits_per_step.append(logits)
            result.tokens_per_step.append(tokens)
        return result
