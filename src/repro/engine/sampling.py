"""Token sampling strategies for the functional engine."""

from __future__ import annotations

import numpy as np

from repro.engine.numerics import softmax
from repro.utils.validation import require_positive_int


def greedy_sample(logits: np.ndarray) -> np.ndarray:
    """Pick the arg-max token per row; shape ``(batch, vocab) -> (batch,)``."""
    return np.argmax(logits, axis=-1)


def sample_top_k(
    logits: np.ndarray,
    k: int,
    temperature: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample from the top-``k`` tokens of each row after temperature scaling."""
    require_positive_int("k", k)
    if temperature <= 0:
        return greedy_sample(logits)
    rng = rng or np.random.default_rng(0)
    batch, vocab = logits.shape
    k = min(k, vocab)
    scaled = logits / temperature
    out = np.empty(batch, dtype=int)
    for row in range(batch):
        top = np.argpartition(-scaled[row], k - 1)[:k]
        probs = softmax(scaled[row, top])
        out[row] = rng.choice(top, p=probs)
    return out
