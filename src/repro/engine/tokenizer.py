"""A deterministic toy tokenizer for examples and tests.

The functional engine's weights are random, so no tokenizer could produce
meaningful text; this one exists so examples can round-trip strings into
token ids (and back into printable placeholder tokens) without external
vocabulary files.
"""

from __future__ import annotations

import hashlib

from repro.utils.validation import require_positive_int


class ToyTokenizer:
    """Hashes whitespace-separated words into a fixed-size vocabulary."""

    def __init__(self, vocab_size: int = 512) -> None:
        require_positive_int("vocab_size", vocab_size)
        self.vocab_size = vocab_size

    def encode(self, text: str) -> list[int]:
        """Token ids for ``text`` (one id per whitespace-separated word)."""
        tokens = []
        for word in text.split():
            digest = hashlib.sha256(word.lower().encode("utf-8")).digest()
            tokens.append(int.from_bytes(digest[:4], "little") % self.vocab_size)
        return tokens or [0]

    def decode(self, token_ids: list[int]) -> str:
        """Printable placeholder string for ``token_ids``."""
        return " ".join(f"<tok{token_id}>" for token_id in token_ids)

    def encode_batch(self, texts: list[str], pad_to: int | None = None) -> list[list[int]]:
        """Encode several texts, optionally left-padding to a common length."""
        encoded = [self.encode(text) for text in texts]
        if pad_to is None:
            pad_to = max(len(ids) for ids in encoded)
        return [[0] * (pad_to - len(ids)) + ids[:pad_to] for ids in encoded]
