"""Deterministic weight initialisation for the functional engine.

Weights are drawn from a seeded normal distribution scaled like standard
transformer initialisation.  The container mirrors the layout the paged
weight manager reasons about: per-layer attention projections, a router and
per-expert FFN matrices, plus embeddings, norms and the LM head.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.config import ModelConfig


@dataclass
class LayerWeights:
    """All parameters of one transformer layer."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    input_norm: np.ndarray
    post_attn_norm: np.ndarray
    router: np.ndarray | None
    experts: list[dict[str, np.ndarray]] = field(default_factory=list)


@dataclass
class MoEWeights:
    """All parameters of the model."""

    config: ModelConfig
    embedding: np.ndarray
    final_norm: np.ndarray
    lm_head: np.ndarray
    layers: list[LayerWeights] = field(default_factory=list)

    @classmethod
    def initialize(cls, config: ModelConfig, seed: int = 0) -> "MoEWeights":
        """Create a full set of weights from ``seed``."""
        rng = np.random.default_rng(seed)
        h = config.hidden_size
        kv = config.kv_dim
        inter = config.intermediate_size
        scale = 1.0 / np.sqrt(h)

        def matrix(rows: int, cols: int) -> np.ndarray:
            return rng.normal(0.0, scale, size=(rows, cols)).astype(np.float64)

        layers = []
        for _ in range(config.num_layers):
            experts = [
                {
                    "w_gate": matrix(h, inter),
                    "w_up": matrix(h, inter),
                    "w_down": matrix(inter, h),
                }
                for _ in range(config.num_experts)
            ]
            router = matrix(h, config.num_experts) if config.is_moe else None
            layers.append(
                LayerWeights(
                    wq=matrix(h, h),
                    wk=matrix(h, kv),
                    wv=matrix(h, kv),
                    wo=matrix(h, h),
                    input_norm=np.ones(h),
                    post_attn_norm=np.ones(h),
                    router=router,
                    experts=experts,
                )
            )
        embedding = rng.normal(0.0, 1.0, size=(config.vocab_size, h)) * scale
        lm_head = matrix(h, config.vocab_size)
        return cls(
            config=config,
            embedding=embedding,
            final_norm=np.ones(h),
            lm_head=lm_head,
            layers=layers,
        )

    def num_parameters(self) -> int:
        """Total number of scalar parameters held by this container."""
        count = self.embedding.size + self.final_norm.size + self.lm_head.size
        for layer in self.layers:
            count += (
                layer.wq.size
                + layer.wk.size
                + layer.wv.size
                + layer.wo.size
                + layer.input_norm.size
                + layer.post_attn_norm.size
            )
            if layer.router is not None:
                count += layer.router.size
            for expert in layer.experts:
                count += sum(weight.size for weight in expert.values())
        return count
