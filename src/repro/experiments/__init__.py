"""Experiment harnesses: one module per table/figure of the paper.

Every harness returns plain rows (lists of dictionaries) so the benchmark
suite, the examples and the report generator can share them:

* :mod:`repro.experiments.settings` — the model/hardware settings of Tab. 2
  and the workloads of Tab. 3.
* :mod:`repro.experiments.e2e` — Fig. 7 (MTBench) and Tab. 4 (HELM tasks).
* :mod:`repro.experiments.ablation_policy` — Tab. 5 (optimizer policy
  ablation).
* :mod:`repro.experiments.ablation_kernels` — Fig. 9 (CPU attention vs. MoE
  FFN vs. KV transfer latency).
* :mod:`repro.experiments.hardware_sweep` — Fig. 10 (policy vs. hardware).
* :mod:`repro.experiments.pipeline_diagram` — Fig. 6 (schedule comparison).
* :mod:`repro.experiments.throughput_vs_cpumem` — Fig. 1 (throughput vs.
  CPU memory).
* :mod:`repro.experiments.tp_scaling` — Fig. 8 (tensor-parallel scaling).
* :mod:`repro.experiments.serving_sweep` — online continuous-batching load
  sweep (throughput vs. tail latency / SLO-goodput; not a paper artifact).
* :mod:`repro.experiments.shard_scaling` — sharded-serving scaling sweep
  (throughput and tails vs. data-parallel shard count; not a paper
  artifact).
* :mod:`repro.experiments.cache_sweep` — prefix-cache on/off sweep over a
  multi-turn chat stream (hit rate vs. TTFT/throughput/SLO-goodput; not a
  paper artifact).
* :mod:`repro.experiments.overlap_sweep` — serialized vs. overlapped
  prefill/decode streams over one loaded chat stream (goodput/TPOT/TTFT
  curves; not a paper artifact).
* :mod:`repro.experiments.disagg_sweep` — disaggregated prefill/decode
  pools (priced KV migration, phase-aware routing) vs. unified serving at
  equal device count, plus a heterogeneous fast-prefill cluster (not a
  paper artifact).
* :mod:`repro.experiments.simperf_sweep` — simulator raw-speed sweep
  (events/sec vs. stream length and shard count; measures the simulator
  itself, not a paper artifact).
* :mod:`repro.experiments.bench_output` — machine-readable ``BENCH_*.json``
  artifacts for CI trend tracking.
* :mod:`repro.experiments.report` — table rendering and EXPERIMENTS.md
  regeneration.
"""

from repro.experiments.settings import (
    EVALUATION_SETTINGS,
    EvaluationSetting,
    get_setting,
    list_settings,
)
from repro.experiments.e2e import run_helm_experiment, run_mtbench_experiment
from repro.experiments.ablation_policy import run_policy_ablation
from repro.experiments.ablation_kernels import run_kernel_latency_ablation
from repro.experiments.hardware_sweep import run_hardware_sweep
from repro.experiments.pipeline_diagram import run_schedule_comparison
from repro.experiments.throughput_vs_cpumem import run_cpu_memory_sweep
from repro.experiments.tp_scaling import run_tp_scaling
from repro.experiments.serving_sweep import offline_capacity, run_serving_sweep
from repro.experiments.shard_scaling import run_shard_scaling
from repro.experiments.cache_sweep import run_cache_sweep
from repro.experiments.disagg_sweep import run_disagg_sweep
from repro.experiments.overlap_sweep import run_overlap_sweep
from repro.experiments.bench_output import (
    serving_summary,
    simperf_summary,
    write_bench_serving_json,
    write_bench_simperf_json,
)
from repro.experiments.simperf_sweep import run_simperf_sweep
from repro.experiments.report import render_rows, rows_to_markdown

__all__ = [
    "EVALUATION_SETTINGS",
    "EvaluationSetting",
    "get_setting",
    "list_settings",
    "run_helm_experiment",
    "run_mtbench_experiment",
    "run_policy_ablation",
    "run_kernel_latency_ablation",
    "run_hardware_sweep",
    "run_schedule_comparison",
    "run_cpu_memory_sweep",
    "run_tp_scaling",
    "offline_capacity",
    "run_serving_sweep",
    "run_shard_scaling",
    "run_cache_sweep",
    "run_disagg_sweep",
    "run_overlap_sweep",
    "run_simperf_sweep",
    "serving_summary",
    "simperf_summary",
    "write_bench_serving_json",
    "write_bench_simperf_json",
    "render_rows",
    "rows_to_markdown",
]
