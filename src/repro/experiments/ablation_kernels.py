"""Kernel latency ablation (paper Fig. 9).

For each micro-batch size and context length, compares the single-layer
latency of (a) transferring the micro-batch's KV cache from CPU pinned
memory to the GPU, (b) the CPU grouped-query attention kernel, and (c) the
GPU MoE FFN kernel.  The paper's observations to reproduce:

* the CPU attention kernel is roughly 3-4x faster than the KV transfer
  (the ratio of CPU DRAM to PCIe bandwidth);
* the MoE FFN latency barely changes with the micro-batch size (it is
  memory-bound on the expert weights during decode);
* CPU attention eventually overtakes the FFN as ``μ x context`` grows.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.performance_model import EfficiencyModel
from repro.experiments.settings import get_setting
from repro.runtime.costs import TaskCostModel


def run_kernel_latency_ablation(
    setting_name: str = "S2",
    micro_batch_sizes: Sequence[int] = (32, 64, 128, 256),
    context_lengths: Sequence[int] = (128, 256, 512, 1024, 2048),
    efficiency: EfficiencyModel | None = None,
) -> list[dict[str, object]]:
    """Latency of KV transfer vs. CPU attention vs. MoE FFN per (μ, context)."""
    setting = get_setting(setting_name)
    costs = TaskCostModel(
        model=setting.model,
        hardware=setting.hardware,
        efficiency=efficiency or EfficiencyModel(),
    )
    rows = []
    for micro_batch in micro_batch_sizes:
        for context_len in context_lengths:
            kv_transfer = costs.kv_transfer(micro_batch, context_len)
            cpu_attention = costs.cpu_attention(micro_batch, context_len)
            moe_ffn = costs.post_attention(micro_batch, ffn_on_gpu=True)
            rows.append(
                {
                    "micro_batch_size": micro_batch,
                    "context_len": context_len,
                    "kv_transfer_s": kv_transfer,
                    "cpu_attention_s": cpu_attention,
                    "moe_ffn_s": moe_ffn,
                    "kv_over_cpu_attention": kv_transfer / cpu_attention,
                    "cpu_attention_over_ffn": cpu_attention / moe_ffn,
                }
            )
    return rows


def crossover_points(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """For each micro-batch size, the smallest context where CPU attention
    exceeds the MoE FFN latency (None if it never does in the sweep)."""
    by_micro_batch: dict[int, list[dict[str, object]]] = {}
    for row in rows:
        by_micro_batch.setdefault(int(row["micro_batch_size"]), []).append(row)
    crossings = []
    for micro_batch, group in sorted(by_micro_batch.items()):
        group = sorted(group, key=lambda r: r["context_len"])
        crossing = next(
            (
                r["context_len"]
                for r in group
                if r["cpu_attention_s"] > r["moe_ffn_s"]
            ),
            None,
        )
        crossings.append(
            {"micro_batch_size": micro_batch, "crossover_context_len": crossing}
        )
    return crossings
