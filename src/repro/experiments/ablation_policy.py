"""Optimizer-policy ablation (paper Table 5).

Compares, on MTBench @ S1 with generation length 128:

* FlexGen with its own (native) policy,
* FlexGen executing the policy our optimizer selects for it,
* FlexGen with our policy and the batch size grown to the CPU-memory bound,
* MoE-Lightning(p) with the same micro-batch/batch shape,

demonstrating that both the policy (HRM) and the schedule (CGOPipe)
contribute to the end-to-end gain.
"""

from __future__ import annotations

from repro.core.performance_model import EfficiencyModel
from repro.experiments.settings import get_setting
from repro.systems import FlexGenSystem, MoELightningSystem


def run_policy_ablation(
    setting_name: str = "S1",
    generation_len: int = 128,
    efficiency: EfficiencyModel | None = None,
    max_sim_layers: int | None = 6,
    simulate: bool = True,
) -> list[dict[str, object]]:
    """Reproduce Table 5's four rows."""
    setting = get_setting(setting_name)
    model, hardware = setting.model, setting.hardware
    workload = setting.workload("mtbench", generation_len=generation_len)
    kwargs = {"efficiency": efficiency, "max_sim_layers": max_sim_layers}

    rows: list[dict[str, object]] = []

    flexgen_native = FlexGenSystem(model, hardware, policy_mode="native", **kwargs)
    native_result = flexgen_native.run(workload, simulate=simulate)
    rows.append(_row("flexgen w/ their policy", native_result))

    flexgen_hrm = FlexGenSystem(model, hardware, policy_mode="hrm", **kwargs)
    hrm_policy = flexgen_hrm.select_policy(workload)
    hrm_result = flexgen_hrm.run(workload, policy=hrm_policy, simulate=simulate)
    rows.append(_row("flexgen w/ our policy", hrm_result))

    # Grow the batch to the CPU-memory bound while keeping our micro-batch.
    memory = flexgen_hrm.memory_model(workload)
    max_batch = memory.max_batch_size(hrm_policy)
    max_batch = (max_batch // hrm_policy.micro_batch_size) * hrm_policy.micro_batch_size
    larger = hrm_policy.with_batch_size(max(max_batch, hrm_policy.batch_size))
    larger = larger.with_weights_gpu_ratio(memory.max_weights_gpu_ratio(larger))
    larger_result = flexgen_hrm.run(workload, policy=larger, simulate=simulate)
    rows.append(_row("flexgen w/ our policy + larger N", larger_result))

    lightning = MoELightningSystem(model, hardware, padded=True, **kwargs)
    # MoE-Lightning runs the same batch shape but with CPU attention + CGOPipe;
    # the batch is clamped (and the resident-weight fraction re-fitted) so the
    # constructed policy stays within memory under CGOPipe's own footprint.
    cgopipe_policy = lightning.select_policy(workload).with_micro_batch_size(
        hrm_policy.micro_batch_size
    )
    lightning_memory = lightning.memory_model(workload)
    target_batch = min(
        hrm_policy.batch_size, lightning_memory.max_batch_size(cgopipe_policy)
    )
    target_batch = max(
        cgopipe_policy.micro_batch_size,
        (target_batch // cgopipe_policy.micro_batch_size)
        * cgopipe_policy.micro_batch_size,
    )
    cgopipe_policy = cgopipe_policy.with_batch_size(target_batch)
    cgopipe_policy = cgopipe_policy.with_weights_gpu_ratio(
        lightning_memory.max_weights_gpu_ratio(cgopipe_policy)
    )
    lightning_result = lightning.run(workload, policy=cgopipe_policy, simulate=simulate)
    rows.append(_row("moe-lightning (p)", lightning_result))

    baseline = rows[0]["throughput"]
    for row in rows:
        row["speedup_vs_flexgen"] = (
            row["throughput"] / baseline if baseline else None
        )
    return rows


def _row(label: str, result) -> dict[str, object]:
    return {
        "variant": label,
        "micro_batch_size": result.policy.micro_batch_size,
        "batch_size": result.policy.batch_size,
        "throughput": result.generation_throughput,
        "prefill_time": result.prefill_time,
        "decode_time": result.decode_time,
    }
