"""Machine-readable benchmark artifacts (``BENCH_*.json``).

The bench suite and the examples print human tables; CI and trend tooling
need stable JSON.  This module owns the schema so every emitter (the
``repro-serve`` CLI, ``examples/serving_demo.py`` and
``benchmarks/test_bench_serving.py``) writes the same shape:

```json
{
  "benchmark": "serving",
  "schema_version": 2,
  "git_sha": "...",                   # emitting checkout (or "unknown")
  "created_at": "...",                # UTC ISO-8601 run timestamp
  "meta": {...},                      # workload / hardware / sweep knobs
  "summary": {                        # one entry per system, measured at
    "moe-lightning": {                # the load factor closest to 1.0
      "token_throughput": ..., "ttft_p50": ..., "ttft_p99": ...,
      "tpot_p50": ..., "tpot_p99": ..., "goodput": ...,
      "goodput_fraction": ...
    }
  },
  "rows": [...]                       # every sweep row, verbatim
}
```

Only JSON-serialisable row values survive (numbers, strings, bools); the
writer drops anything else rather than failing mid-benchmark.
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Mapping, Sequence

#: Bumped whenever the artifact shape changes.  2: provenance stamps
#: (``git_sha``, ``created_at``) and p50/p99 E2E percentiles in summaries.
BENCH_SCHEMA_VERSION = 2

#: Metrics copied from a sweep row into the per-system summary when the row
#: carries them.  Serving rows always report hit_rate/cached_token_fraction
#: (0.0 under cache-off); num_shards appears only in sharded sweeps.
SUMMARY_METRICS: tuple[str, ...] = (
    "token_throughput",
    "ttft_p50",
    "ttft_p95",
    "ttft_p99",
    "tpot_p50",
    "tpot_p95",
    "tpot_p99",
    "e2e_p50",
    "e2e_p95",
    "e2e_p99",
    "mean_ttft",
    "mean_tpot",
    "goodput",
    "goodput_fraction",
    "hit_rate",
    "cached_token_fraction",
    "overlap_fraction",
    "num_shards",
)


def _jsonable(value: object) -> bool:
    return isinstance(value, (int, float, str, bool)) or value is None


def _clean_row(row: Mapping[str, object]) -> dict[str, object]:
    return {key: value for key, value in row.items() if _jsonable(value)}


def serving_summary(
    rows: Sequence[Mapping[str, object]],
) -> dict[str, dict[str, object]]:
    """Per-system headline metrics of one sweep.

    Load sweeps (rows that differ in ``load_factor``) summarise at the
    factor closest to 1.0 — the point provisioned capacity is judged at.
    Shard-scaling sweeps (rows that differ in ``num_shards``) summarise at
    the highest shard count — the configuration the sweep argues for.
    Prefix-cache sweeps (rows that differ in ``prefix_cache``) get one
    summary entry per cache setting, keyed ``"system (cache on|off)"``, so
    the artifact captures the cache win, not just one side of it; sweeps
    over overlapped prefill/decode streams (rows that differ in
    ``overlap``) are keyed ``"system (overlap on|off)"`` the same way.
    """
    by_system: dict[str, list[Mapping[str, object]]] = {}
    cache_settings = {str(row.get("prefix_cache", "off")) for row in rows}
    overlap_settings = {str(row.get("overlap", "off")) for row in rows}
    for row in rows:
        system = str(row.get("system", "unknown"))
        if len(cache_settings) > 1:
            system = f"{system} (cache {row.get('prefix_cache', 'off')})"
        if len(overlap_settings) > 1:
            system = f"{system} (overlap {row.get('overlap', 'off')})"
        by_system.setdefault(system, []).append(row)

    summary: dict[str, dict[str, object]] = {}
    for system, points in by_system.items():
        shard_counts = {int(row.get("num_shards", 1)) for row in points}
        if len(shard_counts) > 1:
            chosen = max(points, key=lambda row: int(row.get("num_shards", 1)))
        else:
            chosen = min(
                points,
                key=lambda row: abs(float(row.get("load_factor", 1.0)) - 1.0),
            )
        summary[system] = {
            metric: chosen[metric] for metric in SUMMARY_METRICS if metric in chosen
        }
    return summary


def _git_sha() -> str:
    """The working tree's commit SHA, or ``"unknown"`` outside a checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def write_bench_serving_json(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
    meta: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Write the serving benchmark artifact; returns the written document.

    Every artifact is stamped with its schema version, the emitting
    checkout's git SHA and a UTC run timestamp, so trend tooling can bucket
    results by code version without trusting file mtimes.
    """
    document: dict[str, object] = {
        "benchmark": "serving",
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": _git_sha(),
        "created_at": datetime.now(timezone.utc).isoformat(),
        "meta": _clean_row(meta or {}),
        "summary": serving_summary(rows),
        "rows": [_clean_row(row) for row in rows],
    }
    target = Path(path)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


#: Metrics copied into the simperf summary from its headline row (the
#: largest streaming point of the sweep).
SIMPERF_SUMMARY_METRICS: tuple[str, ...] = (
    "num_requests",
    "num_shards",
    "wall_time_s",
    "num_events",
    "events_per_sec",
    "requests_per_sec",
    "peak_mem_mb",
)


def simperf_summary(
    rows: Sequence[Mapping[str, object]],
) -> dict[str, object]:
    """Headline metrics of one simulator-speed sweep.

    The headline point is the largest streaming-mode run (most requests,
    then most shards) — the scale the sweep exists to defend.  Reference
    rows (``mode != "streaming"``) never headline; they exist to compute
    speedups against.  Prefix-cache rows form their own family: they never
    headline either, but the largest one contributes
    ``prefix_cache_events_per_sec`` so the cache-aware hot path gates
    separately from the plain-routing headline.
    """
    streaming = [
        row
        for row in rows
        if row.get("mode") == "streaming" and not row.get("prefix_cache")
    ]
    if not streaming:
        return {}

    def scale(row: Mapping[str, object]) -> tuple[int, int]:
        return (
            int(row.get("num_requests", 0)),
            int(row.get("num_shards", 0)),
        )

    chosen = max(streaming, key=scale)
    summary = {
        metric: chosen[metric] for metric in SIMPERF_SUMMARY_METRICS if metric in chosen
    }
    cached = [
        row
        for row in rows
        if row.get("mode") == "streaming"
        and row.get("prefix_cache")
        and row.get("peak_mem_mb") is None
    ]
    if cached:
        summary["prefix_cache_events_per_sec"] = max(cached, key=scale)[
            "events_per_sec"
        ]
    return summary


def write_bench_simperf_json(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
    meta: Mapping[str, object] | None = None,
    speedup_vs_time_sliced: float | None = None,
    speedup_vs_pre_pr: float | None = None,
    cache_aware_vs_least_loaded: float | None = None,
) -> dict[str, object]:
    """Write the simulator-speed benchmark artifact (``BENCH_simperf.json``).

    Same stamping discipline as :func:`write_bench_serving_json`;
    ``speedup_vs_time_sliced`` records the streaming hot path's measured
    events/sec multiple over the retained time-sliced reference loop on
    the same stream, ``speedup_vs_pre_pr`` its machine-normalised
    multiple over the pre-optimization baseline recorded at the seed
    commit, and ``cache_aware_vs_least_loaded`` the paired calibration
    ratio of cache-aware routing over least-loaded on the same stream.
    """
    summary = simperf_summary(rows)
    if speedup_vs_time_sliced is not None:
        summary["speedup_vs_time_sliced"] = speedup_vs_time_sliced
    if speedup_vs_pre_pr is not None:
        summary["speedup_vs_pre_pr"] = speedup_vs_pre_pr
    if cache_aware_vs_least_loaded is not None:
        summary["cache_aware_vs_least_loaded"] = cache_aware_vs_least_loaded
    document: dict[str, object] = {
        "benchmark": "simperf",
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": _git_sha(),
        "created_at": datetime.now(timezone.utc).isoformat(),
        "meta": _clean_row(meta or {}),
        "summary": summary,
        "rows": [_clean_row(row) for row in rows],
    }
    target = Path(path)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


#: Metrics copied per scenario into the chaos summary.
CHAOS_SUMMARY_METRICS: tuple[str, ...] = (
    "goodput",
    "goodput_fraction",
    "completed",
    "rejected",
    "retries",
    "crashes",
    "recoveries",
    "unavailability_s",
    "drop_crash",
    "drop_timeout",
    "drop_shed",
)


def chaos_summary(
    rows: Sequence[Mapping[str, object]],
) -> dict[str, dict[str, object]]:
    """Per-scenario headline metrics of one chaos sweep."""
    summary: dict[str, dict[str, object]] = {}
    for row in rows:
        scenario = str(row.get("scenario", "unknown"))
        summary[scenario] = {
            metric: row[metric]
            for metric in CHAOS_SUMMARY_METRICS
            if metric in row
        }
    return summary


def write_bench_chaos_json(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
    gates: Mapping[str, object] | None = None,
    meta: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Write the chaos benchmark artifact (``BENCH_chaos.json``).

    Same stamping discipline as :func:`write_bench_serving_json`; the
    ``gates`` block records the sweep's acceptance verdicts (empty-schedule
    determinism, retry-vs-no-retry goodput win, post-recovery goodput
    ratio) so CI trend tooling gates on the artifact alone.
    """
    document: dict[str, object] = {
        "benchmark": "chaos",
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": _git_sha(),
        "created_at": datetime.now(timezone.utc).isoformat(),
        "meta": _clean_row(meta or {}),
        "summary": chaos_summary(rows),
        "gates": _clean_row(gates or {}),
        "rows": [_clean_row(row) for row in rows],
    }
    target = Path(path)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document
