"""Prefix-cache sweep: hit rate vs. throughput and TTFT on multi-turn chat.

One multi-turn chat arrival stream — shared system prompt, per-session
conversations whose prompts grow turn over turn — is served twice at every
load point: once with the KV cache in its per-sequence regime
(``prefix_cache=False``) and once with the shared, ref-counted block store
(``prefix_cache=True``).  Request bodies and timestamps are pinned by the
seed, so each pair of rows differs *only* in whether cached prefixes are
reused.

Every row reports the prefix-cache hit rate, the fraction of prompt tokens
served from cache, mean/percentile TTFT (split by hit/miss), token
throughput and SLO-goodput — the hit-rate-versus-latency curves that answer
whether the cache pays for its bookkeeping.  Under any meaningful hit rate,
cache-on must dominate cache-off on the same stream (asserted in tier-1
tests and checked by the quick-bench CI job).

Run directly for the CLI harness::

    python -m repro.experiments.cache_sweep --num-requests 32 --json out.json

or via ``repro-serve --workload chat --prefix-cache on``.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.hardware import get_hardware
from repro.models import get_model
from repro.serving.metrics import SLO
from repro.serving.server import ServingSystem, default_slo
from repro.utils.errors import ConfigurationError
from repro.workloads import chat


def run_cache_sweep(
    load_factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    system_name: str = "moe-lightning",
    model_name: str = "mixtral-8x7b",
    hardware_name: str = "1xT4",
    generation_len: int = 16,
    num_requests: int = 48,
    turns_per_session: int = 4,
    system_prompt_len: int = 64,
    user_turn_len: int = 32,
    scheduling: str = "fcfs",
    arrival: str = "poisson",
    seed: int = 0,
    slo: SLO | None = None,
    use_simulator: bool = False,
    chunk_prefill_tokens: int | None = 128,
    store_samples: bool = True,
) -> list[dict[str, object]]:
    """Serve one chat stream with the prefix cache off and on at each load.

    Returns one row per (load factor, cache setting), cache-off first, so
    adjacent row pairs are directly comparable.

    Chunked prefill is on by default: offloading backends are weight-stream
    bound during prefill, so skipping cached tokens pays off as *fewer
    chunk steps* (each a full weight pass) rather than cheaper ones — the
    cache's TTFT/throughput win is realised through the chunk schedule.

    ``store_samples=False`` runs every point with streaming P² report
    aggregation (flat memory in the stream length); the library default
    stays exact, the CLI harness defaults to streaming.
    """
    from repro.experiments.serving_sweep import (
        ARRIVAL_PROCESSES,
        SERVING_SYSTEMS,
        offline_capacity,
    )

    if not load_factors:
        raise ConfigurationError("load_factors must not be empty")
    if arrival not in ARRIVAL_PROCESSES:
        known = ", ".join(sorted(ARRIVAL_PROCESSES))
        raise ConfigurationError(f"unknown arrival process {arrival!r}; known: {known}")
    if system_name not in SERVING_SYSTEMS:
        known = ", ".join(sorted(SERVING_SYSTEMS))
        raise ConfigurationError(f"unknown system {system_name!r}; known: {known}")

    model = get_model(model_name)
    hardware = get_hardware(hardware_name)
    workload = chat(
        generation_len=generation_len,
        num_requests=num_requests,
        turns_per_session=turns_per_session,
        system_prompt_len=system_prompt_len,
        user_turn_len=user_turn_len,
    )
    backend = SERVING_SYSTEMS[system_name](model, hardware)
    policy = backend.select_policy(workload)
    shared_slo = slo or default_slo(backend, workload, policy)
    rate_reference = offline_capacity(backend, workload, policy)

    rows: list[dict[str, object]] = []
    for load_factor in load_factors:
        rate = load_factor * rate_reference
        process = ARRIVAL_PROCESSES[arrival](rate)
        for prefix_cache in (False, True):
            serving = ServingSystem(
                backend,
                workload,
                policy=policy,
                scheduling=scheduling,
                slo=shared_slo,
                use_simulator=use_simulator,
                chunk_prefill_tokens=chunk_prefill_tokens,
                prefix_cache=prefix_cache,
                store_samples=store_samples,
            )
            result = serving.run(process, count=num_requests, seed=seed)
            row: dict[str, object] = {
                "prefix_cache": "on" if prefix_cache else "off",
                "load_factor": load_factor,
                "rate_rps": rate,
                "arrival": arrival,
            }
            row.update(result.as_row())
            row["mean_ttft"] = result.report.mean_ttft
            row["mean_ttft_hit"] = result.report.mean_ttft_hit
            row["mean_ttft_miss"] = result.report.mean_ttft_miss
            row["cache_hits"] = result.admission_stats.get("cache_hits", 0)
            rows.append(row)
    return rows


#: Columns for the printed hit-rate-vs-latency table.
CACHE_SWEEP_COLUMNS: tuple[str, ...] = (
    "system",
    "prefix_cache",
    "load_factor",
    "rate_rps",
    "completed",
    "rejected",
    "hit_rate",
    "cached_token_fraction",
    "token_throughput",
    "mean_ttft",
    "ttft_p99",
    "goodput",
    "goodput_fraction",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cache-sweep",
        description=(
            "Prefix-cache on/off sweep over a multi-turn chat stream: "
            "hit rate vs. throughput and TTFT."
        ),
    )
    parser.add_argument("--system", default="moe-lightning")
    parser.add_argument("--model", default="mixtral-8x7b")
    parser.add_argument("--hardware", default="1xT4")
    parser.add_argument(
        "--load-factors", nargs="+", type=float, default=(0.5, 1.0, 2.0, 4.0)
    )
    parser.add_argument("--generation-len", type=int, default=16)
    parser.add_argument("--num-requests", type=int, default=48)
    parser.add_argument("--turns", type=int, default=4)
    parser.add_argument("--system-prompt-len", type=int, default=64)
    parser.add_argument("--user-turn-len", type=int, default=32)
    parser.add_argument("--arrival", default="poisson")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--chunk-prefill",
        type=int,
        default=128,
        metavar="TOKENS",
        help="chunked-prefill token budget per engine step (0 disables)",
    )
    parser.add_argument(
        "--exact-report",
        action="store_true",
        help=(
            "store per-request samples and compute exact percentiles "
            "instead of the default streaming P² report"
        ),
    )
    parser.add_argument("--json", default=None, metavar="PATH")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Console harness (also the quick-bench CI entry point)."""
    import sys

    from repro.experiments.bench_output import write_bench_serving_json
    from repro.experiments.report import render_rows
    from repro.utils.errors import ReproError

    args = _build_parser().parse_args(argv)
    try:
        rows = run_cache_sweep(
            load_factors=tuple(args.load_factors),
            system_name=args.system,
            model_name=args.model,
            hardware_name=args.hardware,
            generation_len=args.generation_len,
            num_requests=args.num_requests,
            turns_per_session=args.turns,
            system_prompt_len=args.system_prompt_len,
            user_turn_len=args.user_turn_len,
            arrival=args.arrival,
            seed=args.seed,
            chunk_prefill_tokens=(
                args.chunk_prefill if args.chunk_prefill > 0 else None
            ),
            store_samples=args.exact_report,
        )
    except ReproError as exc:
        print(f"repro-cache-sweep: error: {exc}", file=sys.stderr)
        return 2
    print(
        render_rows(
            rows,
            columns=list(CACHE_SWEEP_COLUMNS),
            title=(
                f"Prefix-cache sweep: chat @ {args.model} / {args.hardware} "
                f"({args.arrival} arrivals, seed {args.seed})"
            ),
        )
    )
    if args.json:
        write_bench_serving_json(
            args.json,
            rows,
            meta={
                "source": "repro.experiments.cache_sweep",
                "model": args.model,
                "hardware": args.hardware,
                "workload": "chat",
                "generation_len": args.generation_len,
                "num_requests": args.num_requests,
                "turns_per_session": args.turns,
                "shards": 1,
                "chunk_prefill": args.chunk_prefill,
                "seed": args.seed,
            },
        )
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
