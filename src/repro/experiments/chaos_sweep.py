"""Chaos sweep: serving goodput under injected crash/recovery patterns.

One seeded chat arrival stream is served by the same sharded configuration
under a grid of fault scenarios — fault-free, an *empty* fault schedule
(the determinism control), a transient single-shard crash with and without
request retries, a correlated pool crash, and a rolling restart — so every
row differs only in what breaks and how the stack responds.

Three properties are asserted (tier-1 tests and the quick-bench CI job
gate all of them through ``check_chaos_gates``):

* **determinism** — attaching an empty :class:`~repro.serving.faults.
  FaultSchedule` reproduces the no-injector run bit-for-bit: every
  request's arrival/first-token/finish instants, terminal state and shard
  placement are identical;
* **retries pay** — under a transient single-shard crash, capped
  exponential-backoff retries strictly beat the no-retry run on SLO
  goodput (each retry re-enters the arrival stream with the same
  underlying request, so session identity survives and the prefix cache
  re-warms);
* **recovery completes** — goodput over the post-recovery tail of the
  stream returns to within tolerance (default 10%) of the fault-free run
  on the very same arrivals.

Run directly for the CLI harness::

    python -m repro.experiments.chaos_sweep --num-requests 120 --json out.json

or via the ``repro-chaos`` entry point.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.hardware import get_hardware
from repro.models import get_model
from repro.serving.faults import FaultSchedule, ResiliencePolicy
from repro.serving.metrics import SLO
from repro.serving.queue import RequestState, ServingRequest
from repro.serving.server import default_slo
from repro.serving.sharded import ShardedServingResult, ShardedServingSystem
from repro.utils.errors import ConfigurationError
from repro.workloads import chat

#: Fraction of the arrival horizon at which the injected crash lands,
#: recovery begins, and the model reload completes.  The crash hits early
#: enough that a meaningful post-recovery tail remains to measure.
CRASH_AT = 0.25
RECOVER_AT = 0.40
LOAD_TIME = 0.05

#: Post-recovery measurement starts this far past the reload-complete
#: instant (as a fraction of the horizon): the crash-era backlog needs a
#: settle window before the tail is representative of steady state.
SETTLE = 0.10

#: Default post-recovery goodput tolerance versus fault-free (gate (c)).
RECOVERY_TOLERANCE = 0.10


def timeline_signature(
    result: ShardedServingResult,
) -> list[tuple[object, ...]]:
    """Per-request timeline fingerprint for bit-for-bit comparison.

    Positional (stream order), not keyed by ``request_id`` — ids come from
    a process-global counter, so two runs of the same stream in one
    process allocate different ids while producing identical timelines.
    """
    return [
        (
            sr.attempt,
            sr.arrival_time,
            sr.state.value,
            sr.shard_id,
            sr.outcome_code,
            sr.first_token_time,
            sr.finish_time,
            sr.tokens_decoded if sr.state is RequestState.FINISHED else 0,
        )
        for sr in result.requests
    ]


def windowed_slo_met(
    requests: Sequence[ServingRequest], slo: SLO, t_start: float
) -> tuple[int, int]:
    """``(slo_met, arrived)`` over first-attempt arrivals at/after ``t_start``.

    Only original submissions (``attempt == 0``) are windowed so the
    baseline and faulty runs count the identical arrival set; a retry's
    completion still shows up — it finishes the same underlying request.
    """
    met = 0
    arrived = 0
    for sr in requests:
        if sr.attempt or sr.arrival_time < t_start:
            continue
        arrived += 1
        if sr.state is RequestState.FINISHED and slo.is_met(sr):
            met += 1
    return met, arrived


def run_chaos_sweep(
    num_shards: int = 4,
    system_name: str = "moe-lightning",
    model_name: str = "mixtral-8x7b",
    hardware_name: str = "1xT4",
    router: str = "least-loaded",
    load_factor: float = 0.7,
    generation_len: int = 8,
    num_requests: int = 120,
    turns_per_session: int = 3,
    system_prompt_len: int = 64,
    user_turn_len: int = 32,
    seed: int = 0,
    max_retries: int = 2,
    retry_backoff: float = 0.25,
    recovery_tolerance: float = RECOVERY_TOLERANCE,
    chunk_prefill_tokens: int | None = None,
) -> dict[str, object]:
    """Serve one seeded chat stream under every chaos scenario.

    Returns ``{"rows": [...], "gates": {...}, "horizon": ...}``: one row
    per scenario plus the acceptance gates computed across them.  Every
    scenario replays the identical arrival stream (same seed), so rows
    differ only in the injected faults and the resilience policy.

    Prefill is whole-prompt (``chunk_prefill_tokens=None``) by default: a
    recovered shard rejoins empty and least-loaded routing sends it every
    subsequent arrival until loads equalise, so it must drain that herd as
    *batched* prefill passes — a small chunk budget serializes the herd
    into one-prompt steps and the tail blows through the TTFT SLO for a
    reason that has nothing to do with the fault model under test.
    """
    from repro.experiments.serving_sweep import (
        ARRIVAL_PROCESSES,
        SERVING_SYSTEMS,
        offline_capacity,
    )

    if num_shards < 2:
        raise ConfigurationError(
            "the chaos sweep needs >= 2 shards: a 1-shard cluster has no "
            "surviving capacity to degrade onto"
        )
    if system_name not in SERVING_SYSTEMS:
        known = ", ".join(sorted(SERVING_SYSTEMS))
        raise ConfigurationError(f"unknown system {system_name!r}; known: {known}")

    model = get_model(model_name)
    hardware = get_hardware(hardware_name)
    workload = chat(
        generation_len=generation_len,
        num_requests=num_requests,
        turns_per_session=turns_per_session,
        system_prompt_len=system_prompt_len,
        user_turn_len=user_turn_len,
    )
    backend = SERVING_SYSTEMS[system_name](model, hardware)
    policy = backend.select_policy(workload)
    slo = default_slo(backend, workload, policy)
    rate = num_shards * load_factor * offline_capacity(backend, workload, policy)
    process = ARRIVAL_PROCESSES["poisson"](rate)

    def serve(
        faults: FaultSchedule | None = None,
        resilience: ResiliencePolicy | None = None,
    ) -> ShardedServingResult:
        system = ShardedServingSystem(
            backend,
            workload,
            num_shards=num_shards,
            router=router,
            policy=policy,
            slo=slo,
            prefix_cache=True,
            chunk_prefill_tokens=chunk_prefill_tokens,
            faults=faults,
            resilience=resilience,
        )
        return system.run(process, count=num_requests, seed=seed)

    baseline = serve()
    horizon = max(sr.arrival_time for sr in baseline.requests)
    crash_shard = num_shards - 1
    transient = FaultSchedule.transient_crash(
        crash_shard,
        at=CRASH_AT * horizon,
        recover_at=RECOVER_AT * horizon,
        load_time=LOAD_TIME * horizon,
    )
    retry_policy = ResiliencePolicy(
        max_retries=max_retries, retry_backoff=retry_backoff
    )
    correlated = FaultSchedule.correlated(
        list(range(num_shards // 2)),
        at=CRASH_AT * horizon,
        recover_at=RECOVER_AT * horizon,
        load_time=LOAD_TIME * horizon,
    )
    rolling = FaultSchedule.rolling_restart(
        list(range(num_shards)),
        start=CRASH_AT * horizon,
        interval=0.10 * horizon,
        downtime=0.05 * horizon,
        load_time=0.02 * horizon,
    )

    scenarios: list[tuple[str, ShardedServingResult]] = [
        ("fault-free", baseline),
        ("empty-schedule", serve(faults=FaultSchedule.empty())),
        ("transient-crash", serve(faults=transient)),
        ("transient-crash+retry", serve(faults=transient, resilience=retry_policy)),
        ("correlated+retry", serve(faults=correlated, resilience=retry_policy)),
        ("rolling-restart+retry", serve(faults=rolling, resilience=retry_policy)),
    ]
    by_name = dict(scenarios)

    rows: list[dict[str, object]] = []
    for name, result in scenarios:
        row: dict[str, object] = {
            "scenario": name,
            "load_factor": load_factor,
            "rate_rps": rate,
            "seed": seed,
        }
        row.update(result.as_row())
        row["retries"] = result.report.num_retries
        rows.append(row)

    # ------------------------------------------------------------------
    # Acceptance gates
    # ------------------------------------------------------------------
    identical = timeline_signature(baseline) == timeline_signature(
        by_name["empty-schedule"]
    )
    goodput_no_retry = by_name["transient-crash"].report.goodput
    goodput_retry = by_name["transient-crash+retry"].report.goodput
    tail_start = (RECOVER_AT + LOAD_TIME + SETTLE) * horizon
    met_base, arrived_base = windowed_slo_met(
        baseline.requests, slo, tail_start
    )
    met_faulty, arrived_faulty = windowed_slo_met(
        by_name["transient-crash+retry"].requests, slo, tail_start
    )
    recovery_ratio = met_faulty / met_base if met_base else float("nan")
    gates: dict[str, object] = {
        "empty_schedule_identical": identical,
        "retry_goodput": goodput_retry,
        "no_retry_goodput": goodput_no_retry,
        "retry_beats_no_retry": goodput_retry > goodput_no_retry,
        "post_recovery_tail_start": tail_start,
        "post_recovery_arrivals": arrived_base,
        "post_recovery_slo_met_baseline": met_base,
        "post_recovery_slo_met_faulty": met_faulty,
        "post_recovery_goodput_ratio": recovery_ratio,
        "recovery_tolerance": recovery_tolerance,
        "post_recovery_within_tolerance": (
            arrived_base == arrived_faulty
            and met_base > 0
            and recovery_ratio >= 1.0 - recovery_tolerance
        ),
    }
    return {"rows": rows, "gates": gates, "horizon": horizon}


def gates_pass(gates: dict[str, object]) -> bool:
    """Whether every boolean acceptance gate of one sweep holds."""
    return bool(
        gates["empty_schedule_identical"]
        and gates["retry_beats_no_retry"]
        and gates["post_recovery_within_tolerance"]
    )


#: Columns for the printed chaos table.
CHAOS_SWEEP_COLUMNS: tuple[str, ...] = (
    "scenario",
    "offered",
    "completed",
    "rejected",
    "retries",
    "crashes",
    "recoveries",
    "unavailability_s",
    "drop_crash",
    "drop_timeout",
    "drop_shed",
    "goodput",
    "goodput_fraction",
    "mean_ttft",
    "token_throughput",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description=(
            "Chaos sweep: goodput under injected shard crashes, correlated "
            "failures and rolling restarts, with and without retries."
        ),
    )
    parser.add_argument("--system", default="moe-lightning")
    parser.add_argument("--model", default="mixtral-8x7b")
    parser.add_argument("--hardware", default="1xT4")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--router", default="least-loaded")
    parser.add_argument("--load-factor", type=float, default=0.7)
    parser.add_argument("--generation-len", type=int, default=8)
    parser.add_argument("--num-requests", type=int, default=120)
    parser.add_argument("--turns", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-retries", type=int, default=2)
    parser.add_argument("--retry-backoff", type=float, default=0.25)
    parser.add_argument(
        "--recovery-tolerance",
        type=float,
        default=RECOVERY_TOLERANCE,
        help="allowed post-recovery goodput shortfall vs fault-free",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 unless every acceptance gate holds (CI mode)",
    )
    parser.add_argument("--json", default=None, metavar="PATH")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Console harness (also the quick-bench CI entry point)."""
    import sys

    from repro.experiments.bench_output import write_bench_chaos_json
    from repro.experiments.report import render_rows
    from repro.utils.errors import ReproError

    args = _build_parser().parse_args(argv)
    try:
        sweep = run_chaos_sweep(
            num_shards=args.shards,
            system_name=args.system,
            model_name=args.model,
            hardware_name=args.hardware,
            router=args.router,
            load_factor=args.load_factor,
            generation_len=args.generation_len,
            num_requests=args.num_requests,
            turns_per_session=args.turns,
            seed=args.seed,
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            recovery_tolerance=args.recovery_tolerance,
        )
    except ReproError as exc:
        print(f"repro-chaos: error: {exc}", file=sys.stderr)
        return 2
    rows = sweep["rows"]
    gates = sweep["gates"]
    print(
        render_rows(
            rows,
            columns=list(CHAOS_SWEEP_COLUMNS),
            title=(
                f"Chaos sweep: {args.shards}-shard chat @ {args.model} / "
                f"{args.hardware} (seed {args.seed})"
            ),
        )
    )
    print(
        f"gates: empty-schedule identical: {gates['empty_schedule_identical']}"
        f" | retry goodput {gates['retry_goodput']:.4f} vs no-retry "
        f"{gates['no_retry_goodput']:.4f}"
        f" | post-recovery ratio {gates['post_recovery_goodput_ratio']:.3f}"
        f" (tolerance {gates['recovery_tolerance']:.0%})"
    )
    if args.json:
        write_bench_chaos_json(args.json, rows, gates=gates, meta={
            "source": "repro.experiments.chaos_sweep",
            "model": args.model,
            "hardware": args.hardware,
            "workload": "chat",
            "shards": args.shards,
            "router": args.router,
            "load_factor": args.load_factor,
            "num_requests": args.num_requests,
            "max_retries": args.max_retries,
            "seed": args.seed,
        })
        print(f"wrote {args.json}")
    if args.gate and not gates_pass(gates):
        print("repro-chaos: acceptance gates FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
