"""Prefill/decode disaggregation sweep: disagg vs unified, fast vs slow.

DistServe-style disaggregation splits a serving cluster into a prefill
pool and a decode pool: prompts are computed on prefill shards, the KV
cache migrates over the cluster link (a priced transfer event), and every
decode iteration runs on shards that never execute a prompt.  The win
shows up under *mixed* traffic — chat requests interleaved with
long-prompt summarization jobs — where a unified engine's monster
prefills ride the same iterations as everyone else's decodes and blow up
TPOT tails.  The cost is paid in link transfers and in splitting the
device count across the two pools.

This experiment makes that trade measurable.  One merged arrival stream
(short-prompt chat + long-prompt summarization, both Poisson) is served
by matched configurations at **equal device count**:

* ``unified`` — every shard serves both phases (least-loaded routing);
* ``disagg`` — the same shards split into prefill/decode pools with
  phase-aware routing and priced KV migration;
* ``disagg-het`` — the prefill pool upgraded to a faster device type
  (prefill is compute-bound, so the fast part goes where the FLOPs are),
  versus the same-count all-slow pool above.

All configurations see the identical request bodies and timestamps (same
seeds) and are scored against one shared SLO, so goodput is directly
comparable across rows.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.cluster.spec import ClusterSpec, DeviceSpec
from repro.hardware import get_hardware
from repro.models import get_model
from repro.serving.arrivals import PoissonProcess, TimedRequest
from repro.serving.metrics import SLO
from repro.serving.server import default_slo
from repro.serving.sharded import ShardedServingSystem
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int
from repro.workloads import get_workload
from repro.workloads.spec import WorkloadSpec


def mixed_workload(chat: WorkloadSpec, long: WorkloadSpec) -> WorkloadSpec:
    """One spec covering a merged chat + long-prompt stream.

    The serving system sizes admission budgets, padding and the SLO from
    its workload spec, so the merged stream needs a spec whose maximum
    covers both components; the average is request-count weighted.
    """
    total = chat.num_requests + long.num_requests
    avg = (
        chat.avg_prompt_len * chat.num_requests
        + long.avg_prompt_len * long.num_requests
    ) / total
    return WorkloadSpec(
        name="mixed",
        avg_prompt_len=max(1, round(avg)),
        max_prompt_len=max(chat.max_prompt_len, long.max_prompt_len),
        generation_len=max(chat.generation_len, long.generation_len),
        num_requests=total,
    )


def mixed_traffic(
    chat: WorkloadSpec,
    long: WorkloadSpec,
    chat_rate: float,
    long_rate: float,
    seed: int = 0,
) -> list[TimedRequest]:
    """Merge two Poisson streams into one arrival list, time-ordered.

    Each component keeps its own request bodies and timeline (derived
    seeds, so the merged stream is deterministic); request ids are
    globally unique, so the merged list is a valid single stream.
    """
    chat_stream = PoissonProcess(chat_rate).generate(
        chat, count=chat.num_requests, seed=seed
    )
    long_stream = PoissonProcess(long_rate).generate(
        long, count=long.num_requests, seed=seed + 1
    )
    return sorted(
        chat_stream + long_stream,
        key=lambda timed: (timed.arrival_time, timed.request.request_id),
    )


def _heterogeneous_cluster(
    fast_node, slow_node, num_shards: int, n_prefill: int
) -> ClusterSpec:
    """Fast prefill pool + slow decode pool, one device per shard."""
    devices = [
        DeviceSpec(device_id=i, node=fast_node, role="prefill")
        for i in range(n_prefill)
    ] + [
        DeviceSpec(device_id=i, node=slow_node, role="decode")
        for i in range(n_prefill, num_shards)
    ]
    return ClusterSpec.of_devices(
        devices, name=f"{n_prefill}x{fast_node.gpu.name}+"
        f"{num_shards - n_prefill}x{slow_node.gpu.name}"
    )


def run_disagg_sweep(
    system_name: str = "moe-lightning",
    model_name: str = "mixtral-8x7b",
    hardware_name: str = "1xT4",
    fast_hardware_name: str = "1xL4",
    num_shards: int = 4,
    prefill_shards: int | None = None,
    load_factor: float = 3.0,
    chat_requests: int = 48,
    long_requests: int = 8,
    chat_generation_len: int = 64,
    long_generation_len: int = 32,
    seed: int = 0,
    slo: SLO | None = None,
    ttft_factor: float = 5.0,
    tpot_factor: float = 1.1,
    prefix_cache: bool = False,
    session_ttl: float | None = None,
    use_simulator: bool = False,
    include_heterogeneous: bool = True,
) -> list[dict[str, object]]:
    """Serve one mixed stream on matched clusters; one row per config.

    ``load_factor`` scales the merged arrival rate as a multiple of the
    whole cluster's offline capacity on the mixed workload; the rate is
    split across the chat and long components by request count.  Every
    configuration has exactly ``num_shards`` devices and shares the SLO
    anchored to the unified baseline, so goodput rows compare the
    architectures, not the load.

    The default SLO is deliberately *TPOT-tight* (``tpot_factor=1.1``
    against the unloaded mid-generation decode step): disaggregation
    exists to hold per-token latency at the decode pool's native step
    time, which a unified engine cannot do while whole long-prompt
    prefills ride the same weight-streaming iterations as its decodes.
    A loose TPOT target (the unified default of 2.5x) absorbs that
    interference and reduces the comparison to raw makespan.
    """
    from repro.experiments.serving_sweep import (
        SERVING_SYSTEMS,
        offline_capacity,
    )

    if system_name not in SERVING_SYSTEMS:
        known = ", ".join(sorted(SERVING_SYSTEMS))
        raise ConfigurationError(
            f"unknown system {system_name!r}; known: {known}"
        )
    require_positive_int("num_shards", num_shards)
    if num_shards < 2:
        raise ConfigurationError(
            "the disaggregation sweep needs at least 2 shards"
        )

    model = get_model(model_name)
    slow_node = get_hardware(hardware_name)
    chat = get_workload(
        "mtbench",
        generation_len=chat_generation_len,
        num_requests=chat_requests,
    )
    long = get_workload(
        "summarization",
        generation_len=long_generation_len,
        num_requests=long_requests,
    )
    workload = mixed_workload(chat, long)

    backend = SERVING_SYSTEMS[system_name](model, slow_node)
    policy = backend.select_policy(workload)
    shared_slo = slo or default_slo(
        backend,
        workload,
        policy,
        ttft_factor=ttft_factor,
        tpot_factor=tpot_factor,
    )

    per_shard = offline_capacity(backend, workload, policy)
    rate = load_factor * num_shards * per_shard
    total = chat.num_requests + long.num_requests
    chat_rate = rate * chat.num_requests / total
    long_rate = rate * long.num_requests / total
    arrivals = mixed_traffic(chat, long, chat_rate, long_rate, seed=seed)

    n_prefill = (
        prefill_shards if prefill_shards is not None else max(1, num_shards // 2)
    )

    common = dict(
        workload=workload,
        policy=policy,
        slo=shared_slo,
        use_simulator=use_simulator,
        prefix_cache=prefix_cache,
        session_ttl=session_ttl,
    )
    configs: list[tuple[str, ShardedServingSystem]] = [
        (
            "unified",
            ShardedServingSystem(
                backend,
                num_shards=num_shards,
                router="least-loaded",
                **common,
            ),
        ),
        (
            "disagg",
            ShardedServingSystem(
                backend,
                num_shards=num_shards,
                disaggregated=True,
                prefill_shards=n_prefill,
                **common,
            ),
        ),
    ]
    if include_heterogeneous:
        fast_node = get_hardware(fast_hardware_name)
        cluster = _heterogeneous_cluster(
            fast_node, slow_node, num_shards, n_prefill
        )
        configs.append(
            (
                "disagg-het",
                ShardedServingSystem(
                    backend,
                    cluster=cluster,
                    **common,
                ),
            )
        )

    rows: list[dict[str, object]] = []
    for label, server in configs:
        result = server.run(arrivals, seed=seed)
        cluster_name = (
            server.cluster.name
            if server.cluster is not None
            else f"{num_shards}x[{slow_node.name}]"
        )
        row: dict[str, object] = {
            "config": label,
            # Key the BENCH_*.json summary by serving architecture, not by
            # backend: all three configs share the backend system.
            "system": f"{system_name} ({label})",
            "cluster": cluster_name,
            "router": result.router,
            "num_shards": result.num_shards,
            "prefill_shards": sum(
                1 for s in result.shard_stats if s.role == "prefill"
            ),
            "load_factor": load_factor,
            "rate_rps": rate,
        }
        row.update(result.report.as_row())
        row["migrated"] = result.admission_stats.get("migrated_in", 0)
        row["migration_rejected"] = result.admission_stats.get(
            "migration_rejected", 0
        )
        if session_ttl is not None:
            row["ttl_evictions"] = result.admission_stats.get(
                "ttl_evictions", 0
            )
        row["slo_ttft"] = shared_slo.ttft
        row["slo_tpot"] = shared_slo.tpot
        rows.append(row)
    return rows


#: Columns for the printed disagg-vs-unified comparison table.
DISAGG_COLUMNS: tuple[str, ...] = (
    "config",
    "cluster",
    "router",
    "prefill_shards",
    "completed",
    "rejected",
    "token_throughput",
    "ttft_p99",
    "tpot_p99",
    "e2e_p99",
    "goodput",
    "goodput_fraction",
    "migrated",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-disagg",
        description=(
            "Disaggregated (prefill/decode pools, priced KV migration) "
            "versus unified serving at equal device count under mixed "
            "chat + long-prompt traffic."
        ),
    )
    parser.add_argument("--system", default="moe-lightning")
    parser.add_argument("--model", default="mixtral-8x7b")
    parser.add_argument("--hardware", default="1xT4")
    parser.add_argument(
        "--fast-hardware",
        default="1xL4",
        help="device type for the heterogeneous prefill pool",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--prefill-shards",
        type=int,
        default=None,
        help="prefill-pool size (default: half the shards)",
    )
    parser.add_argument("--load-factor", type=float, default=3.0)
    parser.add_argument("--chat-requests", type=int, default=48)
    parser.add_argument("--long-requests", type=int, default=8)
    parser.add_argument(
        "--chat-generation-len",
        type=int,
        default=64,
        help="decode length of the chat component",
    )
    parser.add_argument(
        "--long-generation-len",
        type=int,
        default=32,
        help="decode length of the long-prompt component",
    )
    parser.add_argument(
        "--ttft-factor",
        type=float,
        default=5.0,
        help="TTFT SLO as a multiple of the unloaded prefill latency",
    )
    parser.add_argument(
        "--tpot-factor",
        type=float,
        default=1.1,
        help=(
            "TPOT SLO as a multiple of the unloaded mid-generation decode "
            "step (tight by design: see run_disagg_sweep)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--prefix-cache", choices=("on", "off"), default="off"
    )
    parser.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "evict prefix-cache sessions idle longer than this "
            "(requires --prefix-cache on)"
        ),
    )
    parser.add_argument(
        "--no-heterogeneous",
        action="store_true",
        help="skip the fast-prefill heterogeneous configuration",
    )
    parser.add_argument(
        "--simulate",
        action="store_true",
        help="sample step times from the discrete-event schedule simulator",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the comparison as machine-readable JSON",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point (installed as ``repro-disagg``)."""
    import sys

    from repro.experiments.bench_output import write_bench_serving_json
    from repro.experiments.report import render_rows
    from repro.utils.errors import ReproError

    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.session_ttl is not None and args.prefix_cache != "on":
            raise ConfigurationError(
                "--session-ttl requires --prefix-cache on"
            )
        rows = run_disagg_sweep(
            system_name=args.system,
            model_name=args.model,
            hardware_name=args.hardware,
            fast_hardware_name=args.fast_hardware,
            num_shards=args.shards,
            prefill_shards=args.prefill_shards,
            load_factor=args.load_factor,
            chat_requests=args.chat_requests,
            long_requests=args.long_requests,
            chat_generation_len=args.chat_generation_len,
            long_generation_len=args.long_generation_len,
            ttft_factor=args.ttft_factor,
            tpot_factor=args.tpot_factor,
            seed=args.seed,
            prefix_cache=args.prefix_cache == "on",
            session_ttl=args.session_ttl,
            use_simulator=args.simulate,
            include_heterogeneous=not args.no_heterogeneous,
        )
    except ReproError as exc:
        print(f"repro-disagg: error: {exc}", file=sys.stderr)
        return 2
    columns = list(DISAGG_COLUMNS)
    if args.session_ttl is not None:
        columns.append("ttl_evictions")
    title = (
        f"Disaggregation sweep: mixed traffic @ {args.model} / "
        f"{args.hardware} x{args.shards} "
        f"({args.load_factor:g}x cluster load, seed {args.seed})"
    )
    print(render_rows(rows, columns=columns, title=title))
    if args.json:
        meta = {
            "system": args.system,
            "model": args.model,
            "hardware": args.hardware,
            "fast_hardware": args.fast_hardware,
            "shards": args.shards,
            "load_factor": args.load_factor,
            "seed": args.seed,
        }
        write_bench_serving_json(args.json, rows, meta=meta)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
