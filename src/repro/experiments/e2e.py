"""End-to-end throughput experiments: Fig. 7 (MTBench) and Tab. 4 (HELM).

Each run produces one row per (setting, workload, generation length, system)
with the generation throughput and the selected policy, mirroring the bars
of Fig. 7 and the cells of Tab. 4.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.performance_model import EfficiencyModel
from repro.experiments.settings import (
    MTBENCH_GENERATION_LENGTHS,
    EvaluationSetting,
    get_setting,
)
from repro.systems import DeepSpeedZeroSystem, FlexGenSystem, MoELightningSystem
from repro.systems.base import OffloadingSystem
from repro.utils.errors import ReproError
from repro.workloads.spec import WorkloadSpec


def default_system_set(
    setting: EvaluationSetting,
    efficiency: EfficiencyModel | None = None,
    max_sim_layers: int | None = 6,
    include_unpadded: bool = True,
) -> list[OffloadingSystem]:
    """The systems compared in Fig. 7 for one evaluation setting."""
    model = setting.model
    hardware = setting.hardware
    kwargs = {"efficiency": efficiency, "max_sim_layers": max_sim_layers}
    systems: list[OffloadingSystem] = [
        FlexGenSystem(model, hardware, **kwargs),
        FlexGenSystem(model, hardware, cpu_attention=True, **kwargs),
        DeepSpeedZeroSystem(model, hardware, **kwargs),
        MoELightningSystem(model, hardware, padded=True, **kwargs),
    ]
    if include_unpadded:
        systems.append(MoELightningSystem(model, hardware, padded=False, **kwargs))
    return systems


def _run_systems(
    systems: Iterable[OffloadingSystem],
    workload: WorkloadSpec,
    setting: EvaluationSetting,
    generation_len: int,
    simulate: bool,
) -> list[dict[str, object]]:
    rows = []
    for system in systems:
        try:
            result = system.run(workload, simulate=simulate)
        except ReproError as error:
            rows.append(
                {
                    "setting": setting.name,
                    "workload": workload.name,
                    "generation_len": generation_len,
                    "system": system.name,
                    "throughput": None,
                    "error": str(error),
                }
            )
            continue
        row = result.as_row()
        row.update(
            {
                "setting": setting.name,
                "generation_len": generation_len,
                "error": None,
            }
        )
        rows.append(row)
    return rows


def run_mtbench_experiment(
    settings: Sequence[str] = ("S1", "S2", "S6", "S7"),
    generation_lengths: Sequence[int] = MTBENCH_GENERATION_LENGTHS,
    efficiency: EfficiencyModel | None = None,
    max_sim_layers: int | None = 6,
    simulate: bool = True,
    include_unpadded: bool = True,
) -> list[dict[str, object]]:
    """Reproduce Fig. 7: MTBench throughput across settings and lengths."""
    rows: list[dict[str, object]] = []
    for setting_name in settings:
        setting = get_setting(setting_name)
        include_full = include_unpadded and setting_name in ("S1", "S2")
        systems = default_system_set(
            setting,
            efficiency=efficiency,
            max_sim_layers=max_sim_layers,
            include_unpadded=include_full,
        )
        for generation_len in generation_lengths:
            workload = setting.workload("mtbench", generation_len=generation_len)
            rows.extend(
                _run_systems(systems, workload, setting, generation_len, simulate)
            )
    return rows


def run_helm_experiment(
    settings: Sequence[str] = ("S1", "S2"),
    workloads: Sequence[str] = ("synthetic_reasoning", "summarization"),
    efficiency: EfficiencyModel | None = None,
    max_sim_layers: int | None = 6,
    simulate: bool = True,
) -> list[dict[str, object]]:
    """Reproduce Tab. 4: HELM synthetic reasoning and summarization."""
    rows: list[dict[str, object]] = []
    for setting_name in settings:
        setting = get_setting(setting_name)
        systems = default_system_set(
            setting,
            efficiency=efficiency,
            max_sim_layers=max_sim_layers,
            include_unpadded=False,
        )
        for workload_name in workloads:
            workload = setting.workload(workload_name)
            rows.extend(
                _run_systems(
                    systems, workload, setting, workload.generation_len, simulate
                )
            )
    return rows


def speedup_summary(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """Per (setting, workload, generation length): MoE-Lightning vs. best baseline."""
    groups: dict[tuple, list[dict[str, object]]] = {}
    for row in rows:
        if row.get("throughput") is None:
            continue
        key = (row["setting"], row["workload"], row["generation_len"])
        groups.setdefault(key, []).append(row)
    summary = []
    for (setting, workload, generation_len), group in sorted(groups.items()):
        ours = [r for r in group if str(r["system"]).startswith("moe-lightning")]
        baselines = [r for r in group if not str(r["system"]).startswith("moe-lightning")]
        if not ours or not baselines:
            continue
        best_ours = max(ours, key=lambda r: r["throughput"])
        best_padded = max(
            (r for r in ours if r["system"] == "moe-lightning(p)"),
            key=lambda r: r["throughput"],
            default=best_ours,
        )
        best_baseline = max(baselines, key=lambda r: r["throughput"])
        summary.append(
            {
                "setting": setting,
                "workload": workload,
                "generation_len": generation_len,
                "best_baseline": best_baseline["system"],
                "baseline_throughput": best_baseline["throughput"],
                "moe_lightning_p_throughput": best_padded["throughput"],
                "moe_lightning_throughput": best_ours["throughput"],
                "padded_speedup": best_padded["throughput"] / best_baseline["throughput"],
                "unpadded_speedup": best_ours["throughput"] / best_baseline["throughput"],
            }
        )
    return summary
