"""Policy-vs-hardware sweep (paper Fig. 10, §6.3).

Fixes the model (Mixtral 8x7B) and GPU side (2x A100-80G, enough to hold the
weights), then sweeps the CPU-GPU interconnect bandwidth and a "CPU scaling
ratio" that multiplies CPU memory bandwidth, FLOPs and capacity.  For every
point the HRM optimizer re-selects the best policy; the quantities plotted
are the fraction of weights kept on the CPU, the fraction of KV cache kept
on the CPU and whether attention runs on the CPU.

The paper's observations to reproduce: more weights are offloaded to the CPU
as the interconnect gets faster, and KV-cache offloading (CPU attention)
only pays off when the CPU scaling ratio is high.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.optimizer import PolicyOptimizer
from repro.core.performance_model import EfficiencyModel
from repro.hardware import a100_80g, make_hardware, xeon_24_core
from repro.hardware.registry import pcie_gen4_x16
from repro.models import get_model
from repro.utils.errors import InfeasiblePolicyError
from repro.utils.units import GB, TERA
from repro.workloads import uniform_workload


def base_a100_hardware():
    """The 2x A100-80G node used as the sweep's GPU side."""
    return make_hardware(
        a100_80g(),
        xeon_24_core(memory_gb=200),
        pcie_gen4_x16(),
        tp_size=2,
        name="2xA100-80G",
    )


def run_hardware_sweep(
    cpu_gpu_bandwidths_gb: Sequence[float] = (100, 200, 300, 400, 500),
    cpu_scaling_ratios: Sequence[float] = (1, 2, 4, 6, 8, 10),
    prompt_len: int = 512,
    generation_len: int = 32,
    model_name: str = "mixtral-8x7b",
    efficiency: EfficiencyModel | None = None,
) -> list[dict[str, object]]:
    """Reproduce Fig. 10: best-policy composition across hardware points.

    The base CPU follows the paper's sweep: 200 GB/s memory bandwidth,
    100 GB of DRAM and 1.6 TFLOPS, each multiplied by the scaling ratio.
    """
    model = get_model(model_name)
    workload = uniform_workload(
        prompt_len=prompt_len, generation_len=generation_len, num_requests=4000
    )
    rows = []
    for bandwidth_gb in cpu_gpu_bandwidths_gb:
        for ratio in cpu_scaling_ratios:
            hardware = base_a100_hardware().with_interconnect_bandwidth(
                bandwidth_gb * GB
            )
            cpu = hardware.cpu
            scaled_cpu = type(cpu)(
                name=f"{cpu.name}-x{ratio}",
                memory_bytes=100 * GB * ratio,
                memory_bandwidth=200 * GB * ratio,
                peak_flops=1.6 * TERA * ratio,
                cores=cpu.cores,
            )
            hardware = make_hardware(
                hardware.gpu,
                scaled_cpu,
                hardware.interconnect,
                tp_size=hardware.tp_size,
                name=f"2xA100+{bandwidth_gb}GBps+cpu x{ratio}",
            )
            optimizer = PolicyOptimizer(
                model=model,
                hardware=hardware,
                workload=workload,
                efficiency=efficiency or EfficiencyModel(),
                padded=False,
                allow_cpu_attention=True,
                allow_gpu_attention=True,
            )
            try:
                result = optimizer.search()
            except InfeasiblePolicyError as error:
                rows.append(
                    {
                        "cpu_gpu_bandwidth_gb": bandwidth_gb,
                        "cpu_scaling_ratio": ratio,
                        "error": str(error),
                    }
                )
                continue
            policy = result.policy
            rows.append(
                {
                    "cpu_gpu_bandwidth_gb": bandwidth_gb,
                    "cpu_scaling_ratio": ratio,
                    "weights_on_cpu": policy.weights_cpu_ratio,
                    "kv_cache_on_cpu": (
                        policy.kv_cache_cpu_ratio if policy.attention_on_gpu else 1.0
                    ),
                    "attention_on_cpu": not policy.attention_on_gpu,
                    "batch_size": policy.batch_size,
                    "micro_batch_size": policy.micro_batch_size,
                    "throughput": result.throughput,
                    "error": None,
                }
            )
    return rows


def offload_trends(rows: list[dict[str, object]]) -> dict[str, float]:
    """Correlation-style summary of the two trends the paper highlights.

    Returns the average CPU-weight fraction at the lowest and highest
    interconnect bandwidth, and the average CPU-KV fraction at the lowest and
    highest CPU scaling ratio, so tests can assert the directions match the
    paper (more weight offload with faster links; KV offload only with
    stronger CPUs).
    """
    valid = [row for row in rows if row.get("error") is None]
    if not valid:
        return {}
    bandwidths = sorted({row["cpu_gpu_bandwidth_gb"] for row in valid})
    ratios = sorted({row["cpu_scaling_ratio"] for row in valid})

    def average(key: str, filter_key: str, filter_value) -> float:
        values = [row[key] for row in valid if row[filter_key] == filter_value]
        return sum(values) / len(values) if values else 0.0

    return {
        "weights_on_cpu_at_low_bandwidth": average(
            "weights_on_cpu", "cpu_gpu_bandwidth_gb", bandwidths[0]
        ),
        "weights_on_cpu_at_high_bandwidth": average(
            "weights_on_cpu", "cpu_gpu_bandwidth_gb", bandwidths[-1]
        ),
        "kv_on_cpu_at_low_cpu_scale": average(
            "kv_cache_on_cpu", "cpu_scaling_ratio", ratios[0]
        ),
        "kv_on_cpu_at_high_cpu_scale": average(
            "kv_cache_on_cpu", "cpu_scaling_ratio", ratios[-1]
        ),
    }
