"""Overlapped-streams sweep: serialized vs. overlapped prefill/decode.

One loaded chat arrival stream — request bodies and timestamps pinned by
the seed — is served twice at every load point by the event-driven engine:
once with the serialized step timeline (``overlap=off``, every whole-prompt
prefill stalls the decode stream) and once with overlapped prefill/decode
streams (``overlap=on``, prefills ride decode iterations on the shared
weight-streaming pass and the step lasts as long as the slower half).

The SLO uses a *streaming* TPOT target (default ``tpot_factor=1.2``, i.e.
20% headroom over the unloaded decode step) because that is the regime the
overlap argument is about: each serialized prefill inserts a full
weight-streaming pass into every decoding request's token gap, so under
prefill interference the serialized engine blows the streaming budget
while the overlapped one stays at the decode-step floor.  Every row
reports goodput, mean/percentile TPOT and TTFT, and the measured overlap
fraction — the goodput/TTFT curves that make the win quantitative.

Run directly for the CLI harness::

    python -m repro.experiments.overlap_sweep --num-requests 32 --json out.json

or via ``repro-serve --overlap on``.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.hardware import get_hardware
from repro.models import get_model
from repro.serving.metrics import SLO
from repro.serving.server import default_slo
from repro.serving.sharded import ShardedServingSystem
from repro.utils.errors import ConfigurationError
from repro.workloads import chat


def run_overlap_sweep(
    load_factors: Sequence[float] = (1.0, 2.0, 4.0),
    system_name: str = "moe-lightning",
    model_name: str = "mixtral-8x7b",
    hardware_name: str = "1xT4",
    num_shards: int = 1,
    router: str = "round-robin",
    generation_len: int = 32,
    num_requests: int = 48,
    turns_per_session: int = 4,
    system_prompt_len: int = 64,
    user_turn_len: int = 32,
    scheduling: str = "fcfs",
    arrival: str = "poisson",
    seed: int = 0,
    slo: SLO | None = None,
    tpot_factor: float = 1.2,
    use_simulator: bool = False,
    store_samples: bool = True,
) -> list[dict[str, object]]:
    """Serve one chat stream serialized and overlapped at each load point.

    Returns one row per (load factor, overlap setting), serialized first,
    so adjacent row pairs are directly comparable.  The shared SLO is
    anchored to the unloaded latencies with ``tpot_factor`` headroom on
    the decode step (tight, streaming-style) unless an explicit ``slo``
    is given.

    ``store_samples=False`` runs every point with streaming P² report
    aggregation (flat memory in the stream length); the library default
    stays exact, the CLI harness defaults to streaming.
    """
    from repro.experiments.serving_sweep import (
        ARRIVAL_PROCESSES,
        SERVING_SYSTEMS,
        offline_capacity,
    )

    if not load_factors:
        raise ConfigurationError("load_factors must not be empty")
    if arrival not in ARRIVAL_PROCESSES:
        known = ", ".join(sorted(ARRIVAL_PROCESSES))
        raise ConfigurationError(f"unknown arrival process {arrival!r}; known: {known}")
    if system_name not in SERVING_SYSTEMS:
        known = ", ".join(sorted(SERVING_SYSTEMS))
        raise ConfigurationError(f"unknown system {system_name!r}; known: {known}")

    model = get_model(model_name)
    hardware = get_hardware(hardware_name)
    workload = chat(
        generation_len=generation_len,
        num_requests=num_requests,
        turns_per_session=turns_per_session,
        system_prompt_len=system_prompt_len,
        user_turn_len=user_turn_len,
    )
    backend = SERVING_SYSTEMS[system_name](model, hardware)
    policy = backend.select_policy(workload)
    shared_slo = slo or default_slo(
        backend, workload, policy, tpot_factor=tpot_factor
    )
    rate_reference = offline_capacity(backend, workload, policy)

    # One system per overlap setting across all load points: run() holds
    # no cross-run state, and reusing the instance keeps its step-time
    # memo caches warm (as run_serving_sweep does across its rate loop).
    servers = {
        overlap: ShardedServingSystem(
            backend,
            workload,
            num_shards=num_shards,
            router=router,
            policy=policy,
            scheduling=scheduling,
            slo=shared_slo,
            use_simulator=use_simulator,
            overlap=overlap,
            store_samples=store_samples,
        )
        for overlap in (False, True)
    }

    rows: list[dict[str, object]] = []
    for load_factor in load_factors:
        rate = load_factor * rate_reference
        process = ARRIVAL_PROCESSES[arrival](rate)
        for overlap in (False, True):
            result = servers[overlap].run(process, count=num_requests, seed=seed)
            row: dict[str, object] = {
                "overlap": "on" if overlap else "off",
                "load_factor": load_factor,
                "rate_rps": rate,
                "arrival": arrival,
            }
            row.update(result.as_row())
            rows.append(row)
    return rows


#: Columns for the printed serialized-vs-overlapped table.
OVERLAP_SWEEP_COLUMNS: tuple[str, ...] = (
    "system",
    "overlap",
    "load_factor",
    "rate_rps",
    "num_shards",
    "completed",
    "rejected",
    "token_throughput",
    "mean_tpot",
    "tpot_p95",
    "ttft_p50",
    "ttft_p95",
    "goodput",
    "goodput_fraction",
    "overlap_fraction",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-overlap-sweep",
        description=(
            "Serialized vs. overlapped prefill/decode streams over one "
            "loaded chat stream: goodput, TPOT and TTFT curves."
        ),
    )
    parser.add_argument("--system", default="moe-lightning")
    parser.add_argument("--model", default="mixtral-8x7b")
    parser.add_argument("--hardware", default="1xT4")
    parser.add_argument(
        "--load-factors", nargs="+", type=float, default=(1.0, 2.0, 4.0)
    )
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--router", default="round-robin")
    parser.add_argument("--generation-len", type=int, default=32)
    parser.add_argument("--num-requests", type=int, default=48)
    parser.add_argument("--turns", type=int, default=4)
    parser.add_argument("--system-prompt-len", type=int, default=64)
    parser.add_argument("--user-turn-len", type=int, default=32)
    parser.add_argument("--arrival", default="poisson")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tpot-factor",
        type=float,
        default=1.2,
        help="streaming TPOT SLO headroom over the unloaded decode step",
    )
    parser.add_argument(
        "--exact-report",
        action="store_true",
        help=(
            "store per-request samples and compute exact percentiles "
            "instead of the default streaming P² report"
        ),
    )
    parser.add_argument("--json", default=None, metavar="PATH")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Console harness (also the quick-bench CI entry point)."""
    import sys

    from repro.experiments.bench_output import write_bench_serving_json
    from repro.experiments.report import render_rows
    from repro.utils.errors import ReproError

    args = _build_parser().parse_args(argv)
    try:
        if args.shards < 1:
            raise ConfigurationError(f"--shards must be >= 1, got {args.shards}")
        rows = run_overlap_sweep(
            load_factors=tuple(args.load_factors),
            system_name=args.system,
            model_name=args.model,
            hardware_name=args.hardware,
            num_shards=args.shards,
            router=args.router,
            generation_len=args.generation_len,
            num_requests=args.num_requests,
            turns_per_session=args.turns,
            system_prompt_len=args.system_prompt_len,
            user_turn_len=args.user_turn_len,
            arrival=args.arrival,
            seed=args.seed,
            tpot_factor=args.tpot_factor,
            store_samples=args.exact_report,
        )
    except ReproError as exc:
        print(f"repro-overlap-sweep: error: {exc}", file=sys.stderr)
        return 2
    print(
        render_rows(
            rows,
            columns=list(OVERLAP_SWEEP_COLUMNS),
            title=(
                f"Overlap sweep: chat @ {args.model} / {args.hardware} "
                f"x{args.shards} ({args.arrival} arrivals, seed {args.seed})"
            ),
        )
    )
    if args.json:
        write_bench_serving_json(
            args.json,
            rows,
            meta={
                "source": "repro.experiments.overlap_sweep",
                "model": args.model,
                "hardware": args.hardware,
                "workload": "chat",
                "generation_len": args.generation_len,
                "num_requests": args.num_requests,
                "turns_per_session": args.turns,
                "shards": args.shards,
                "router": args.router,
                "tpot_factor": args.tpot_factor,
                "seed": args.seed,
            },
        )
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
