"""Schedule comparison experiment (paper Fig. 6).

Runs the four decode schedules of Fig. 6 on a representative
memory-constrained configuration (Mixtral 8x7B on the T4 setting with a
CGOPipe-style policy) and reports per-schedule step time, channel
utilisation, GPU bubble fraction and an ASCII Gantt chart of one decode
step.
"""

from __future__ import annotations

from repro.analysis.schedule_diagram import ScheduleComparison, compare_schedules
from repro.core.performance_model import EfficiencyModel
from repro.core.policy import Policy
from repro.experiments.settings import get_setting


def run_schedule_comparison(
    setting_name: str = "S1",
    batch_size: int = 960,
    micro_batch_size: int = 64,
    context_len: int = 512,
    weights_gpu_ratio: float = 0.05,
    efficiency: EfficiencyModel | None = None,
    max_sim_layers: int | None = 6,
) -> list[ScheduleComparison]:
    """Compare CGOPipe against the three baseline schedules of Fig. 6."""
    setting = get_setting(setting_name)
    policy = Policy(
        batch_size=batch_size,
        micro_batch_size=micro_batch_size,
        attention_on_gpu=False,
        ffn_on_gpu=True,
        weights_gpu_ratio=weights_gpu_ratio,
    )
    return compare_schedules(
        model=setting.model,
        hardware=setting.hardware,
        policy=policy,
        context_len=context_len,
        efficiency=efficiency,
        max_sim_layers=max_sim_layers,
    )


def comparison_rows(results: list[ScheduleComparison]) -> list[dict[str, object]]:
    """Flat rows (plus CGOPipe-relative slowdown) for report tables."""
    cgopipe = next((r for r in results if r.schedule == "cgopipe"), None)
    rows = []
    for result in results:
        row = result.as_row()
        if cgopipe is not None and cgopipe.step_time > 0:
            row["slowdown_vs_cgopipe"] = result.step_time / cgopipe.step_time
        rows.append(row)
    return rows
