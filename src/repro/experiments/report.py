"""Rendering experiment rows as text / markdown tables."""

from __future__ import annotations

from typing import Sequence

from repro.utils.tables import render_markdown_table, render_table


def _columns(rows: Sequence[dict[str, object]], columns: Sequence[str] | None) -> list[str]:
    if columns is not None:
        return list(columns)
    seen: list[str] = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def render_rows(
    rows: Sequence[dict[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render experiment rows as a fixed-width text table."""
    if not rows:
        return f"{title or 'results'}: (no rows)"
    headers = _columns(rows, columns)
    body = [[row.get(column) for column in headers] for row in rows]
    return render_table(headers, body, precision=precision, title=title)


def rows_to_markdown(
    rows: Sequence[dict[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 2,
) -> str:
    """Render experiment rows as a markdown table (for EXPERIMENTS.md)."""
    if not rows:
        return "(no rows)"
    headers = _columns(rows, columns)
    body = [[row.get(column) for column in headers] for row in rows]
    return render_markdown_table(headers, body, precision=precision)
