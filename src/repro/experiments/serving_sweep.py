"""Online-serving load sweep: throughput versus tail latency under load.

The paper's evaluation compares systems on static batches; this experiment
compares them *online*: a Poisson (or bursty Gamma, or deterministic)
request stream is swept across arrival rates expressed as multiples of the
reference system's offline capacity, and every (system, rate) point reports
TTFT / TPOT p50/p99, end-to-end p99, token throughput and SLO-goodput.

All systems at a sweep point see the same absolute arrival rate, the same
request bodies (the arrival seed fixes both prompt lengths and timestamps)
and the same SLO (anchored to the first system's unloaded latencies), so
the resulting throughput-vs-p99-latency curves are directly comparable.
Runs are fully deterministic under a fixed ``seed``.
"""

from __future__ import annotations

import argparse
from typing import Callable, Sequence

from repro.hardware import get_hardware
from repro.models import get_model
from repro.serving.arrivals import (
    ArrivalProcess,
    DeterministicProcess,
    GammaProcess,
    PoissonProcess,
)
from repro.serving.metrics import SLO
from repro.serving.scheduler import SCHEDULING_POLICIES
from repro.serving.server import ServingSystem, default_slo
from repro.systems import DeepSpeedZeroSystem, FlexGenSystem, MoELightningSystem
from repro.systems.base import OffloadingSystem
from repro.utils.errors import ConfigurationError
from repro.workloads import get_workload

#: Factories for the serving backends the sweep can compare.
SERVING_SYSTEMS: dict[str, Callable[..., OffloadingSystem]] = {
    "moe-lightning": lambda model, hardware: MoELightningSystem(model, hardware),
    "moe-lightning(p)": lambda model, hardware: MoELightningSystem(
        model, hardware, padded=True
    ),
    "flexgen": lambda model, hardware: FlexGenSystem(model, hardware),
    "flexgen(c)": lambda model, hardware: FlexGenSystem(
        model, hardware, cpu_attention=True
    ),
    "deepspeed": lambda model, hardware: DeepSpeedZeroSystem(model, hardware),
}

#: Arrival-process factories keyed by name; each takes the absolute rate.
ARRIVAL_PROCESSES: dict[str, Callable[[float], ArrivalProcess]] = {
    "poisson": PoissonProcess,
    "gamma": lambda rate: GammaProcess(rate, cv=3.0),
    "deterministic": DeterministicProcess,
}


def offline_capacity(backend: OffloadingSystem, workload, policy) -> float:
    """Requests per second the backend sustains on a static batch."""
    estimate = backend.performance_model(workload).estimate(policy)
    if estimate.total_time <= 0:
        return 0.0
    return policy.batch_size / estimate.total_time


def run_serving_sweep(
    load_factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    system_names: Sequence[str] = ("moe-lightning", "flexgen"),
    model_name: str = "mixtral-8x7b",
    hardware_name: str = "1xT4",
    workload_name: str = "mtbench",
    generation_len: int = 16,
    num_requests: int = 48,
    scheduling: str = "fcfs",
    arrival: str = "poisson",
    seed: int = 0,
    slo: SLO | None = None,
    use_simulator: bool = False,
    chunk_prefill_tokens: int | None = None,
    prefix_cache: bool = False,
    overlap: bool = False,
    session_ttl: float | None = None,
    telemetry=None,
    store_samples: bool = True,
) -> list[dict[str, object]]:
    """Sweep arrival rates across serving systems; one row per point.

    Rates are ``load_factor`` multiples of the *first* system's offline
    capacity so every system is measured at identical absolute load.  The
    shared SLO defaults to the first system's unloaded latencies (see
    :func:`repro.serving.server.default_slo`).

    ``store_samples=False`` switches every point to streaming P² report
    aggregation (flat memory in the stream length; percentiles within
    sketch tolerance, all other metrics exact).  The library default stays
    exact; the ``repro-serve`` CLI defaults to streaming and restores this
    with ``--exact-report``.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) observes the *final*
    sweep point — the last listed system at the highest load factor — so
    one trace/metrics artifact describes one well-defined run rather than
    a blur of all of them.
    """
    if not load_factors:
        raise ConfigurationError("load_factors must not be empty")
    if arrival not in ARRIVAL_PROCESSES:
        known = ", ".join(sorted(ARRIVAL_PROCESSES))
        raise ConfigurationError(f"unknown arrival process {arrival!r}; known: {known}")
    unknown = [name for name in system_names if name not in SERVING_SYSTEMS]
    if unknown:
        known = ", ".join(sorted(SERVING_SYSTEMS))
        raise ConfigurationError(f"unknown systems {unknown}; known: {known}")

    model = get_model(model_name)
    hardware = get_hardware(hardware_name)
    workload = get_workload(
        workload_name, generation_len=generation_len, num_requests=num_requests
    )

    backends = [SERVING_SYSTEMS[name](model, hardware) for name in system_names]
    policies = [backend.select_policy(workload) for backend in backends]
    shared_slo = slo or default_slo(backends[0], workload, policies[0])
    reference_rate = offline_capacity(backends[0], workload, policies[0])
    # One ServingSystem per backend across all rate points: run() holds no
    # cross-run state, and reusing the instance keeps its step-time memo
    # caches warm (the dominant cost with use_simulator=True).
    servers = [
        ServingSystem(
            backend,
            workload,
            policy=policy,
            scheduling=scheduling,
            slo=shared_slo,
            use_simulator=use_simulator,
            chunk_prefill_tokens=chunk_prefill_tokens,
            prefix_cache=prefix_cache,
            overlap=overlap,
            session_ttl=session_ttl,
            store_samples=store_samples,
        )
        for backend, policy in zip(backends, policies)
    ]

    rows: list[dict[str, object]] = []
    total_runs = len(load_factors) * len(servers)
    run_index = 0
    for load_factor in load_factors:
        rate = load_factor * reference_rate
        process = ARRIVAL_PROCESSES[arrival](rate)
        for serving in servers:
            run_index += 1
            attach = telemetry if run_index == total_runs else None
            result = serving.run(
                process, count=num_requests, seed=seed, telemetry=attach
            )
            row: dict[str, object] = {
                "load_factor": load_factor,
                "rate_rps": rate,
                "arrival": arrival,
                "scheduling": scheduling,
                "prefix_cache": "on" if prefix_cache else "off",
                "overlap": "on" if overlap else "off",
            }
            row.update(result.as_row())
            row["slo_ttft"] = shared_slo.ttft
            row["slo_tpot"] = shared_slo.tpot
            rows.append(row)
    return rows


#: Columns for the printed throughput-vs-tail-latency table.
SWEEP_COLUMNS: tuple[str, ...] = (
    "system",
    "load_factor",
    "rate_rps",
    "completed",
    "rejected",
    "token_throughput",
    "ttft_p50",
    "ttft_p99",
    "tpot_p50",
    "tpot_p99",
    "e2e_p99",
    "goodput",
    "goodput_fraction",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Online continuous-batching load sweep across serving systems; "
            "with --shards N, a sharded throughput-vs-shards sweep instead."
        ),
    )
    parser.add_argument(
        "--systems",
        nargs="+",
        default=["moe-lightning", "flexgen"],
        choices=sorted(SERVING_SYSTEMS),
    )
    parser.add_argument(
        "--load-factors",
        nargs="+",
        type=float,
        default=None,
        help=(
            "arrival rates as multiples of the first system's offline "
            "capacity (default: 0.25 0.5 1 2 4); sharded mode uses the "
            "single --load-factor instead, or max(--load-factors) if only "
            "those are given"
        ),
    )
    parser.add_argument("--model", default="mixtral-8x7b")
    parser.add_argument("--hardware", default="1xT4")
    parser.add_argument("--workload", default="mtbench")
    parser.add_argument("--generation-len", type=int, default=16)
    parser.add_argument("--num-requests", type=int, default=48)
    parser.add_argument(
        "--policy",
        "--scheduling",
        dest="scheduling",
        default="fcfs",
        metavar="POLICY",
        help="scheduling policy: fcfs, prefill-first or decode-first",
    )
    parser.add_argument(
        "--arrival",
        default="poisson",
        metavar="PROCESS",
        help="arrival process: poisson, gamma or deterministic",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--simulate",
        action="store_true",
        help="sample step times from the discrete-event schedule simulator",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "serve with data-parallel shards: sweeps 1..N shard counts over "
            "one identical request stream (first listed system only)"
        ),
    )
    parser.add_argument(
        "--router",
        default="round-robin",
        metavar="POLICY",
        help=(
            "shard router: round-robin, least-loaded, session-affinity or "
            "cache-aware"
        ),
    )
    parser.add_argument(
        "--chunk-prefill",
        type=int,
        default=0,
        metavar="TOKENS",
        help="chunked-prefill token budget per engine step (0 disables)",
    )
    parser.add_argument(
        "--prefix-cache",
        choices=("on", "off"),
        default="off",
        help=(
            "share KV blocks across requests with matching prompt prefixes "
            "(ref-counted block store with LRU reuse); pairs naturally with "
            "--workload chat"
        ),
    )
    parser.add_argument(
        "--overlap",
        choices=("on", "off"),
        default="off",
        help=(
            "overlapped prefill/decode streams: whole-prompt prefills ride "
            "decode iterations on the shared weight-streaming pass instead "
            "of stalling them (off reproduces the serialized timeline)"
        ),
    )
    parser.add_argument(
        "--load-factor",
        type=float,
        default=None,
        help=(
            "sharded mode: arrival rate as a multiple of one shard's "
            "capacity (default 4.0)"
        ),
    )
    parser.add_argument(
        "--disagg",
        action="store_true",
        help=(
            "compare disaggregated prefill/decode pools (priced KV "
            "migration, phase-aware routing) against unified serving at "
            "equal device count under mixed chat + long-prompt traffic "
            "(see repro-disagg for the full set of knobs)"
        ),
    )
    parser.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "evict prefix-cache sessions idle longer than this simulated "
            "duration (requires --prefix-cache on; sharded/disagg modes)"
        ),
    )
    parser.add_argument(
        "--exact-report",
        action="store_true",
        help=(
            "store per-request samples and compute exact percentiles "
            "instead of the default streaming P² report (streaming keeps "
            "memory flat on long streams; percentiles agree within sketch "
            "tolerance and every other metric is exact either way)"
        ),
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the sweep as a machine-readable BENCH_serving.json",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "record the final sweep point as Chrome trace-event JSON "
            "(open in Perfetto, or summarise with repro-trace)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write the final sweep point's time-series samples as JSONL "
            "(one {\"t\": ...} object per line; last line carries the "
            "metric-registry summary) and print sparklines"
        ),
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "simulated-time spacing of the time-series samples "
            "(default: 1.0 when --metrics-out is set)"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point (installed as ``repro-serve``).

    Returns a process exit status: 0 on success, 2 on invalid
    configuration (unknown policy/arrival/model/... values), so scripts and
    CI can rely on the exit code instead of scraping tracebacks.
    """
    import sys

    from repro.experiments.bench_output import write_bench_serving_json
    from repro.experiments.report import render_rows
    from repro.experiments.shard_scaling import (
        SHARD_SCALING_COLUMNS,
        run_shard_scaling,
        shard_counts_up_to,
    )
    from repro.utils.errors import ReproError

    parser = _build_parser()
    args = parser.parse_args(argv)

    try:
        if args.chunk_prefill < 0:
            raise ConfigurationError(
                f"--chunk-prefill must be >= 0 (0 disables), got "
                f"{args.chunk_prefill}"
            )
        chunk_prefill = args.chunk_prefill if args.chunk_prefill > 0 else None
        if args.scheduling not in SCHEDULING_POLICIES:
            known = ", ".join(SCHEDULING_POLICIES)
            raise ConfigurationError(
                f"unknown scheduling policy {args.scheduling!r}; known: {known}"
            )
        if args.arrival not in ARRIVAL_PROCESSES:
            known = ", ".join(sorted(ARRIVAL_PROCESSES))
            raise ConfigurationError(
                f"unknown arrival process {args.arrival!r}; known: {known}"
            )
        if args.shards < 1:
            raise ConfigurationError(f"--shards must be >= 1, got {args.shards}")
        if args.session_ttl is not None and args.prefix_cache != "on":
            raise ConfigurationError(
                "--session-ttl requires --prefix-cache on: without the "
                "shared block store there are no idle cached sessions to "
                "expire"
            )

        meta = {
            "model": args.model,
            "hardware": args.hardware,
            "workload": args.workload,
            "generation_len": args.generation_len,
            "num_requests": args.num_requests,
            "scheduling": args.scheduling,
            "arrival": args.arrival,
            "seed": args.seed,
            "shards": args.shards,
            "router": args.router,
            "chunk_prefill": args.chunk_prefill,
            "prefix_cache": args.prefix_cache,
            "overlap": args.overlap,
            "session_ttl": args.session_ttl,
            "disagg": args.disagg,
            "report": "exact" if args.exact_report else "streaming",
        }
        prefix_cache = args.prefix_cache == "on"
        overlap = args.overlap == "on"
        # Telemetry is strictly opt-in: with none of the flags set the
        # serving loops take their historical code paths untouched.
        telemetry = None
        if args.trace or args.metrics_out or args.sample_interval is not None:
            from repro.obs import Telemetry

            if args.sample_interval is not None and args.sample_interval <= 0:
                raise ConfigurationError(
                    f"--sample-interval must be > 0, got {args.sample_interval}"
                )
            interval = args.sample_interval
            if interval is None and args.metrics_out:
                interval = 1.0
            telemetry = Telemetry(
                trace=args.trace is not None,
                metrics=True,
                sample_interval=interval,
            )
        if args.disagg:
            # Disaggregation comparison: unified vs prefill/decode pools
            # (vs a fast-prefill heterogeneous cluster) at equal device
            # count, under the mixed traffic the split exists for.
            from repro.experiments.disagg_sweep import (
                DISAGG_COLUMNS,
                run_disagg_sweep,
            )

            num_shards = args.shards if args.shards > 1 else 4
            rows = run_disagg_sweep(
                system_name=args.systems[0],
                model_name=args.model,
                hardware_name=args.hardware,
                num_shards=num_shards,
                load_factor=args.load_factor or 3.0,
                seed=args.seed,
                prefix_cache=prefix_cache,
                session_ttl=args.session_ttl,
                use_simulator=args.simulate,
            )
            columns = list(DISAGG_COLUMNS)
            if args.session_ttl is not None:
                columns.append("ttl_evictions")
            title = (
                f"Disaggregation sweep: mixed traffic @ {args.model} / "
                f"{args.hardware} x{num_shards} (seed {args.seed})"
            )
        elif args.shards > 1:
            # Sharded mode sweeps shard counts at one load point: take it
            # from --load-factor, falling back to the strongest requested
            # --load-factors rate rather than silently dropping them.
            if args.load_factor is not None:
                load_factor = args.load_factor
            elif args.load_factors:
                load_factor = max(args.load_factors)
            else:
                load_factor = 4.0
            rows = run_shard_scaling(
                shard_counts=shard_counts_up_to(args.shards),
                router=args.router,
                system_name=args.systems[0],
                model_name=args.model,
                hardware_name=args.hardware,
                workload_name=args.workload,
                generation_len=args.generation_len,
                num_requests=args.num_requests,
                load_factor=load_factor,
                scheduling=args.scheduling,
                arrival=args.arrival,
                chunk_prefill_tokens=chunk_prefill,
                seed=args.seed,
                use_simulator=args.simulate,
                prefix_cache=prefix_cache,
                overlap=overlap,
                session_ttl=args.session_ttl,
                telemetry=telemetry,
                store_samples=args.exact_report,
            )
            columns = list(SHARD_SCALING_COLUMNS)
            if prefix_cache:
                columns += ["hit_rate", "cached_token_fraction"]
            if overlap:
                columns += ["overlap_fraction"]
            title = (
                f"Shard scaling: {args.workload} @ {args.model} / "
                f"{args.hardware} x{args.shards} ({args.router} routing, "
                f"{load_factor:g}x single-shard load, seed {args.seed})"
            )
        else:
            rows = run_serving_sweep(
                load_factors=args.load_factors or (0.25, 0.5, 1.0, 2.0, 4.0),
                system_names=args.systems,
                model_name=args.model,
                hardware_name=args.hardware,
                workload_name=args.workload,
                generation_len=args.generation_len,
                num_requests=args.num_requests,
                scheduling=args.scheduling,
                arrival=args.arrival,
                seed=args.seed,
                use_simulator=args.simulate,
                chunk_prefill_tokens=chunk_prefill,
                prefix_cache=prefix_cache,
                overlap=overlap,
                session_ttl=args.session_ttl,
                telemetry=telemetry,
                store_samples=args.exact_report,
            )
            columns = list(SWEEP_COLUMNS)
            if prefix_cache:
                columns += ["hit_rate", "cached_token_fraction"]
            if overlap:
                columns += ["overlap_fraction"]
            title = (
                f"Serving sweep: {args.workload} @ {args.model} / {args.hardware} "
                f"({args.arrival} arrivals, {args.scheduling} scheduling, "
                f"seed {args.seed})"
            )
    except ReproError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2

    print(render_rows(rows, columns=columns, title=title))
    if args.json:
        write_bench_serving_json(args.json, rows, meta=meta)
        print(f"wrote {args.json}")
    if telemetry is not None:
        _write_telemetry(telemetry, args)
    return 0


def _write_telemetry(telemetry, args) -> None:
    """Export the recorded trace / metrics and print the sparklines."""
    import json as json_module

    if args.trace and telemetry.trace is not None:
        telemetry.trace.write_chrome(args.trace)
        print(f"wrote {args.trace} ({len(telemetry.trace.spans)} lane spans)")
    if args.metrics_out:
        lines = []
        if telemetry.sampler is not None:
            text = telemetry.sampler.to_jsonl()
            if text:
                lines.append(text)
        if telemetry.registry is not None:
            lines.append(
                json_module.dumps(
                    {"summary": telemetry.registry.snapshot()}, sort_keys=True
                )
            )
        with open(args.metrics_out, "w") as handle:
            handle.write("\n".join(lines) + "\n" if lines else "")
        print(f"wrote {args.metrics_out}")
    if telemetry.sampler is not None and telemetry.sampler.samples:
        print("time series (final sweep point):")
        print(
            telemetry.sampler.render(
                [
                    name
                    for name in (
                        "queue_depth",
                        "running",
                        "load",
                        "kv_frac",
                        "hit_rate",
                        "overlap_fraction",
                    )
                    if any(
                        name in sample for sample in telemetry.sampler.samples
                    )
                ]
            )
        )


if __name__ == "__main__":
    raise SystemExit(main())
