"""Evaluation settings (paper Table 2) and workload roster (Table 3).

``S1``/``S2`` pair Mixtral 8x7B with a single T4/L4 plus a 24-core Xeon with
192 GB of DRAM; ``S6``/``S7`` pair Mixtral 8x22B with 2/4 T4s and a 32-core
Xeon with 416 GB; ``S8``/``S9`` run DBRX on the same multi-T4 nodes.  (The
paper's table skips the labels S3-S5.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import get_hardware
from repro.hardware.spec import HardwareSpec
from repro.models import get_model
from repro.models.config import ModelConfig
from repro.utils.errors import ConfigurationError
from repro.workloads import get_workload
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class EvaluationSetting:
    """One row of Table 2: a model paired with a hardware node."""

    name: str
    model_name: str
    hardware_name: str
    description: str = ""

    @property
    def model(self) -> ModelConfig:
        """Instantiate the model configuration."""
        return get_model(self.model_name)

    @property
    def hardware(self) -> HardwareSpec:
        """Instantiate the hardware specification."""
        return get_hardware(self.hardware_name)

    def workload(self, name: str, **kwargs) -> WorkloadSpec:
        """Instantiate one of the Table 3 workloads."""
        return get_workload(name, **kwargs)


EVALUATION_SETTINGS: dict[str, EvaluationSetting] = {
    "S1": EvaluationSetting(
        name="S1",
        model_name="mixtral-8x7b",
        hardware_name="1xT4",
        description="Mixtral 8x7B, 1x T4 (16GB), 24-core Xeon 192GB",
    ),
    "S2": EvaluationSetting(
        name="S2",
        model_name="mixtral-8x7b",
        hardware_name="1xL4",
        description="Mixtral 8x7B, 1x L4 (24GB), 24-core Xeon 192GB",
    ),
    "S6": EvaluationSetting(
        name="S6",
        model_name="mixtral-8x22b",
        hardware_name="2xT4",
        description="Mixtral 8x22B, 2x T4 (32GB), 32-core Xeon 416GB",
    ),
    "S7": EvaluationSetting(
        name="S7",
        model_name="mixtral-8x22b",
        hardware_name="4xT4",
        description="Mixtral 8x22B, 4x T4 (64GB), 32-core Xeon 416GB",
    ),
    "S8": EvaluationSetting(
        name="S8",
        model_name="dbrx",
        hardware_name="2xT4",
        description="DBRX, 2x T4 (32GB), 32-core Xeon 416GB",
    ),
    "S9": EvaluationSetting(
        name="S9",
        model_name="dbrx",
        hardware_name="4xT4",
        description="DBRX, 4x T4 (64GB), 32-core Xeon 416GB",
    ),
}

#: Generation lengths swept for MTBench in Fig. 7 / Fig. 8.
MTBENCH_GENERATION_LENGTHS: tuple[int, ...] = (32, 64, 128, 256)


def get_setting(name: str) -> EvaluationSetting:
    """Look an evaluation setting up by its paper label (case-insensitive)."""
    key = name.upper()
    if key not in EVALUATION_SETTINGS:
        known = ", ".join(sorted(EVALUATION_SETTINGS))
        raise ConfigurationError(f"unknown setting {name!r}; known settings: {known}")
    return EVALUATION_SETTINGS[key]


def list_settings() -> list[str]:
    """All setting labels in paper order."""
    return list(EVALUATION_SETTINGS)
