"""Sharded-serving scaling experiment: throughput and tails vs. shard count.

One arrival stream — rate fixed as a multiple of a *single* shard's offline
capacity, request bodies and timestamps pinned by the seed — is served by
1, 2, ..., N data-parallel shards behind a router.  Every point reports the
aggregate token throughput, TTFT/TPOT tails, SLO-goodput and the per-shard
utilizations, producing the throughput-vs-shards and tail-latency curves
the `repro-serve --shards N` mode prints.

Because the workload is identical across points, the curves answer the
capacity-planning question directly: how much does the next shard buy at
this load, and does the router keep it busy?
"""

from __future__ import annotations

from typing import Sequence

from repro.hardware import get_hardware
from repro.models import get_model
from repro.serving.metrics import SLO
from repro.serving.router import ROUTER_POLICIES
from repro.serving.server import default_slo
from repro.serving.sharded import ShardedServingSystem
from repro.utils.errors import ConfigurationError
from repro.workloads import get_workload


def shard_counts_up_to(max_shards: int) -> list[int]:
    """1, 2, 4, ... capped at (and always including) ``max_shards``."""
    if max_shards < 1:
        raise ConfigurationError(f"max_shards must be >= 1, got {max_shards}")
    counts = set()
    value = 1
    while value < max_shards:
        counts.add(value)
        value *= 2
    counts.add(max_shards)
    return sorted(counts)


def run_shard_scaling(
    shard_counts: Sequence[int] = (1, 2, 4),
    router: str = "round-robin",
    system_name: str = "moe-lightning",
    model_name: str = "mixtral-8x7b",
    hardware_name: str = "1xT4",
    workload_name: str = "mtbench",
    generation_len: int = 16,
    num_requests: int = 48,
    load_factor: float = 4.0,
    scheduling: str = "fcfs",
    arrival: str = "poisson",
    chunk_prefill_tokens: int | None = None,
    seed: int = 0,
    slo: SLO | None = None,
    use_simulator: bool = False,
    prefix_cache: bool = False,
    overlap: bool = False,
    session_ttl: float | None = None,
    telemetry=None,
    store_samples: bool = True,
) -> list[dict[str, object]]:
    """Serve one identical stream with each shard count; one row per point.

    The arrival rate is ``load_factor`` times one shard's offline capacity
    regardless of the point's shard count, so every row faces the same
    stream and rows differ only in how much hardware absorbs it.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) observes the *last*
    point — the highest shard count, the configuration the sweep argues
    for — so the exported trace shows every shard's lanes.

    ``store_samples=False`` runs every point with streaming P² report
    aggregation (flat memory in the stream length); the library default
    stays exact, the ``repro-serve`` CLI defaults to streaming.
    """
    from repro.experiments.serving_sweep import (
        ARRIVAL_PROCESSES,
        SERVING_SYSTEMS,
        offline_capacity,
    )

    if router not in ROUTER_POLICIES:
        known = ", ".join(ROUTER_POLICIES)
        raise ConfigurationError(f"unknown router policy {router!r}; known: {known}")
    if arrival not in ARRIVAL_PROCESSES:
        known = ", ".join(sorted(ARRIVAL_PROCESSES))
        raise ConfigurationError(f"unknown arrival process {arrival!r}; known: {known}")
    if system_name not in SERVING_SYSTEMS:
        known = ", ".join(sorted(SERVING_SYSTEMS))
        raise ConfigurationError(f"unknown system {system_name!r}; known: {known}")
    if not shard_counts:
        raise ConfigurationError("shard_counts must not be empty")

    model = get_model(model_name)
    hardware = get_hardware(hardware_name)
    workload = get_workload(
        workload_name, generation_len=generation_len, num_requests=num_requests
    )
    backend = SERVING_SYSTEMS[system_name](model, hardware)
    policy = backend.select_policy(workload)
    shared_slo = slo or default_slo(backend, workload, policy)
    rate = load_factor * offline_capacity(backend, workload, policy)
    process = ARRIVAL_PROCESSES[arrival](rate)

    rows: list[dict[str, object]] = []
    for index, num_shards in enumerate(shard_counts):
        # One shard behind the router reproduces the plain ServingSystem
        # exactly (tested), so every point goes through the same machinery
        # and reports the same columns.
        sharded = ShardedServingSystem(
            backend,
            workload,
            num_shards=num_shards,
            router=router,
            policy=policy,
            scheduling=scheduling,
            slo=shared_slo,
            chunk_prefill_tokens=chunk_prefill_tokens,
            use_simulator=use_simulator,
            prefix_cache=prefix_cache,
            overlap=overlap,
            session_ttl=session_ttl,
            store_samples=store_samples,
        )
        attach = telemetry if index == len(shard_counts) - 1 else None
        row = sharded.run(
            process, count=num_requests, seed=seed, telemetry=attach
        ).as_row()
        row["load_factor"] = load_factor
        row["rate_rps"] = rate
        row["arrival"] = arrival
        row["prefix_cache"] = "on" if prefix_cache else "off"
        row["overlap"] = "on" if overlap else "off"
        rows.append(row)
    return rows


#: Columns for the printed throughput-vs-shards table.
SHARD_SCALING_COLUMNS: tuple[str, ...] = (
    "num_shards",
    "router",
    "rate_rps",
    "completed",
    "rejected",
    "token_throughput",
    "ttft_p50",
    "ttft_p99",
    "tpot_p50",
    "tpot_p99",
    "goodput",
    "goodput_fraction",
    "shard_util_mean",
    "shard_util_min",
    "shard_util",
)
