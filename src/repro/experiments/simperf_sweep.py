"""Simulator raw-speed sweep: events/sec across stream lengths and shards.

Not a paper artifact — this measures the *simulator itself*.  The serving
engine's hot path (streaming reports, lazy columnar arrivals, O(1) event
accounting) claims million-request streams at flat memory; this harness is
the evidence.  Each point serves one seeded multi-turn chat stream through
:class:`~repro.serving.sharded.ShardedServingSystem` in streaming mode and
reports wall-clock events/sec, where an *event* is one arrival or one
engine step — the two units of work the discrete-event loop dispatches.

The arrival rate scales proportionally with the shard count, so per-shard
load (and therefore per-shard step count) is roughly constant across
points and events/sec should scale near-linearly in both stream length and
shard count; :func:`check_near_linear_scaling` asserts the length axis.

:func:`measure_reference` times the retained pre-optimization loop
(:meth:`~repro.serving.sharded.ShardedServingSystem.run_time_sliced`, with
polling routing and exact stored-sample reports) on a calibration-sized
stream in the flagship configuration — cache-aware routing over a shared
prefix cache — where the polling router re-hashes every prompt once per
shard per arrival.  A matched streaming point at the same configuration
gives the speedup ``BENCH_simperf.json`` records and CI gates on.
"""

from __future__ import annotations

import argparse
import time
import tracemalloc
from typing import Sequence

from repro.experiments.bench_output import write_bench_simperf_json
from repro.experiments.serving_sweep import offline_capacity
from repro.hardware import get_hardware
from repro.models import get_model
from repro.serving.arrivals import PoissonProcess
from repro.serving.sharded import ShardedServingResult, ShardedServingSystem
from repro.systems import MoELightningSystem
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive, require_positive_int
from repro.workloads import chat

#: Offered load as a fraction of the shards' aggregate offline capacity:
#: high enough to keep every shard continuously batching, low enough that
#: queues stay bounded so memory and tails reflect steady state rather
#: than an ever-growing backlog.
DEFAULT_LOAD_FACTOR = 0.8

#: Stream lengths and shard counts of the default sweep grid.
DEFAULT_STREAM_LENGTHS: tuple[int, ...] = (5_000, 20_000, 50_000)
DEFAULT_SHARD_COUNTS: tuple[int, ...] = (4, 16)

#: Calibration size for the reference pair: large enough that the pre-PR
#: baseline's super-linear costs are visible, small enough that CI can
#: re-measure the retained time-sliced loop in a couple of seconds.
REFERENCE_REQUESTS = 10_000
REFERENCE_SHARDS = 16

#: The pre-optimization hot path, measured once at the seed commit
#: (660a6e3) on the calibration stream: 16-shard multi-turn chat with the
#: shared prefix cache and cache-aware routing, 10,000 requests at a 0.8
#: load factor, seed 0.  That code scanned every resident KV block per
#: admission check and re-sorted the eviction candidates per eviction, so
#: its per-request cost grew with the stream (757.8 requests/s at 5,000
#: requests, 295.9 at 10,000 — and minutes-long runs by 25,000).  The
#: simulated timeline is bit-for-bit identical before and after the
#: overhaul (verified: identical makespans on the same seeded streams),
#: so events/sec ratios compare code paths only.  ``anchor_events_per_sec``
#: is the retained time-sliced loop measured on the *same machine* as the
#: pre-PR number; re-measuring it fresh gives a machine-speed scale that
#: transfers the baseline to other hardware.
PRE_PR_BASELINE: dict[str, float] = {
    "events_per_sec": 297.3,
    "anchor_events_per_sec": 4604.0,
}

#: Events/sec at the largest stream length must stay within this factor of
#: the smallest length's (per shard count): flat-memory streaming means
#: per-event cost must not grow with stream length.
SCALING_TOLERANCE = 0.5

#: Cache-aware routing over the shared prefix cache must stay within 2x of
#: plain least-loaded routing on the same stream (events/sec ratio >= 0.5):
#: prefix hashing, shard index probes and shared-store registration are
#: allowed to cost real work per arrival, but not to dominate the loop.
CACHE_RATIO_FLOOR = 0.5


def _make_backend(model_name: str = "mixtral-8x7b", hardware_name: str = "1xT4"):
    return MoELightningSystem(get_model(model_name), get_hardware(hardware_name))


def _rate_per_shard(backend, workload, load_factor: float) -> float:
    """Offered per-shard arrival rate: ``load_factor`` x offline capacity."""
    policy = backend.select_policy(workload)
    return load_factor * offline_capacity(backend, workload, policy)


def _num_events(result: ShardedServingResult, num_requests: int) -> int:
    """Arrivals plus engine steps: the loop's dispatched work units."""
    return num_requests + sum(stats.num_steps for stats in result.shard_stats)


def measure_point(
    backend,
    num_requests: int,
    num_shards: int,
    load_factor: float = DEFAULT_LOAD_FACTOR,
    router: str = "least-loaded",
    prefix_cache: bool = False,
    generation_len: int = 8,
    seed: int = 0,
    mode: str = "streaming",
    trace_memory: bool = False,
) -> dict[str, object]:
    """Serve one chat stream and report its wall-clock event rate.

    ``mode`` selects the code path under measurement: ``"streaming"`` (the
    hot path: lazy arrivals, sketch reports, incremental routing),
    ``"exact"`` (event loop with stored samples and polling routing) or
    ``"time-sliced"`` (the retained pre-optimization reference loop).
    The offered arrival rate is ``load_factor`` x the shards' aggregate
    offline capacity for this workload, keeping queues bounded.
    ``trace_memory`` adds a ``tracemalloc`` peak — it roughly doubles the
    wall time, so memory rows are measured separately from speed rows.
    """
    require_positive_int("num_requests", num_requests)
    require_positive_int("num_shards", num_shards)
    require_positive("load_factor", load_factor)
    if mode not in ("streaming", "exact", "time-sliced"):
        raise ConfigurationError(f"unknown simperf mode {mode!r}")
    workload = chat(generation_len=generation_len, num_requests=num_requests)
    rate_per_shard = _rate_per_shard(backend, workload, load_factor)
    streaming = mode == "streaming"
    system = ShardedServingSystem(
        backend,
        workload,
        num_shards=num_shards,
        router=router,
        prefix_cache=prefix_cache,
        store_samples=not streaming,
        incremental_routing=streaming,
    )
    process = PoissonProcess(rate_per_shard * num_shards)
    peak_mem_mb = None
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    if mode == "time-sliced":
        result = system.run_time_sliced(process, count=num_requests, seed=seed)
    else:
        result = system.run(process, count=num_requests, seed=seed)
    wall_time_s = time.perf_counter() - start
    if trace_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak_mem_mb = peak / 1e6
    num_events = _num_events(result, num_requests)
    return {
        "mode": mode,
        "router": router,
        "prefix_cache": prefix_cache,
        "num_requests": num_requests,
        "num_shards": num_shards,
        "load_factor": load_factor,
        "rate_rps": rate_per_shard * num_shards,
        "wall_time_s": wall_time_s,
        "makespan_s": result.makespan,
        "num_events": num_events,
        "events_per_sec": num_events / wall_time_s if wall_time_s > 0 else 0.0,
        "requests_per_sec": (
            num_requests / wall_time_s if wall_time_s > 0 else 0.0
        ),
        "completed": result.report.num_completed,
        "rejected": result.report.num_rejected,
        "peak_mem_mb": peak_mem_mb,
    }


def measure_reference(
    backend,
    num_requests: int = REFERENCE_REQUESTS,
    num_shards: int = REFERENCE_SHARDS,
    load_factor: float = DEFAULT_LOAD_FACTOR,
    seed: int = 0,
    repeats: int = 3,
) -> list[dict[str, object]]:
    """Time the pre-optimization loop against the streaming hot path.

    Both rows serve the same calibration stream in the flagship
    configuration (cache-aware routing over a shared prefix cache), so
    their events/sec ratio contrasts code paths — polling routing, eager
    arrivals and stored samples versus incremental routing, lazy arrivals
    and sketch reports — on identical simulated timelines.

    Each mode is timed ``repeats`` times and the fastest run kept
    (best-of-N; the runs are deterministic, so rows differ only in their
    timing fields).  Wall-clock ratios between two single-shot runs swing
    by tens of percent on shared CI machines — the gates downstream need
    the noise floor, not one sample of it.
    """
    common = dict(
        num_requests=num_requests,
        num_shards=num_shards,
        load_factor=load_factor,
        router="cache-aware",
        prefix_cache=True,
        seed=seed,
    )
    rows = []
    for mode in ("time-sliced", "streaming"):
        trials = [
            measure_point(backend, mode=mode, **common)
            for _ in range(max(1, repeats))
        ]
        rows.append(min(trials, key=lambda row: row["wall_time_s"]))
    return rows


def measure_cache_ratio(
    backend,
    num_requests: int = REFERENCE_REQUESTS,
    num_shards: int = REFERENCE_SHARDS,
    load_factor: float = DEFAULT_LOAD_FACTOR,
    seed: int = 0,
    repeats: int = 5,
) -> tuple[float, list[dict[str, object]]]:
    """Cache-aware vs. least-loaded events/sec on the calibration stream.

    Runs ``repeats`` paired trials — one cache-aware (shared prefix cache)
    and one least-loaded run back to back — and returns the *median* paired
    ratio plus the median trial's two rows.  Pairing within a trial and
    taking the median ratio cancels machine-speed drift that best-of-N on
    each side cannot: the sides' fastest runs rarely coincide, so one
    lucky run on either side skews a best-of ratio in that side's favor.

    The calibration size is deliberate: it is the largest stream whose
    per-shard working set still fits the shards' block pools.  On longer
    streams the *simulated* prefix cache itself thrashes — eviction churn,
    falling hit rates, longer prefills — which is modeled physics the
    simulator must faithfully spend cycles on, not hot-path overhead the
    ratio is meant to police.
    """
    common = dict(
        num_requests=num_requests,
        num_shards=num_shards,
        load_factor=load_factor,
        seed=seed,
    )
    trials = []
    for _ in range(max(1, repeats)):
        cached = measure_point(
            backend, router="cache-aware", prefix_cache=True, **common
        )
        plain = measure_point(
            backend, router="least-loaded", prefix_cache=False, **common
        )
        ratio = float(cached["events_per_sec"]) / float(plain["events_per_sec"])
        trials.append((ratio, cached, plain))
    trials.sort(key=lambda trial: trial[0])
    ratio, cached, plain = trials[len(trials) // 2]
    return ratio, [cached, plain]


def run_simperf_sweep(
    stream_lengths: Sequence[int] = DEFAULT_STREAM_LENGTHS,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    load_factor: float = DEFAULT_LOAD_FACTOR,
    router: str = "least-loaded",
    seed: int = 0,
    with_reference: bool = True,
    with_prefix_cache: bool = False,
    trace_memory_at: int | None = None,
    backend=None,
) -> list[dict[str, object]]:
    """The full grid: streaming points, plus reference and memory rows.

    ``with_reference`` appends the matched calibration pair from
    :func:`measure_reference` (time-sliced and streaming on the same
    cache-aware stream).  ``with_prefix_cache`` sweeps the grid a second
    time with cache-aware routing over the shared prefix cache, then
    appends the paired calibration rows of :func:`measure_cache_ratio`
    (:func:`cache_aware_ratio` reads the ratio back off those rows).
    ``trace_memory_at`` additionally measures one streaming point of that
    stream length (at the largest shard count) under ``tracemalloc`` and
    emits it as an extra row with ``peak_mem_mb`` set — for each row
    family being swept.
    """
    if not stream_lengths or not shard_counts:
        raise ConfigurationError("sweep axes must not be empty")
    if backend is None:
        backend = _make_backend()
    families = [(router, False)]
    if with_prefix_cache:
        families.append(("cache-aware", True))
    rows: list[dict[str, object]] = []
    for family_router, family_cache in families:
        for num_shards in sorted(shard_counts):
            for num_requests in sorted(stream_lengths):
                rows.append(
                    measure_point(
                        backend,
                        num_requests=num_requests,
                        num_shards=num_shards,
                        load_factor=load_factor,
                        router=family_router,
                        prefix_cache=family_cache,
                        seed=seed,
                    )
                )
    if with_reference:
        rows.extend(
            measure_reference(backend, load_factor=load_factor, seed=seed)
        )
    if with_prefix_cache:
        _, ratio_rows = measure_cache_ratio(
            backend, load_factor=load_factor, seed=seed
        )
        rows.extend(ratio_rows)
    if trace_memory_at is not None:
        for family_router, family_cache in families:
            rows.append(
                measure_point(
                    backend,
                    num_requests=trace_memory_at,
                    num_shards=max(shard_counts),
                    load_factor=load_factor,
                    router=family_router,
                    prefix_cache=family_cache,
                    seed=seed,
                    trace_memory=True,
                )
            )
    return rows


def cache_aware_ratio(rows: Sequence[dict[str, object]]) -> float | None:
    """Cache-aware over least-loaded events/sec at the calibration point.

    Reads the paired rows :func:`measure_cache_ratio` appended — the last
    streaming row of each configuration at the calibration size.  Later
    rows deliberately win: the sweep may also carry a best-of reference
    streaming row at the same cache-aware configuration, but the ratio
    must divide the *paired* trial, measured back to back so machine
    speed cancels.
    """
    cached = plain = None
    for row in rows:
        if (
            row["mode"] != "streaming"
            or row.get("peak_mem_mb") is not None
            or int(row["num_requests"]) != REFERENCE_REQUESTS
            or int(row["num_shards"]) != REFERENCE_SHARDS
        ):
            continue
        if row["router"] == "cache-aware" and row.get("prefix_cache"):
            cached = row
        elif row["router"] == "least-loaded" and not row.get("prefix_cache"):
            plain = row
    if cached is None or plain is None:
        return None
    return float(cached["events_per_sec"]) / float(plain["events_per_sec"])


def speedup_vs_reference(rows: Sequence[dict[str, object]]) -> float | None:
    """Streaming events/sec over the time-sliced reference's.

    Compared at the reference's own configuration (shard count, router,
    prefix cache) using the closest streaming stream length, so the ratio
    contrasts code paths rather than configurations.
    """
    references = [row for row in rows if row["mode"] == "time-sliced"]
    if not references:
        return None
    reference = references[0]
    candidates = [
        row
        for row in rows
        if row["mode"] == "streaming"
        and row["num_shards"] == reference["num_shards"]
        and row["router"] == reference["router"]
        and row.get("prefix_cache") == reference.get("prefix_cache")
    ]
    if not candidates:
        return None
    closest = min(
        candidates,
        key=lambda row: abs(
            int(row["num_requests"]) - int(reference["num_requests"])
        ),
    )
    return float(closest["events_per_sec"]) / float(reference["events_per_sec"])


def speedup_vs_pre_pr(rows: Sequence[dict[str, object]]) -> float | None:
    """Streaming events/sec over the pre-optimization baseline's.

    The baseline (:data:`PRE_PR_BASELINE`) was measured once at the seed
    commit on the calibration stream and cannot be re-run in CI, so raw
    machine speed is normalised out through the retained time-sliced
    loop: the fresh time-sliced measurement over its recorded
    same-machine anchor scales the baseline to the current hardware.
    """
    references = [row for row in rows if row["mode"] == "time-sliced"]
    if not references:
        return None
    reference = references[0]
    candidates = [
        row
        for row in rows
        if row["mode"] == "streaming"
        and row["num_shards"] == reference["num_shards"]
        and row["router"] == reference["router"]
        and row.get("prefix_cache") == reference.get("prefix_cache")
        and row["num_requests"] == reference["num_requests"]
    ]
    if not candidates:
        return None
    machine_scale = (
        float(reference["events_per_sec"])
        / PRE_PR_BASELINE["anchor_events_per_sec"]
    )
    scaled_pre_pr = PRE_PR_BASELINE["events_per_sec"] * machine_scale
    return float(candidates[0]["events_per_sec"]) / scaled_pre_pr


def check_near_linear_scaling(
    rows: Sequence[dict[str, object]], tolerance: float = SCALING_TOLERANCE
) -> None:
    """Assert per-event cost stays flat as streams grow (per shard count).

    A per-event cost that grows with stream length means an O(n) scan or
    accumulation survived somewhere in the hot path; the flat-memory
    design promises there is none.
    """
    by_shards: dict[tuple, list[dict[str, object]]] = {}
    for row in rows:
        if row["mode"] != "streaming" or row.get("peak_mem_mb") is not None:
            continue
        key = (
            int(row["num_shards"]),
            row["router"],
            bool(row.get("prefix_cache")),
        )
        by_shards.setdefault(key, []).append(row)
    for (num_shards, _, _), points in by_shards.items():
        if len(points) < 2:
            continue
        points = sorted(points, key=lambda row: int(row["num_requests"]))
        smallest, largest = points[0], points[-1]
        floor = tolerance * float(smallest["events_per_sec"])
        if float(largest["events_per_sec"]) < floor:
            raise ConfigurationError(
                f"simperf scaling regression at {num_shards} shards: "
                f"{largest['num_requests']} requests ran at "
                f"{largest['events_per_sec']:.0f} events/s vs "
                f"{smallest['events_per_sec']:.0f} at "
                f"{smallest['num_requests']} (floor {floor:.0f})"
            )


#: CI regression floor: fresh events/sec must reach this fraction of the
#: baseline's after normalising for machine speed.
GATE_FLOOR = 0.7


def _reference_events_per_sec(document: dict) -> float | None:
    references = [
        row
        for row in document.get("rows", [])
        if row.get("mode") == "time-sliced"
    ]
    if not references:
        return None
    return float(references[0]["events_per_sec"])


def gate_against_baseline(
    fresh: dict, baseline: dict, floor: float = GATE_FLOOR
) -> dict[str, float]:
    """Fail if the fresh sweep regressed below ``floor`` x the baseline.

    Both documents are ``BENCH_simperf.json`` artifacts over the same
    grid.  Raw events/sec is machine-dependent, so the comparison is
    normalised by each run's time-sliced reference measurement: the
    reference exercises the same Python interpreter and simulator core on
    the same stream, making the ratio of references a machine-speed
    factor that cancels hardware differences between the CI runner and
    the machine that produced the committed baseline.
    """
    fresh_eps = float(fresh["summary"]["events_per_sec"])
    baseline_eps = float(baseline["summary"]["events_per_sec"])
    scale = 1.0
    fresh_ref = _reference_events_per_sec(fresh)
    baseline_ref = _reference_events_per_sec(baseline)
    if fresh_ref and baseline_ref:
        scale = fresh_ref / baseline_ref
    floor_eps = floor * baseline_eps * scale
    verdict = {
        "fresh_events_per_sec": fresh_eps,
        "baseline_events_per_sec": baseline_eps,
        "machine_scale": scale,
        "floor_events_per_sec": floor_eps,
    }
    if fresh_eps < floor_eps:
        raise ConfigurationError(
            f"simperf regression: measured {fresh_eps:.0f} events/s vs "
            f"required {floor_eps:.0f} events/s — ratio "
            f"{fresh_eps / floor_eps:.2f}, need >= 1.00 ({floor:.0%} of "
            f"baseline {baseline_eps:.0f} x machine scale {scale:.2f})"
        )
    fresh_cache = fresh["summary"].get("prefix_cache_events_per_sec")
    baseline_cache = baseline["summary"].get("prefix_cache_events_per_sec")
    if fresh_cache is not None and baseline_cache is not None:
        # The prefix-cache family gates separately: its hot path (columnar
        # hash probes, shared-store registration) can regress while the
        # plain-routing headline stays flat.  Same machine-speed
        # normalisation — the time-sliced reference covers both families.
        cache_floor_eps = floor * float(baseline_cache) * scale
        verdict["prefix_cache_events_per_sec"] = float(fresh_cache)
        verdict["prefix_cache_floor_events_per_sec"] = cache_floor_eps
        if float(fresh_cache) < cache_floor_eps:
            raise ConfigurationError(
                f"simperf prefix-cache regression: measured "
                f"{float(fresh_cache):.0f} events/s vs required "
                f"{cache_floor_eps:.0f} events/s — ratio "
                f"{float(fresh_cache) / cache_floor_eps:.2f}, need >= 1.00 "
                f"({floor:.0%} of baseline {float(baseline_cache):.0f} x "
                f"machine scale {scale:.2f})"
            )
    return verdict


#: Columns for the printed sweep table.
SIMPERF_COLUMNS: tuple[str, ...] = (
    "mode",
    "router",
    "prefix_cache",
    "num_shards",
    "num_requests",
    "wall_time_s",
    "num_events",
    "events_per_sec",
    "requests_per_sec",
    "peak_mem_mb",
)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``repro-simperf`` — measure and optionally persist the sweep."""
    parser = argparse.ArgumentParser(
        description="Simulator raw-speed sweep (events/sec)."
    )
    parser.add_argument(
        "--lengths",
        type=int,
        nargs="+",
        default=list(DEFAULT_STREAM_LENGTHS),
        help="stream lengths (requests) to sweep",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=list(DEFAULT_SHARD_COUNTS),
        help="shard counts to sweep",
    )
    parser.add_argument(
        "--load-factor",
        type=float,
        default=DEFAULT_LOAD_FACTOR,
        help="offered load as a fraction of aggregate offline capacity",
    )
    parser.add_argument(
        "--router", default="least-loaded", help="router policy to measure"
    )
    parser.add_argument(
        "--prefix-cache",
        choices=("on", "off"),
        default="off",
        help=(
            "also sweep cache-aware routing over the shared prefix cache "
            "and record its calibration ratio vs least-loaded"
        ),
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the time-sliced reference measurement",
    )
    parser.add_argument(
        "--memory-at",
        type=int,
        default=None,
        metavar="N",
        help="also trace peak memory on an N-request streaming run",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write BENCH_simperf.json to PATH",
    )
    parser.add_argument(
        "--gate",
        nargs=2,
        default=None,
        metavar=("FRESH", "BASELINE"),
        help=(
            "skip the sweep; fail if FRESH's events/sec regressed below "
            f"{GATE_FLOOR:.0%} of BASELINE's (machine-normalised)"
        ),
    )
    args = parser.parse_args(argv)

    if args.gate is not None:
        import json

        fresh_path, baseline_path = args.gate
        with open(fresh_path) as handle:
            fresh = json.load(handle)
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        verdict = gate_against_baseline(fresh, baseline)
        print(
            f"simperf gate OK: {verdict['fresh_events_per_sec']:.0f} events/s "
            f">= floor {verdict['floor_events_per_sec']:.0f} "
            f"(machine scale {verdict['machine_scale']:.2f})"
        )
        return 0

    rows = run_simperf_sweep(
        stream_lengths=args.lengths,
        shard_counts=args.shards,
        load_factor=args.load_factor,
        router=args.router,
        seed=args.seed,
        with_reference=not args.no_reference,
        with_prefix_cache=args.prefix_cache == "on",
        trace_memory_at=args.memory_at,
    )
    header = " ".join(f"{column:>15}" for column in SIMPERF_COLUMNS)
    print(header)
    for row in rows:
        cells = []
        for column in SIMPERF_COLUMNS:
            value = row.get(column)
            if isinstance(value, float):
                cells.append(f"{value:>15.1f}")
            elif value is None:
                cells.append(f"{'-':>15}")
            else:
                cells.append(f"{value!s:>15}")
        print(" ".join(cells))
    speedup = speedup_vs_reference(rows)
    if speedup is not None:
        print(f"streaming vs time-sliced reference: {speedup:.1f}x events/sec")
    pre_pr = speedup_vs_pre_pr(rows)
    if pre_pr is not None:
        print(f"streaming vs pre-PR hot path: {pre_pr:.1f}x events/sec")
    cache_ratio = cache_aware_ratio(rows)
    if cache_ratio is not None:
        print(
            f"cache-aware vs least-loaded: {cache_ratio:.2f}x events/sec "
            f"(floor {CACHE_RATIO_FLOOR:.2f})"
        )
    check_near_linear_scaling(rows)
    if args.output:
        write_bench_simperf_json(
            args.output,
            rows,
            meta={
                "router": args.router,
                "load_factor": args.load_factor,
                "seed": args.seed,
            },
            speedup_vs_time_sliced=speedup,
            speedup_vs_pre_pr=pre_pr,
            cache_aware_vs_least_loaded=cache_ratio,
        )
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
