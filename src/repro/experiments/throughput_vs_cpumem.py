"""Throughput vs. CPU memory (paper Fig. 1).

Sweeps the host DRAM capacity with the GPU fixed and, for every capacity,
lets each system pick its best policy and reports the resulting generation
throughput.  The paper's claims to reproduce:

* every system's throughput rises with CPU memory (larger batches amortise
  the weight traffic) until it saturates at a bound set by GPU memory /
  interconnect;
* MoE-Lightning reaches that saturation throughput with 2-3x less CPU
  memory than FlexGen-style systems, because CGOPipe wastes far less I/O;
* FlexGen with our policy sits between the two (policy alone helps, but the
  schedule still leaves I/O on the table).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.performance_model import EfficiencyModel
from repro.experiments.settings import get_setting
from repro.systems import FlexGenSystem, MoELightningSystem
from repro.utils.errors import ReproError
from repro.utils.units import GB


def run_cpu_memory_sweep(
    setting_name: str = "S1",
    cpu_memory_gb: Sequence[float] = (112, 128, 160, 192, 256, 320, 384),
    generation_len: int = 128,
    efficiency: EfficiencyModel | None = None,
    max_sim_layers: int | None = 6,
    simulate: bool = True,
) -> list[dict[str, object]]:
    """Reproduce Fig. 1's throughput-vs-CPU-memory curves."""
    setting = get_setting(setting_name)
    model = setting.model
    rows: list[dict[str, object]] = []
    for memory_gb in cpu_memory_gb:
        hardware = setting.hardware.with_cpu_memory(memory_gb * GB)
        kwargs = {"efficiency": efficiency, "max_sim_layers": max_sim_layers}
        systems = [
            ("flexgen w/ their policy", FlexGenSystem(model, hardware, **kwargs)),
            (
                "flexgen w/ our policy",
                FlexGenSystem(model, hardware, policy_mode="hrm", **kwargs),
            ),
            (
                "moe-lightning",
                MoELightningSystem(model, hardware, padded=True, **kwargs),
            ),
        ]
        workload = setting.workload("mtbench", generation_len=generation_len)
        for label, system in systems:
            try:
                result = system.run(workload, simulate=simulate)
                throughput = result.generation_throughput
                batch_size = result.policy.batch_size
                error = None
            except ReproError as exc:
                throughput, batch_size, error = None, None, str(exc)
            rows.append(
                {
                    "cpu_memory_gb": memory_gb,
                    "system": label,
                    "throughput": throughput,
                    "batch_size": batch_size,
                    "error": error,
                }
            )
    return rows


def cpu_memory_to_match(
    rows: list[dict[str, object]],
    reference_system: str = "flexgen w/ their policy",
    target_system: str = "moe-lightning",
) -> dict[str, object]:
    """CPU memory the target system needs to match the reference's best.

    This is the paper's headline Fig. 1 reading: MoE-Lightning reaches the
    throughput FlexGen only achieves with its largest CPU memory using
    "2-3x less CPU memory".  Returns the reference peak, the CPU memory at
    which the reference achieves it, the smallest CPU memory at which the
    target meets-or-exceeds it, and the resulting saving ratio.
    """
    reference_rows = [
        row for row in rows if row["system"] == reference_system and row.get("throughput")
    ]
    target_rows = sorted(
        (row for row in rows if row["system"] == target_system and row.get("throughput")),
        key=lambda row: row["cpu_memory_gb"],
    )
    if not reference_rows or not target_rows:
        return {}
    reference_best = max(reference_rows, key=lambda row: row["throughput"])
    matching = next(
        (
            row
            for row in target_rows
            if row["throughput"] >= reference_best["throughput"]
        ),
        None,
    )
    result = {
        "reference_system": reference_system,
        "target_system": target_system,
        "reference_throughput": reference_best["throughput"],
        "reference_cpu_memory_gb": reference_best["cpu_memory_gb"],
        "target_cpu_memory_gb": None if matching is None else matching["cpu_memory_gb"],
        "cpu_memory_saving": None,
    }
    if matching is not None and matching["cpu_memory_gb"]:
        result["cpu_memory_saving"] = (
            reference_best["cpu_memory_gb"] / matching["cpu_memory_gb"]
        )
    return result


def memory_to_reach(
    rows: list[dict[str, object]], fraction_of_peak: float = 0.95
) -> list[dict[str, object]]:
    """CPU memory each system needs to reach ``fraction_of_peak`` of its peak.

    This quantifies the paper's "2-3x less CPU memory" headline: MoE-Lightning
    should need substantially less DRAM than the FlexGen variants to reach
    (nearly) the same saturated throughput.
    """
    by_system: dict[str, list[dict[str, object]]] = {}
    for row in rows:
        if row.get("throughput") is None:
            continue
        by_system.setdefault(str(row["system"]), []).append(row)
    summary = []
    for system, group in by_system.items():
        group = sorted(group, key=lambda r: r["cpu_memory_gb"])
        peak = max(r["throughput"] for r in group)
        needed = next(
            (
                r["cpu_memory_gb"]
                for r in group
                if r["throughput"] >= fraction_of_peak * peak
            ),
            group[-1]["cpu_memory_gb"],
        )
        summary.append(
            {
                "system": system,
                "peak_throughput": peak,
                "cpu_memory_gb_to_reach_peak": needed,
            }
        )
    return summary
