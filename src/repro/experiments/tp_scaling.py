"""Tensor-parallel scaling experiments (paper Fig. 8 and the S6/S7 columns
of Fig. 7), on the cluster layer.

Fig. 8 runs DBRX with all MoE-Lightning optimisations enabled (variable
length batching, CGOPipe, HRM) on 2x and 4x T4 nodes across MTBench
generation lengths; the expected shape is a 2.1-2.8x throughput gain from
doubling the GPU count for DBRX, and super-linear (>2x) scaling for the
padded Mixtral 8x22B comparison of Fig. 7.

Each setting's aggregate node is split into an explicit
:class:`~repro.cluster.spec.ClusterSpec` (its T4 devices over a PCIe
peer-to-peer link), so — unlike the original aggregate-capacity shortcut —
the run pays per-shard memory fit and all-reduce traffic on the HRM
roofline, and the policy search sees both.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster import ClusterSpec, GPULinkSpec
from repro.core.performance_model import EfficiencyModel
from repro.experiments.settings import get_setting
from repro.systems import MoELightningSystem
from repro.utils.errors import ReproError


def run_tp_scaling(
    settings: Sequence[str] = ("S8", "S9"),
    generation_lengths: Sequence[int] = (32, 64, 128, 256),
    padded: bool = False,
    efficiency: EfficiencyModel | None = None,
    max_sim_layers: int | None = 6,
    simulate: bool = True,
    link: GPULinkSpec | None = None,
) -> list[dict[str, object]]:
    """Reproduce Fig. 8: MoE-Lightning throughput on 2xT4 vs. 4xT4.

    ``link`` overrides the inter-GPU link (PCIe peer-to-peer by default)
    for what-if sweeps, e.g. how much an NVLink-class link would buy.
    """
    rows: list[dict[str, object]] = []
    for setting_name in settings:
        setting = get_setting(setting_name)
        cluster = ClusterSpec.from_hardware(setting.hardware, link=link)
        system = MoELightningSystem(
            setting.model,
            cluster=cluster,
            padded=padded,
            efficiency=efficiency,
            max_sim_layers=max_sim_layers,
        )
        for generation_len in generation_lengths:
            workload = setting.workload("mtbench", generation_len=generation_len)
            try:
                result = system.run(workload, simulate=simulate)
                rows.append(
                    {
                        "setting": setting_name,
                        "hardware": setting.hardware_name,
                        "model": setting.model_name,
                        "num_shards": result.num_shards,
                        "link": cluster.link.name,
                        "generation_len": generation_len,
                        "throughput": result.generation_throughput,
                        "batch_size": result.policy.batch_size,
                        "micro_batch_size": result.policy.micro_batch_size,
                        "weights_gpu_ratio": result.policy.weights_gpu_ratio,
                        "error": None,
                    }
                )
            except ReproError as exc:
                rows.append(
                    {
                        "setting": setting_name,
                        "hardware": setting.hardware_name,
                        "model": setting.model_name,
                        "num_shards": cluster.num_devices,
                        "link": cluster.link.name,
                        "generation_len": generation_len,
                        "throughput": None,
                        "error": str(exc),
                    }
                )
    return rows


def scaling_factors(
    rows: list[dict[str, object]],
    small_setting: str = "S8",
    large_setting: str = "S9",
) -> list[dict[str, object]]:
    """Per generation length: throughput ratio of the larger node to the smaller."""
    small = {
        row["generation_len"]: row
        for row in rows
        if row["setting"] == small_setting and row.get("throughput")
    }
    large = {
        row["generation_len"]: row
        for row in rows
        if row["setting"] == large_setting and row.get("throughput")
    }
    factors = []
    for generation_len in sorted(set(small) & set(large)):
        ratio = large[generation_len]["throughput"] / small[generation_len]["throughput"]
        factors.append(
            {
                "generation_len": generation_len,
                "small_throughput": small[generation_len]["throughput"],
                "large_throughput": large[generation_len]["throughput"],
                "scaling_factor": ratio,
            }
        )
    return factors
