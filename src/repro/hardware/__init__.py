"""Hardware specifications: GPUs, CPU hosts and CPU-GPU interconnects.

This package encodes the "Hardware Configurations, H" block of Table 1 in
the paper — GPU/CPU memory capacities, GPU/CPU/interconnect bandwidths and
GPU/CPU peak FLOPS — together with a registry of the concrete devices used
in the evaluation (T4, L4, A100-80G, the GCP Xeon hosts) and tensor-parallel
group composition (§4.3).
"""

from repro.hardware.spec import CPUSpec, GPUSpec, HardwareSpec, InterconnectSpec
from repro.hardware.registry import (
    HARDWARE_REGISTRY,
    a100_80g,
    get_hardware,
    get_gpu,
    l4,
    list_hardware,
    make_hardware,
    register_hardware,
    t4,
    xeon_24_core,
    xeon_32_core,
)

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "HardwareSpec",
    "InterconnectSpec",
    "HARDWARE_REGISTRY",
    "a100_80g",
    "get_hardware",
    "get_gpu",
    "l4",
    "list_hardware",
    "make_hardware",
    "register_hardware",
    "t4",
    "xeon_24_core",
    "xeon_32_core",
]
