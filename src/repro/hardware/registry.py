"""Registry of the concrete devices used in the paper's evaluation.

GPU numbers come from the paper where given (Fig. 3 for the L4 instance) and
from public spec sheets otherwise.  The CPU hosts match Table 2: a 24-core
Intel Xeon @ 2.30/2.20 GHz with 192 GB for the single-GPU settings, and a
32-core Xeon with 416 GB for the multi-T4 settings.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.hardware.spec import CPUSpec, GPUSpec, HardwareSpec, InterconnectSpec
from repro.utils.errors import ConfigurationError
from repro.utils.units import GB, TERA

GPU_REGISTRY: Dict[str, Callable[[], GPUSpec]] = {}
HARDWARE_REGISTRY: Dict[str, Callable[[], HardwareSpec]] = {}


# ----------------------------------------------------------------------
# GPUs
# ----------------------------------------------------------------------
def t4() -> GPUSpec:
    """NVIDIA T4: 16 GB, ~300 GB/s HBM, ~65 TFLOPS fp16 tensor."""
    return GPUSpec(
        name="T4",
        memory_bytes=16 * GB,
        memory_bandwidth=300 * GB,
        peak_flops=65 * TERA,
    )


def l4() -> GPUSpec:
    """NVIDIA L4 as specified in the paper's Fig. 3: 24 GB, 300 GB/s, 242 TFLOPS."""
    return GPUSpec(
        name="L4",
        memory_bytes=24 * GB,
        memory_bandwidth=300 * GB,
        peak_flops=242 * TERA,
    )


def a100_80g() -> GPUSpec:
    """NVIDIA A100-80GB: 80 GB, ~2 TB/s HBM, ~312 TFLOPS bf16."""
    return GPUSpec(
        name="A100-80G",
        memory_bytes=80 * GB,
        memory_bandwidth=2000 * GB,
        peak_flops=312 * TERA,
    )


# ----------------------------------------------------------------------
# CPU hosts
# ----------------------------------------------------------------------
def xeon_24_core(memory_gb: float = 192) -> CPUSpec:
    """24-core Intel Xeon host used in settings S1/S2 (192 GB DRAM).

    Peak FLOPS follows the paper's Fig. 3 (1.3 TFLOPS) and DRAM bandwidth
    100 GB/s.
    """
    return CPUSpec(
        name="Xeon-24c",
        memory_bytes=memory_gb * GB,
        memory_bandwidth=100 * GB,
        peak_flops=1.3 * TERA,
        cores=24,
    )


def xeon_32_core(memory_gb: float = 416) -> CPUSpec:
    """32-core Intel Xeon host used in settings S6-S9 (416 GB DRAM)."""
    return CPUSpec(
        name="Xeon-32c",
        memory_bytes=memory_gb * GB,
        memory_bandwidth=130 * GB,
        peak_flops=1.7 * TERA,
        cores=32,
    )


def pcie_gen3_x16() -> InterconnectSpec:
    """PCIe 3.0 x16 link (T4 hosts): ~12 GB/s effective per direction."""
    return InterconnectSpec(name="PCIe3x16", bandwidth=12 * GB)


def pcie_gen4_x16() -> InterconnectSpec:
    """PCIe 4.0 x16 link (L4/A100 hosts).

    The paper's Fig. 3 reports 32 GB/s for the L4 instance; we keep that
    number so the HRM case-study plots line up.
    """
    return InterconnectSpec(name="PCIe4x16", bandwidth=32 * GB)


# ----------------------------------------------------------------------
# Registry plumbing
# ----------------------------------------------------------------------
def register_gpu(name: str, factory: Callable[[], GPUSpec]) -> None:
    """Register a GPU factory under ``name``."""
    key = name.lower()
    if key in GPU_REGISTRY:
        raise ConfigurationError(f"GPU {name!r} is already registered")
    GPU_REGISTRY[key] = factory


def get_gpu(name: str) -> GPUSpec:
    """Instantiate a registered GPU by name."""
    key = name.lower()
    if key not in GPU_REGISTRY:
        known = ", ".join(sorted(GPU_REGISTRY))
        raise ConfigurationError(f"unknown GPU {name!r}; known GPUs: {known}")
    return GPU_REGISTRY[key]()


def register_hardware(name: str, factory: Callable[[], HardwareSpec]) -> None:
    """Register a full-node hardware factory under ``name``."""
    key = name.lower()
    if key in HARDWARE_REGISTRY:
        raise ConfigurationError(f"hardware {name!r} is already registered")
    HARDWARE_REGISTRY[key] = factory


def get_hardware(name: str) -> HardwareSpec:
    """Instantiate a registered hardware node by name."""
    key = name.lower()
    if key not in HARDWARE_REGISTRY:
        known = ", ".join(sorted(HARDWARE_REGISTRY))
        raise ConfigurationError(f"unknown hardware {name!r}; known: {known}")
    return HARDWARE_REGISTRY[key]()


def list_hardware() -> list[str]:
    """Names of all registered hardware nodes."""
    return sorted(HARDWARE_REGISTRY)


def make_hardware(
    gpu: GPUSpec,
    cpu: CPUSpec,
    interconnect: InterconnectSpec,
    tp_size: int = 1,
    name: str | None = None,
) -> HardwareSpec:
    """Assemble a :class:`HardwareSpec` from its components."""
    label = name or f"{tp_size}x{gpu.name}+{cpu.name}"
    return HardwareSpec(
        name=label, gpu=gpu, cpu=cpu, interconnect=interconnect, tp_size=tp_size
    )


def _node_t4(tp_size: int, cpu: CPUSpec) -> HardwareSpec:
    return make_hardware(t4(), cpu, pcie_gen3_x16(), tp_size=tp_size)


def _node_l4() -> HardwareSpec:
    return make_hardware(l4(), xeon_24_core(), pcie_gen4_x16(), tp_size=1)


def _node_a100(tp_size: int) -> HardwareSpec:
    return make_hardware(a100_80g(), xeon_24_core(200), pcie_gen4_x16(), tp_size=tp_size)


register_gpu("t4", t4)
register_gpu("l4", l4)
register_gpu("a100-80g", a100_80g)

register_hardware("1xT4", lambda: _node_t4(1, xeon_24_core()))
register_hardware("1xL4", _node_l4)
register_hardware("2xT4", lambda: _node_t4(2, xeon_32_core()))
register_hardware("4xT4", lambda: _node_t4(4, xeon_32_core()))
register_hardware("2xA100-80G", lambda: _node_a100(2))
