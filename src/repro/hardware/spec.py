"""Hardware specification dataclasses.

:class:`HardwareSpec` bundles a GPU, a CPU host and the interconnect between
them, exposing exactly the symbols of Table 1: ``m_g``/``m_c`` (memories),
``b_g``/``b_c``/``b_cg`` (bandwidths) and ``p_g``/``p_c`` (peak FLOPS).
Tensor-parallel groups are modelled per §4.3: ``tp_size`` GPUs multiply the
aggregate GPU memory capacity and GPU memory bandwidth, while the CPU host
and the CPU-GPU interconnect stay shared within the node.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive, require_positive_int


@dataclass(frozen=True)
class GPUSpec:
    """A single GPU: memory capacity, HBM bandwidth and peak compute."""

    name: str
    memory_bytes: float
    memory_bandwidth: float  # bytes / second
    peak_flops: float  # FLOPs / second (dense fp16/bf16 tensor throughput)

    def __post_init__(self) -> None:
        require_positive("memory_bytes", self.memory_bytes)
        require_positive("memory_bandwidth", self.memory_bandwidth)
        require_positive("peak_flops", self.peak_flops)


@dataclass(frozen=True)
class CPUSpec:
    """A CPU host: DRAM capacity, DRAM bandwidth and peak compute."""

    name: str
    memory_bytes: float
    memory_bandwidth: float  # bytes / second
    peak_flops: float  # FLOPs / second
    cores: int = 24

    def __post_init__(self) -> None:
        require_positive("memory_bytes", self.memory_bytes)
        require_positive("memory_bandwidth", self.memory_bandwidth)
        require_positive("peak_flops", self.peak_flops)
        require_positive_int("cores", self.cores)


@dataclass(frozen=True)
class InterconnectSpec:
    """The CPU-GPU link (PCIe): bandwidth per direction and latency.

    ``duplex`` reflects the paper's observation that "due to independent
    data paths, data transfers in opposite directions can happen
    simultaneously" (§4.1); when True the HtoD and DtoH channels are
    independent, each with ``bandwidth`` bytes/s.
    """

    name: str
    bandwidth: float  # bytes / second, per direction
    latency: float = 10e-6  # seconds per transfer launch
    duplex: bool = True

    def __post_init__(self) -> None:
        require_positive("bandwidth", self.bandwidth)
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency}")


@dataclass(frozen=True)
class HardwareSpec:
    """A complete node: ``tp_size`` identical GPUs + one CPU host + PCIe.

    Aggregate properties follow §4.3: with tensor parallelism the policy
    search sees ``tp_size``-times more GPU memory capacity and bandwidth
    (and compute), while CPU memory, CPU bandwidth and the CPU-to-GPU link
    are shared across the node — which is precisely why the paper observes
    FlexGen's pipeline parallelism failing to scale within one node.
    """

    name: str
    gpu: GPUSpec
    cpu: CPUSpec
    interconnect: InterconnectSpec
    tp_size: int = 1

    def __post_init__(self) -> None:
        require_positive_int("tp_size", self.tp_size)

    # -- Table 1 symbols ------------------------------------------------
    @property
    def gpu_memory(self) -> float:
        """``m_g``: aggregate GPU memory in bytes across the TP group."""
        return self.gpu.memory_bytes * self.tp_size

    @property
    def cpu_memory(self) -> float:
        """``m_c``: CPU DRAM capacity in bytes."""
        return self.cpu.memory_bytes

    @property
    def gpu_bandwidth(self) -> float:
        """``b_g``: aggregate GPU HBM bandwidth in bytes/s."""
        return self.gpu.memory_bandwidth * self.tp_size

    @property
    def cpu_bandwidth(self) -> float:
        """``b_c``: CPU DRAM bandwidth in bytes/s."""
        return self.cpu.memory_bandwidth

    @property
    def cpu_gpu_bandwidth(self) -> float:
        """``b_cg``: CPU-to-GPU interconnect bandwidth in bytes/s.

        Within one node the PCIe root complex is shared, so adding GPUs does
        not add host-to-device bandwidth (paper §5.3 discussion); multi-node
        pipeline parallelism, which would, is out of scope.
        """
        return self.interconnect.bandwidth

    @property
    def gpu_flops(self) -> float:
        """``p_g``: aggregate GPU peak FLOPs/s across the TP group."""
        return self.gpu.peak_flops * self.tp_size

    @property
    def cpu_flops(self) -> float:
        """``p_c``: CPU peak FLOPs/s."""
        return self.cpu.peak_flops

    # -- Composition helpers --------------------------------------------
    def with_tensor_parallel(self, tp_size: int) -> "HardwareSpec":
        """Return a copy of this node with ``tp_size`` GPUs (§4.3)."""
        require_positive_int("tp_size", tp_size)
        suffix = f"{tp_size}x{self.gpu.name}"
        return replace(self, name=f"{suffix}+{self.cpu.name}", tp_size=tp_size)

    def with_cpu_memory(self, memory_bytes: float) -> "HardwareSpec":
        """Return a copy with a different CPU DRAM capacity (Fig. 1 sweeps)."""
        require_positive("memory_bytes", memory_bytes)
        cpu = replace(self.cpu, memory_bytes=memory_bytes)
        return replace(self, cpu=cpu)

    def with_interconnect_bandwidth(self, bandwidth: float) -> "HardwareSpec":
        """Return a copy with a different CPU-GPU bandwidth (Fig. 10 sweeps)."""
        require_positive("bandwidth", bandwidth)
        link = replace(self.interconnect, bandwidth=bandwidth)
        return replace(self, interconnect=link)

    def with_cpu_scaling(self, ratio: float) -> "HardwareSpec":
        """Scale CPU bandwidth/FLOPs/memory by ``ratio`` (Fig. 10 sweeps)."""
        require_positive("ratio", ratio)
        cpu = replace(
            self.cpu,
            memory_bandwidth=self.cpu.memory_bandwidth * ratio,
            peak_flops=self.cpu.peak_flops * ratio,
            memory_bytes=self.cpu.memory_bytes * ratio,
        )
        return replace(self, cpu=cpu)

    def describe(self) -> str:
        """Human-readable summary used by reports."""
        from repro.utils.units import format_bytes

        return (
            f"{self.name}: {self.tp_size}x {self.gpu.name} "
            f"({format_bytes(self.gpu_memory)} HBM, "
            f"{self.gpu_flops / 1e12:.0f} TFLOPS), "
            f"CPU {self.cpu.name} ({format_bytes(self.cpu_memory)} DRAM), "
            f"PCIe {self.cpu_gpu_bandwidth / 1e9:.0f} GB/s"
        )
