"""Model configurations, operator FLOP/byte accounting and memory footprints.

This package encodes the "Model Configurations, M" block of Table 1 in the
paper: number of layers, hidden sizes, attention head layout (GQA), expert
count and routing top-k, plus the derived per-operator FLOP and byte counts
used by the Hierarchical Roofline Model and the performance model.
"""

from repro.models.config import Attention, DataType, MLPKind, ModelConfig
from repro.models.flops import (
    OperatorCost,
    attention_decode_cost,
    attention_prefill_cost,
    ffn_cost,
    layer_decode_cost,
    o_proj_cost,
    qkv_proj_cost,
)
from repro.models.memory import (
    MemoryFootprint,
    activation_bytes,
    kv_cache_bytes_per_token,
    layer_weight_bytes,
    model_weight_bytes,
)
from repro.models.registry import (
    MODEL_REGISTRY,
    dbrx,
    get_model,
    list_models,
    llama2_70b,
    mixtral_8x22b,
    mixtral_8x7b,
    register_model,
    tiny_moe,
)

__all__ = [
    "Attention",
    "DataType",
    "MLPKind",
    "ModelConfig",
    "OperatorCost",
    "MemoryFootprint",
    "attention_decode_cost",
    "attention_prefill_cost",
    "ffn_cost",
    "layer_decode_cost",
    "o_proj_cost",
    "qkv_proj_cost",
    "activation_bytes",
    "kv_cache_bytes_per_token",
    "layer_weight_bytes",
    "model_weight_bytes",
    "MODEL_REGISTRY",
    "get_model",
    "list_models",
    "register_model",
    "mixtral_8x7b",
    "mixtral_8x22b",
    "dbrx",
    "llama2_70b",
    "tiny_moe",
]
