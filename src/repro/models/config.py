"""Model architecture configuration.

:class:`ModelConfig` captures exactly the fields the paper's performance
model needs (Table 1, "Model Configurations, M"): layer count ``l``, model
and intermediate hidden dimensions ``h1``/``h2``, query and key/value head
counts ``n_q``/``n_kv``, expert count ``n_e`` and routing top-k ``k``, and
the parameter data type.  Dense models are represented as the degenerate
case ``n_e = k = 1``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.errors import ConfigurationError
from repro.utils.validation import (
    require_divides,
    require_positive_int,
)


class DataType(enum.Enum):
    """Parameter / KV-cache storage data types and their byte widths."""

    FLOAT32 = ("float32", 4)
    FLOAT16 = ("float16", 2)
    BFLOAT16 = ("bfloat16", 2)
    INT8 = ("int8", 1)
    INT4 = ("int4", 0.5)

    def __init__(self, label: str, num_bytes: float) -> None:
        self.label = label
        self.num_bytes = num_bytes

    @classmethod
    def from_label(cls, label: str) -> "DataType":
        """Look a data type up by its string label (e.g. ``"float16"``)."""
        for member in cls:
            if member.label == label:
                return member
        raise ConfigurationError(f"unknown data type {label!r}")


class Attention(enum.Enum):
    """Attention variants (all current MoE models in the paper use GQA)."""

    MULTI_HEAD = "mha"
    GROUPED_QUERY = "gqa"
    MULTI_QUERY = "mqa"


class MLPKind(enum.Enum):
    """Feed-forward block variants.

    ``GATED`` is the SwiGLU-style gated MLP used by Mixtral/DBRX (three
    weight matrices per expert); ``STANDARD`` is a two-matrix MLP.
    """

    GATED = "gated"
    STANDARD = "standard"


@dataclass(frozen=True)
class ModelConfig:
    """Architecture description of a transformer (MoE or dense) model.

    Attributes mirror the paper's notation: ``num_layers`` is ``l``,
    ``hidden_size`` is ``h1``, ``intermediate_size`` is ``h2``, ``num_query_heads``
    is ``n_q``, ``num_kv_heads`` is ``n_kv``, ``num_experts`` is ``n_e`` and
    ``top_k`` is ``k``.
    """

    name: str
    num_layers: int
    hidden_size: int
    intermediate_size: int
    num_query_heads: int
    num_kv_heads: int
    num_experts: int = 1
    top_k: int = 1
    vocab_size: int = 32_000
    dtype: DataType = DataType.FLOAT16
    kv_dtype: DataType | None = None
    attention: Attention = Attention.GROUPED_QUERY
    mlp: MLPKind = MLPKind.GATED
    tie_embeddings: bool = False
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        require_positive_int("num_layers", self.num_layers)
        require_positive_int("hidden_size", self.hidden_size)
        require_positive_int("intermediate_size", self.intermediate_size)
        require_positive_int("num_query_heads", self.num_query_heads)
        require_positive_int("num_kv_heads", self.num_kv_heads)
        require_positive_int("num_experts", self.num_experts)
        require_positive_int("top_k", self.top_k)
        require_positive_int("vocab_size", self.vocab_size)
        require_divides("num_query_heads", self.num_kv_heads, self.num_query_heads)
        require_divides("hidden_size", self.num_query_heads, self.hidden_size)
        if self.top_k > self.num_experts:
            raise ConfigurationError(
                f"top_k ({self.top_k}) cannot exceed num_experts ({self.num_experts})"
            )

    # ------------------------------------------------------------------
    # Derived architectural quantities
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Dimension of a single attention head."""
        return self.hidden_size // self.num_query_heads

    @property
    def kv_dim(self) -> int:
        """Total width of the key (or value) projection output."""
        return self.num_kv_heads * self.head_dim

    @property
    def gqa_group_size(self) -> int:
        """Number of query heads sharing one KV head."""
        return self.num_query_heads // self.num_kv_heads

    @property
    def is_moe(self) -> bool:
        """True when the FFN is a mixture of experts (more than one expert)."""
        return self.num_experts > 1

    @property
    def kv_cache_dtype(self) -> DataType:
        """Data type used for the KV cache (defaults to the weight dtype)."""
        return self.kv_dtype if self.kv_dtype is not None else self.dtype

    @property
    def ffn_matrices_per_expert(self) -> int:
        """Weight matrices in one expert FFN (3 for gated/SwiGLU, 2 otherwise)."""
        return 3 if self.mlp is MLPKind.GATED else 2

    # ------------------------------------------------------------------
    # Parameter counts (per layer and total), in number of elements
    # ------------------------------------------------------------------
    def attention_params_per_layer(self) -> int:
        """Q, K, V and O projection parameters for one layer."""
        q_params = self.hidden_size * self.hidden_size
        kv_params = 2 * self.hidden_size * self.kv_dim
        o_params = self.hidden_size * self.hidden_size
        return q_params + kv_params + o_params

    def expert_params(self) -> int:
        """Parameters of a single expert FFN."""
        return self.ffn_matrices_per_expert * self.hidden_size * self.intermediate_size

    def ffn_params_per_layer(self) -> int:
        """All expert parameters plus the router for one layer."""
        router = self.hidden_size * self.num_experts if self.is_moe else 0
        return self.num_experts * self.expert_params() + router

    def params_per_layer(self) -> int:
        """Total parameters in one transformer layer (attention + MoE FFN + norms)."""
        norms = 2 * self.hidden_size
        return self.attention_params_per_layer() + self.ffn_params_per_layer() + norms

    def embedding_params(self) -> int:
        """Token-embedding (and untied LM-head) parameters."""
        embed = self.vocab_size * self.hidden_size
        return embed if self.tie_embeddings else 2 * embed

    def total_params(self) -> int:
        """Total parameter count of the model."""
        final_norm = self.hidden_size
        return (
            self.num_layers * self.params_per_layer()
            + self.embedding_params()
            + final_norm
        )

    def active_params_per_token(self) -> int:
        """Parameters touched when processing one token (top-k experts only)."""
        router = self.hidden_size * self.num_experts if self.is_moe else 0
        active_ffn = self.top_k * self.expert_params() + router
        per_layer = self.attention_params_per_layer() + active_ffn + 2 * self.hidden_size
        return self.num_layers * per_layer + self.embedding_params() + self.hidden_size

    def describe(self) -> str:
        """Human-readable one-line summary used by reports."""
        total_b = self.total_params() / 1e9
        active_b = self.active_params_per_token() / 1e9
        return (
            f"{self.name}: {self.num_layers}L, h={self.hidden_size}, "
            f"ffn={self.intermediate_size}, heads={self.num_query_heads}/"
            f"{self.num_kv_heads}, experts={self.num_experts} (top-{self.top_k}), "
            f"{total_b:.1f}B params ({active_b:.1f}B active)"
        )
