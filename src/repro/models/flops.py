"""Per-operator FLOP and byte accounting.

The Hierarchical Roofline Model and the performance model (paper §3-§4.2)
are driven by two numbers per operator: how many floating-point operations
it performs and how many bytes it must move from a given memory level.  This
module computes those numbers analytically from the model configuration,
mirroring the paper's approach of using "theoretically calculated computation
flops and bytes" rather than profiled kernels.

Conventions
-----------
* A matrix multiply of shapes ``(m, k) x (k, n)`` counts ``2 * m * k * n``
  FLOPs.
* ``tokens`` is the number of tokens processed by the operator call
  (micro-batch size during decode, ``micro_batch * prompt_len`` in prefill).
* Byte counts separate **weight bytes** (parameters that must be resident or
  streamed), **activation bytes** (inputs/outputs of the operator) and
  **kv bytes** (KV-cache traffic), so callers can decide which of them cross
  the CPU-GPU interconnect under a given policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.utils.validation import require_non_negative, require_positive_int


@dataclass(frozen=True)
class OperatorCost:
    """FLOPs and categorised byte traffic for one operator invocation."""

    name: str
    flops: float
    weight_bytes: float = 0.0
    activation_bytes: float = 0.0
    kv_bytes: float = 0.0

    def __post_init__(self) -> None:
        require_non_negative("flops", self.flops)
        require_non_negative("weight_bytes", self.weight_bytes)
        require_non_negative("activation_bytes", self.activation_bytes)
        require_non_negative("kv_bytes", self.kv_bytes)

    @property
    def total_bytes(self) -> float:
        """All bytes the operator touches, regardless of category."""
        return self.weight_bytes + self.activation_bytes + self.kv_bytes

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte accessed (the roofline x-axis)."""
        total = self.total_bytes
        return self.flops / total if total > 0 else float("inf")

    def intensity_excluding_weights(self) -> float:
        """Operational intensity counting only activation + KV traffic."""
        data = self.activation_bytes + self.kv_bytes
        return self.flops / data if data > 0 else float("inf")

    def combine(self, other: "OperatorCost", name: str | None = None) -> "OperatorCost":
        """Sum two operator costs (e.g. QKV projection + attention core)."""
        return OperatorCost(
            name=name or f"{self.name}+{other.name}",
            flops=self.flops + other.flops,
            weight_bytes=self.weight_bytes + other.weight_bytes,
            activation_bytes=self.activation_bytes + other.activation_bytes,
            kv_bytes=self.kv_bytes + other.kv_bytes,
        )

    def scaled(self, factor: float, name: str | None = None) -> "OperatorCost":
        """Multiply every component by ``factor`` (e.g. layers per model)."""
        require_non_negative("factor", factor)
        return OperatorCost(
            name=name or self.name,
            flops=self.flops * factor,
            weight_bytes=self.weight_bytes * factor,
            activation_bytes=self.activation_bytes * factor,
            kv_bytes=self.kv_bytes * factor,
        )


# ----------------------------------------------------------------------
# Attention block
# ----------------------------------------------------------------------
def qkv_proj_cost(model: ModelConfig, tokens: int) -> OperatorCost:
    """Q, K and V projections for ``tokens`` tokens of one layer."""
    require_positive_int("tokens", tokens)
    h = model.hidden_size
    kv = model.kv_dim
    weight_elems = h * h + 2 * h * kv
    flops = 2.0 * tokens * weight_elems
    dtype_bytes = model.dtype.num_bytes
    act_bytes = tokens * (h + h + 2 * kv) * dtype_bytes
    return OperatorCost(
        name="qkv_proj",
        flops=flops,
        weight_bytes=weight_elems * dtype_bytes,
        activation_bytes=act_bytes,
    )


def o_proj_cost(model: ModelConfig, tokens: int) -> OperatorCost:
    """Output projection after attention for ``tokens`` tokens of one layer."""
    require_positive_int("tokens", tokens)
    h = model.hidden_size
    dtype_bytes = model.dtype.num_bytes
    return OperatorCost(
        name="o_proj",
        flops=2.0 * tokens * h * h,
        weight_bytes=h * h * dtype_bytes,
        activation_bytes=2 * tokens * h * dtype_bytes,
    )


def attention_decode_cost(
    model: ModelConfig, batch: int, context_len: int
) -> OperatorCost:
    """Attention core (QK^T, softmax, PV) for one decode step of one layer.

    Each of the ``batch`` sequences attends over ``context_len`` cached
    tokens.  The dominant byte traffic is reading the KV cache; with GQA the
    cache holds ``n_kv`` heads while the computation uses ``n_q`` query
    heads, which is exactly the effect that moves the operator's intensity
    in Fig. 4.
    """
    require_positive_int("batch", batch)
    require_positive_int("context_len", context_len)
    head_dim = model.head_dim
    # QK^T and PV each cost 2 * n_q * head_dim * context per token.
    flops_per_token = 2 * 2.0 * model.num_query_heads * head_dim * context_len
    # Softmax: ~5 ops per score (max, sub, exp, sum, div), negligible but counted.
    flops_per_token += 5.0 * model.num_query_heads * context_len
    kv_dtype_bytes = model.kv_cache_dtype.num_bytes
    kv_bytes = batch * 2.0 * model.num_kv_heads * head_dim * context_len * kv_dtype_bytes
    act_dtype_bytes = model.dtype.num_bytes
    act_bytes = batch * (2 * model.hidden_size + 2 * model.kv_dim) * act_dtype_bytes
    return OperatorCost(
        name="attention_decode",
        flops=batch * flops_per_token,
        kv_bytes=kv_bytes,
        activation_bytes=act_bytes,
    )


def attention_prefill_cost(
    model: ModelConfig, batch: int, prompt_len: int
) -> OperatorCost:
    """Attention core for the prefill of ``batch`` prompts of ``prompt_len``.

    Uses the causal-mask average: each position attends to ``(i + 1)``
    previous positions, i.e. roughly ``prompt_len / 2`` on average.
    """
    require_positive_int("batch", batch)
    require_positive_int("prompt_len", prompt_len)
    head_dim = model.head_dim
    avg_context = (prompt_len + 1) / 2.0
    flops = (
        batch
        * prompt_len
        * 2
        * 2.0
        * model.num_query_heads
        * head_dim
        * avg_context
    )
    kv_dtype_bytes = model.kv_cache_dtype.num_bytes
    kv_bytes = batch * 2.0 * model.num_kv_heads * head_dim * prompt_len * kv_dtype_bytes
    act_bytes = batch * prompt_len * 2 * model.hidden_size * model.dtype.num_bytes
    return OperatorCost(
        name="attention_prefill",
        flops=flops,
        kv_bytes=kv_bytes,
        activation_bytes=act_bytes,
    )


# ----------------------------------------------------------------------
# MoE feed-forward block
# ----------------------------------------------------------------------
def router_cost(model: ModelConfig, tokens: int) -> OperatorCost:
    """Gating network (a single linear layer over experts) for one layer."""
    require_positive_int("tokens", tokens)
    if not model.is_moe:
        return OperatorCost(name="router", flops=0.0)
    dtype_bytes = model.dtype.num_bytes
    return OperatorCost(
        name="router",
        flops=2.0 * tokens * model.hidden_size * model.num_experts,
        weight_bytes=model.hidden_size * model.num_experts * dtype_bytes,
        activation_bytes=tokens * (model.hidden_size + model.num_experts) * dtype_bytes,
    )


def ffn_cost(
    model: ModelConfig,
    tokens: int,
    experts_touched: int | None = None,
) -> OperatorCost:
    """MoE feed-forward block for ``tokens`` tokens of one layer.

    FLOPs scale with the number of (token, expert) pairs — ``tokens * top_k``
    — while weight bytes scale with the number of *distinct* experts whose
    weights must be read.  For throughput-oriented batches the paper assumes
    all experts are touched once the micro-batch is reasonably large, which
    ``experts_touched=None`` reproduces via a balls-in-bins expectation
    capped at ``num_experts``.
    """
    require_positive_int("tokens", tokens)
    expert_params = model.expert_params()
    flops = 2.0 * tokens * model.top_k * expert_params
    if experts_touched is None:
        # Expected number of non-empty experts with uniform routing.
        assignments = tokens * model.top_k
        n_e = model.num_experts
        expected = n_e * (1.0 - (1.0 - 1.0 / n_e) ** assignments)
        experts_touched = min(n_e, expected)
    dtype_bytes = model.dtype.num_bytes
    weight_bytes = experts_touched * expert_params * dtype_bytes
    act_bytes = tokens * (2 * model.hidden_size) * dtype_bytes
    base = OperatorCost(
        name="moe_ffn",
        flops=flops,
        weight_bytes=weight_bytes,
        activation_bytes=act_bytes,
    )
    return base.combine(router_cost(model, tokens), name="moe_ffn")


def layer_norm_cost(model: ModelConfig, tokens: int) -> OperatorCost:
    """Two RMS/LayerNorms per layer (pre-attention and pre-FFN)."""
    require_positive_int("tokens", tokens)
    dtype_bytes = model.dtype.num_bytes
    return OperatorCost(
        name="layer_norm",
        flops=2 * 5.0 * tokens * model.hidden_size,
        weight_bytes=2 * model.hidden_size * dtype_bytes,
        activation_bytes=2 * 2 * tokens * model.hidden_size * dtype_bytes,
    )


def lm_head_cost(model: ModelConfig, tokens: int) -> OperatorCost:
    """Final projection to vocabulary logits."""
    require_positive_int("tokens", tokens)
    dtype_bytes = model.dtype.num_bytes
    return OperatorCost(
        name="lm_head",
        flops=2.0 * tokens * model.hidden_size * model.vocab_size,
        weight_bytes=model.hidden_size * model.vocab_size * dtype_bytes,
        activation_bytes=tokens * (model.hidden_size + model.vocab_size) * dtype_bytes,
    )


def layer_decode_cost(
    model: ModelConfig, batch: int, context_len: int
) -> dict[str, OperatorCost]:
    """All operator costs for one decode step of one transformer layer.

    Returns a dict keyed by the task names used by the pipeline schedules:
    ``pre_attn`` (layer norm + QKV projection), ``attention`` (the softmax
    part that may run on CPU), ``post_attn`` (O projection + MoE FFN).
    """
    pre = layer_norm_cost(model, batch).combine(
        qkv_proj_cost(model, batch), name="pre_attn"
    )
    attn = attention_decode_cost(model, batch, context_len)
    post = o_proj_cost(model, batch).combine(ffn_cost(model, batch), name="post_attn")
    return {"pre_attn": pre, "attention": attn, "post_attn": post}
