"""Memory footprint accounting: weights, KV cache and activations.

The policy optimizer (paper §4.2) needs to know, for a candidate policy
``(N, μ, A_g, F_g, r_w, r_c)``, how much GPU and CPU memory the run will
consume.  This module provides the building blocks: per-layer and total
weight bytes, KV-cache bytes per token, and peak activation bytes for a
micro-batch during prefill and decode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.utils.validation import require_non_negative, require_positive_int


def layer_weight_bytes(model: ModelConfig) -> float:
    """Bytes of parameters in one transformer layer."""
    return model.params_per_layer() * model.dtype.num_bytes


def attention_weight_bytes(model: ModelConfig) -> float:
    """Bytes of the attention (QKVO) weights in one layer."""
    return model.attention_params_per_layer() * model.dtype.num_bytes


def ffn_weight_bytes(model: ModelConfig) -> float:
    """Bytes of the MoE FFN (all experts + router) weights in one layer."""
    return model.ffn_params_per_layer() * model.dtype.num_bytes


def embedding_weight_bytes(model: ModelConfig) -> float:
    """Bytes of the embedding and LM-head parameters."""
    return model.embedding_params() * model.dtype.num_bytes


def model_weight_bytes(model: ModelConfig) -> float:
    """Total bytes of all model parameters."""
    return model.total_params() * model.dtype.num_bytes


def kv_cache_bytes_per_token(model: ModelConfig) -> float:
    """KV-cache bytes added by one token across all layers."""
    per_layer = 2 * model.kv_dim * model.kv_cache_dtype.num_bytes
    return per_layer * model.num_layers


def kv_cache_bytes_per_token_per_layer(model: ModelConfig) -> float:
    """KV-cache bytes added by one token in a single layer."""
    return 2 * model.kv_dim * model.kv_cache_dtype.num_bytes


def activation_bytes(model: ModelConfig, tokens: int) -> float:
    """Peak activation bytes for processing ``tokens`` tokens in one layer.

    Counts the hidden states, the QKV projections and the widest expert
    intermediate activations that are live simultaneously.  This is what
    bounds the micro-batch size during prefill (where ``tokens`` is
    ``micro_batch * prompt_len``).
    """
    require_positive_int("tokens", tokens)
    dtype_bytes = model.dtype.num_bytes
    hidden = 2 * tokens * model.hidden_size  # input + residual copy
    qkv = tokens * (model.hidden_size + 2 * model.kv_dim)
    ffn_intermediate = tokens * model.top_k * 2 * model.intermediate_size
    return (hidden + qkv + ffn_intermediate) * dtype_bytes


@dataclass(frozen=True)
class MemoryFootprint:
    """A breakdown of bytes by category, for one device.

    ``weights``: resident model parameters.
    ``kv_cache``: key/value tensors for all tracked tokens.
    ``activations``: peak temporary tensors of the widest live micro-batch.
    ``workspace``: transfer buffers (paged-weight double buffer, pinned
    staging) and allocator slack.
    """

    weights: float = 0.0
    kv_cache: float = 0.0
    activations: float = 0.0
    workspace: float = 0.0

    def __post_init__(self) -> None:
        require_non_negative("weights", self.weights)
        require_non_negative("kv_cache", self.kv_cache)
        require_non_negative("activations", self.activations)
        require_non_negative("workspace", self.workspace)

    @property
    def total(self) -> float:
        """Total bytes across all categories."""
        return self.weights + self.kv_cache + self.activations + self.workspace

    def fits_within(self, capacity_bytes: float) -> bool:
        """Whether the footprint fits in ``capacity_bytes`` of memory."""
        return self.total <= capacity_bytes

    def combine(self, other: "MemoryFootprint") -> "MemoryFootprint":
        """Element-wise sum of two footprints (e.g. two co-resident stages)."""
        return MemoryFootprint(
            weights=self.weights + other.weights,
            kv_cache=self.kv_cache + other.kv_cache,
            activations=self.activations + other.activations,
            workspace=self.workspace + other.workspace,
        )

    def as_dict(self) -> dict[str, float]:
        """Dictionary view used by reports."""
        return {
            "weights": self.weights,
            "kv_cache": self.kv_cache,
            "activations": self.activations,
            "workspace": self.workspace,
            "total": self.total,
        }
