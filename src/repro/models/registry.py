"""Registry of the model configurations evaluated in the paper.

The paper evaluates Mixtral 8x7B, Mixtral 8x22B and DBRX (132B, 16 experts).
We also register a dense Llama-2-70B configuration (used by the "MoE vs.
dense" discussion in Appendix B.1) and a ``tiny-moe`` configuration small
enough to run through the functional numpy engine in tests and examples.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.models.config import Attention, DataType, MLPKind, ModelConfig
from repro.utils.errors import ConfigurationError

MODEL_REGISTRY: Dict[str, Callable[[], ModelConfig]] = {}


def register_model(name: str, factory: Callable[[], ModelConfig]) -> None:
    """Register a model factory under ``name`` (case-insensitive lookup)."""
    key = name.lower()
    if key in MODEL_REGISTRY:
        raise ConfigurationError(f"model {name!r} is already registered")
    MODEL_REGISTRY[key] = factory


def get_model(name: str) -> ModelConfig:
    """Instantiate a registered model configuration by name."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise ConfigurationError(f"unknown model {name!r}; known models: {known}")
    return MODEL_REGISTRY[key]()


def list_models() -> list[str]:
    """Names of all registered models, sorted alphabetically."""
    return sorted(MODEL_REGISTRY)


def mixtral_8x7b(dtype: DataType = DataType.FLOAT16) -> ModelConfig:
    """Mixtral 8x7B: 32 layers, 8 experts with top-2 routing, GQA 32/8."""
    return ModelConfig(
        name="mixtral-8x7b",
        num_layers=32,
        hidden_size=4096,
        intermediate_size=14336,
        num_query_heads=32,
        num_kv_heads=8,
        num_experts=8,
        top_k=2,
        vocab_size=32_000,
        dtype=dtype,
        attention=Attention.GROUPED_QUERY,
        mlp=MLPKind.GATED,
    )


def mixtral_8x22b(dtype: DataType = DataType.FLOAT16) -> ModelConfig:
    """Mixtral 8x22B: 56 layers, 8 experts with top-2 routing, GQA 48/8."""
    return ModelConfig(
        name="mixtral-8x22b",
        num_layers=56,
        hidden_size=6144,
        intermediate_size=16384,
        num_query_heads=48,
        num_kv_heads=8,
        num_experts=8,
        top_k=2,
        vocab_size=32_768,
        dtype=dtype,
        attention=Attention.GROUPED_QUERY,
        mlp=MLPKind.GATED,
    )


def dbrx(dtype: DataType = DataType.FLOAT16) -> ModelConfig:
    """DBRX: 132B total parameters, 40 layers, 16 experts with top-4 routing."""
    return ModelConfig(
        name="dbrx",
        num_layers=40,
        hidden_size=6144,
        intermediate_size=10752,
        num_query_heads=48,
        num_kv_heads=8,
        num_experts=16,
        top_k=4,
        vocab_size=100_352,
        dtype=dtype,
        attention=Attention.GROUPED_QUERY,
        mlp=MLPKind.GATED,
    )


def llama2_70b(dtype: DataType = DataType.FLOAT16) -> ModelConfig:
    """Dense Llama-2-70B, used for the MoE-vs-dense discussion (Appendix B.1)."""
    return ModelConfig(
        name="llama2-70b",
        num_layers=80,
        hidden_size=8192,
        intermediate_size=28672,
        num_query_heads=64,
        num_kv_heads=8,
        num_experts=1,
        top_k=1,
        vocab_size=32_000,
        dtype=dtype,
        attention=Attention.GROUPED_QUERY,
        mlp=MLPKind.GATED,
    )


def tiny_moe(dtype: DataType = DataType.FLOAT32) -> ModelConfig:
    """A miniature Mixtral-shaped model for the functional numpy engine.

    Four layers, 64-wide hidden dimension, four experts with top-2 routing
    and GQA 8/2 — the same architectural features as Mixtral at a size that
    executes in milliseconds, so correctness tests can compare pipelined
    against reference execution exactly.
    """
    return ModelConfig(
        name="tiny-moe",
        num_layers=4,
        hidden_size=64,
        intermediate_size=128,
        num_query_heads=8,
        num_kv_heads=2,
        num_experts=4,
        top_k=2,
        vocab_size=512,
        dtype=dtype,
        attention=Attention.GROUPED_QUERY,
        mlp=MLPKind.GATED,
    )


register_model("mixtral-8x7b", mixtral_8x7b)
register_model("mixtral-8x22b", mixtral_8x22b)
register_model("dbrx", dbrx)
register_model("llama2-70b", llama2_70b)
register_model("tiny-moe", tiny_moe)
