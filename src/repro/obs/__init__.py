"""End-to-end serving telemetry: tracing, streaming metrics, time series.

The serving stack's internal signals — queue depth, per-stream busy time,
cache hit rate, per-shard load — existed only as end-of-run aggregates;
this package makes them observable *as the run unfolds*, at event
granularity, without perturbing the simulation:

* :mod:`repro.obs.trace` — request-lifecycle and per-lane span recording
  with Chrome trace-event JSON export (Perfetto-loadable) and validation;
* :mod:`repro.obs.metrics` — counters, gauges and histograms backed by
  the streaming P² percentile sketch (p50/p95/p99 without storing
  samples);
* :mod:`repro.obs.sampler` — fixed-interval time series over simulated
  time, exported as JSONL and rendered as ASCII sparklines;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the serving
  stack emits into (``ServingSystem.run(..., telemetry=...)``);
* :mod:`repro.obs.trace_cli` — the ``repro-trace`` CLI: validate and
  summarise exported traces.

Telemetry is strictly opt-in: with no :class:`Telemetry` attached the
serving stack takes its historical code path and produces bit-for-bit
identical results.
"""

from repro.obs.metrics import (
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    MetricRegistry,
    P2Quantile,
    StreamingHistogram,
)
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.telemetry import Telemetry, collect_core_stats, shard_label
from repro.obs.trace import (
    REQUEST_PHASES,
    CounterSample,
    Instant,
    RequestSpan,
    Span,
    TraceRecorder,
    load_chrome_trace,
    summarize_chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "DEFAULT_QUANTILES",
    "Counter",
    "CounterSample",
    "Gauge",
    "Instant",
    "MetricRegistry",
    "P2Quantile",
    "REQUEST_PHASES",
    "RequestSpan",
    "Span",
    "StreamingHistogram",
    "Telemetry",
    "TimeSeriesSampler",
    "TraceRecorder",
    "collect_core_stats",
    "load_chrome_trace",
    "shard_label",
    "summarize_chrome_trace",
    "validate_chrome_trace",
]
