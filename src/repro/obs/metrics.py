"""Streaming metric primitives: counters, gauges and P² histograms.

The serving simulator's reports recompute percentiles from every stored
latency sample (``numpy.percentile`` over a list).  That is exact but it is
also the accumulation pattern the ROADMAP's simulator-speed item calls out:
million-request streams cannot afford one Python object per latency.  This
module provides the streaming alternative:

* :class:`P2Quantile` — the P² algorithm of Jain & Chlamtáč (CACM 1985):
  one quantile estimated from five markers updated in O(1) per
  observation, no samples stored;
* :class:`StreamingHistogram` — count/sum/min/max plus one
  :class:`P2Quantile` per requested quantile (p50/p95/p99 by default);
* :class:`MetricRegistry` — a flat name-keyed registry of counters,
  gauges and histograms with a JSON-able :meth:`~MetricRegistry.snapshot`.

Everything here is deterministic: the same observation stream produces the
same estimates, so telemetry-enabled runs are as reproducible as the
simulator itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.utils.errors import ConfigurationError

#: Quantiles a histogram tracks unless told otherwise (the report trio).
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


class P2Quantile:
    """One streaming quantile via the P² algorithm (no samples stored).

    Five markers track the running minimum, the target quantile, the
    quantile's half-way neighbours and the running maximum; each
    observation shifts marker positions and adjusts heights with a
    piecewise-parabolic (falling back to linear) interpolation.  Until
    five observations arrive the estimate is the exact interpolated
    percentile of the buffered values, so small streams stay exact.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, value: float) -> None:
        """Fold one observation into the estimate (O(1))."""
        value = float(value)
        self.count += 1
        if self.count <= 5:
            # Exact regime: plain append.  The buffer is only sorted when a
            # value is actually read (see :meth:`value`) and once at the
            # transition into the sketch regime below, so tiny streams pay
            # no per-observation sort.
            self._heights.append(value)
            return
        if self.count == 6:
            # The five buffered values become the initial markers, which
            # the sketch update relies on being in height order.
            self._heights.sort()

        heights = self._heights
        positions = self._positions
        desired = self._desired
        increments = self._increments
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and heights[cell + 1] <= value:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        # desired[0]'s increment is always 0.0; skip it on the hot path.
        desired[1] += increments[1]
        desired[2] += increments[2]
        desired[3] += increments[3]
        desired[4] += 1.0

        for i in (1, 2, 3):
            position = positions[i]
            delta = desired[i] - position
            if delta >= 1.0:
                if positions[i + 1] - position <= 1.0:
                    continue
                step = 1.0
            elif delta <= -1.0:
                if positions[i - 1] - position >= -1.0:
                    continue
                step = -1.0
            else:
                continue
            candidate = self._parabolic(i, step)
            if not heights[i - 1] < candidate < heights[i + 1]:
                candidate = self._linear(i, step)
            heights[i] = candidate
            positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def add_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations (same state as sequential adds).

        The sketch state is a pure fold over the observation order, so this
        is exactly ``for v in values: add(v)`` minus the per-call overhead.
        """
        add = self.add
        for value in values:
            add(value)

    def value(self) -> float:
        """The current quantile estimate (NaN before any observation)."""
        if self.count == 0:
            return math.nan
        if self.count <= 5:
            # Exact linear-interpolated percentile of the sorted buffer
            # (numpy's default method), so tiny streams report exactly.
            self._heights.sort()
            rank = self.q * (len(self._heights) - 1)
            low = int(rank)
            high = min(low + 1, len(self._heights) - 1)
            frac = rank - low
            return self._heights[low] * (1.0 - frac) + self._heights[high] * frac
        return self._heights[2]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ConfigurationError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class StreamingHistogram:
    """Count/sum/min/max plus P² sketches for a fixed set of quantiles."""

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if not quantiles:
            raise ConfigurationError("histogram needs at least one quantile")
        self.quantiles = tuple(quantiles)
        self._sketches = {q: P2Quantile(q) for q in self.quantiles}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation into every sketch."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for sketch in self._sketches.values():
            sketch.add(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations (same state as sequential observes).

        Accumulation order is preserved (floats fold left-to-right exactly
        as :meth:`observe` would), so the summary statistics are
        bit-identical to the one-at-a-time path.
        """
        batch = [float(value) for value in values]
        if not batch:
            return
        self.count += len(batch)
        total = self.total
        for value in batch:
            total += value
        self.total = total
        low = min(batch)
        high = max(batch)
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high
        for sketch in self._sketches.values():
            sketch.add_many(batch)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (NaN when empty)."""
        if self.count == 0:
            return math.nan
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """The tracked quantile estimate for ``q`` (must be tracked)."""
        if q not in self._sketches:
            tracked = ", ".join(str(t) for t in self.quantiles)
            raise ConfigurationError(f"quantile {q} not tracked (tracked: {tracked})")
        return self._sketches[q].value()

    def summary(self) -> dict[str, float]:
        """Flat dict of the histogram's headline statistics."""
        stats: dict[str, float] = {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
        }
        for q in self.quantiles:
            stats[f"p{q * 100:g}"] = self._sketches[q].value()
        return stats


@dataclass
class MetricRegistry:
    """Name-keyed counters, gauges and histograms for one run."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, StreamingHistogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self.counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self.gauges.setdefault(name, Gauge())

    def histogram(
        self, name: str, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> StreamingHistogram:
        """Get or create the histogram called ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = StreamingHistogram(quantiles)
            self.histograms[name] = histogram
        return histogram

    def snapshot(self) -> dict[str, object]:
        """JSON-able view of every metric's current value."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def names(self) -> Iterable[str]:
        """Every registered metric name, sorted."""
        return sorted([*self.counters, *self.gauges, *self.histograms])
