"""Fixed-interval time-series sampling over simulated time.

The event loop processes events at irregular simulated timestamps; between
events the system's state is constant.  The sampler exploits that: each
time the loop is about to advance to a new timestamp it offers the sampler
the chance to emit samples for every interval boundary crossed since the
last one, stamped at the boundary and carrying the state that held there
(the state after the previous event).  The result is a regular time series
— queue depth, KV occupancy, cache hit rate, per-shard load — from an
irregular event stream, with zero samples stored between boundaries.

Export is JSONL (one ``{"t": ..., **values}`` object per line) and ASCII
sparklines via :func:`repro.utils.ascii_plot.sparkline`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.utils.ascii_plot import sparkline
from repro.utils.validation import require_positive

#: Produces the values to record at one sample instant.
CollectFn = Callable[[], Mapping[str, float]]


class TimeSeriesSampler:
    """Samples a state snapshot at fixed simulated-time intervals."""

    def __init__(self, interval: float) -> None:
        require_positive("interval", interval)
        self.interval = interval
        self.samples: list[dict[str, float]] = []
        self._next_boundary = 0.0

    def observe(self, now: float, collect: CollectFn) -> list[dict[str, float]]:
        """Emit samples for boundaries strictly before ``now``.

        ``collect`` is called once per pending boundary; state is constant
        between events, so every boundary in ``(previous event, now)``
        carries the same — correct — values.  Returns the new samples.
        """
        emitted: list[dict[str, float]] = []
        while self._next_boundary < now - 1e-12:
            sample = {"t": self._next_boundary}
            sample.update(collect())
            self.samples.append(sample)
            emitted.append(sample)
            self._next_boundary += self.interval
        return emitted

    def flush(self, now: float, collect: CollectFn) -> list[dict[str, float]]:
        """Emit the final samples up to and including ``now`` (run end)."""
        emitted = self.observe(now, collect)
        if self._next_boundary <= now + 1e-12:
            sample = {"t": self._next_boundary}
            sample.update(collect())
            self.samples.append(sample)
            emitted.append(sample)
            self._next_boundary += self.interval
        return emitted

    # ------------------------------------------------------------------
    # Views and export
    # ------------------------------------------------------------------
    def series_names(self) -> list[str]:
        """Every sampled series name (excluding the timestamp), sorted."""
        names: set[str] = set()
        for sample in self.samples:
            names.update(sample)
        names.discard("t")
        return sorted(names)

    def series(self, name: str) -> tuple[list[float], list[float]]:
        """(timestamps, values) of one series, skipping absent samples."""
        ts: list[float] = []
        values: list[float] = []
        for sample in self.samples:
            if name in sample:
                ts.append(sample["t"])
                values.append(sample[name])
        return ts, values

    def to_jsonl(self) -> str:
        """Every sample as one JSON object per line."""
        return "\n".join(json.dumps(sample, sort_keys=True) for sample in self.samples)

    def write_jsonl(self, path: str | Path) -> None:
        """Write the samples to ``path`` as JSONL."""
        text = self.to_jsonl()
        Path(path).write_text(text + "\n" if text else "")

    def render(
        self, names: Sequence[str] | None = None, width: int = 60
    ) -> str:
        """Sparkline dashboard: one row per series, labelled with its range."""
        names = list(names) if names is not None else self.series_names()
        label_width = max((len(name) for name in names), default=0)
        lines = []
        for name in names:
            _, values = self.series(name)
            if not values:
                continue
            lines.append(
                f"{name:<{label_width}}  [{min(values):g}, {max(values):g}]  "
                f"{sparkline(values, width=width)}"
            )
        if not lines:
            return "(no samples)"
        return "\n".join(lines)
