"""The telemetry facade the serving stack emits into.

One :class:`Telemetry` object owns up to three sinks — a
:class:`~repro.obs.trace.TraceRecorder`, a
:class:`~repro.obs.metrics.MetricRegistry` and a
:class:`~repro.obs.sampler.TimeSeriesSampler` — and exposes the hook
methods the serving stack calls at its emission points:

* the **router** records routing instants per arrival;
* **admission** bumps verdict counters and the engine records
  admit/reject/drop instants;
* the **engine core** records per-step lane spans (decode / prefill /
  weight-stream) and, at retirement, each request's gapless lifecycle
  chain plus its latency histograms;
* the **event loop** (and the single-engine serving loop) drives the
  time-series sampler as simulated time advances.

Every hook is a no-op when its sink is absent, and the serving stack only
calls hooks behind ``if telemetry is not None`` — so a run with telemetry
disabled executes exactly the pre-telemetry code path and its results are
bit-for-bit identical (asserted at tier 1).

The module is deliberately decoupled from :mod:`repro.serving`: hooks are
duck-typed against the engine's step and request objects, so ``obs`` never
imports the stack it instruments.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.obs.metrics import MetricRegistry
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.trace import TraceRecorder


def shard_label(shard_id: int | None) -> str:
    """Lane prefix for one engine core (``engine`` when unsharded)."""
    return "engine" if shard_id is None else f"shard{shard_id}"


def collect_core_stats(cores: Sequence[object]) -> dict[str, float]:
    """Snapshot the sampler's signals from the live engine cores.

    Per shard: queue depth, in-flight population, outstanding load and KV
    pool occupancy.  Aggregates: totals of those, the cumulative prefix
    cache hit rate, the cumulative overlap fraction and the block store's
    resident/cached block counts (zero with the cache off).
    """
    values: dict[str, float] = {}
    total_queue = total_running = total_load = 0.0
    kv_fracs: list[float] = []
    admitted = hits = 0.0
    busy = overlapped = 0.0
    blocks = cached_blocks = 0.0
    for core in cores:
        label = shard_label(core.shard_id)
        queue_depth = float(len(core.queue))
        running = float(len(core.running) + len(core.prefilling))
        load = float(core.load())
        kv_frac = core.admission.utilization()["kv_cpu"]
        values[f"{label}.queue_depth"] = queue_depth
        values[f"{label}.running"] = running
        values[f"{label}.load"] = load
        values[f"{label}.kv_frac"] = kv_frac
        total_queue += queue_depth
        total_running += running
        total_load += load
        kv_fracs.append(kv_frac)
        admitted += core.admission.admitted_count
        hits += core.admission.cache_hit_count
        busy += core.busy_time
        overlapped += core.overlapped_time
        occupancy = core.admission.kv_cache.occupancy()
        blocks += occupancy["blocks"]
        cached_blocks += occupancy["cached_blocks"]
    values["queue_depth"] = total_queue
    values["running"] = total_running
    values["load"] = total_load
    values["kv_frac"] = sum(kv_fracs) / len(kv_fracs) if kv_fracs else 0.0
    values["hit_rate"] = hits / admitted if admitted > 0 else 0.0
    values["overlap_fraction"] = overlapped / busy if busy > 0 else 0.0
    values["blocks"] = blocks
    values["cached_blocks"] = cached_blocks
    return values


#: Aggregate series the sampler mirrors into the trace as counter tracks.
_MIRRORED_SERIES: tuple[str, ...] = ("queue_depth", "load", "kv_frac")


class Telemetry:
    """Opt-in observability for one serving run.

    ``trace`` and ``metrics`` toggle the recorder and the registry;
    ``sample_interval`` (simulated seconds) enables the time-series
    sampler.  Attach one fresh instance per run — recorders accumulate.
    """

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        sample_interval: float | None = None,
    ) -> None:
        self.trace = TraceRecorder() if trace else None
        self.registry = MetricRegistry() if metrics else None
        self.sampler = (
            TimeSeriesSampler(sample_interval) if sample_interval is not None else None
        )

    # ------------------------------------------------------------------
    # Registry shorthands (no-ops without a registry)
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a counter."""
        if self.registry is not None:
            self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float | None) -> None:
        """Fold one observation into a histogram (``None`` is skipped)."""
        if self.registry is not None and value is not None:
            self.registry.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Emission hooks (called by the serving stack)
    # ------------------------------------------------------------------
    def record_step(self, shard_id: int | None, step: object) -> None:
        """One completed engine step: lane spans + step metrics.

        The decode and prefill lanes carry each stream's share of the step
        (so their span sums reproduce ``decode_busy_s`` and
        ``prefill_busy_s`` exactly); the weight lane carries the whole step
        — the shared weight-streaming pass both streams serialize on.
        """
        label = shard_label(shard_id)
        if self.trace is not None:
            args = {
                "num_requests": step.num_requests,
                "num_micro_batches": step.num_micro_batches,
            }
            if step.decode_time > 0:
                self.trace.add_span(
                    f"{label}/decode", step.kind, step.start, step.decode_time, **args
                )
            if step.prefill_time > 0:
                self.trace.add_span(
                    f"{label}/prefill", step.kind, step.start, step.prefill_time, **args
                )
            self.trace.add_span(
                f"{label}/weight", step.kind, step.start, step.duration, **args
            )
        self.count(f"steps.{step.kind}")
        self.observe("step_duration", step.duration)

    def record_route(
        self, serving_request: object, shard: int, now: float
    ) -> None:
        """One routing decision at the arrival instant."""
        if self.trace is not None:
            self.trace.add_instant(
                "router",
                "route",
                now,
                request_id=serving_request.request_id,
                shard=shard,
            )
        self.count("requests.routed")

    def record_admit(self, serving_request: object, now: float) -> None:
        """One successful admission (KV reserved, prefill imminent)."""
        if self.trace is not None:
            self.trace.add_instant(
                "admission",
                "admit",
                now,
                request_id=serving_request.request_id,
                cached_tokens=serving_request.tokens_cached,
            )

    def record_reject(
        self, serving_request: object, now: float, reason: str
    ) -> None:
        """One terminal rejection (oversized request or queue-full drop)."""
        if self.trace is not None:
            self.trace.add_instant(
                "admission",
                "reject",
                now,
                request_id=serving_request.request_id,
                reason=reason,
            )
        self.count("requests.rejected")

    def record_fault(
        self, shard_id: int | None, kind: str, now: float, **args
    ) -> None:
        """One injected fault event (crash / recover / straggle / link)."""
        if self.trace is not None:
            payload = dict(args)
            if shard_id is not None:
                payload["shard"] = shard_id
            self.trace.add_instant("faults", kind, now, **payload)
        self.count(f"faults.{kind}")

    def record_unavailability(
        self, shard_id: int, start: float, end: float
    ) -> None:
        """One shard's full downtime window (crash to serving-again)."""
        if self.trace is not None:
            self.trace.add_span(
                f"{shard_label(shard_id)}/fault", "unavailable", start, end - start
            )
        self.observe("unavailability", end - start)

    def record_finish(self, serving_request: object) -> None:
        """One retired request: its gapless lifecycle chain + latencies."""
        sr = serving_request
        if (
            self.trace is not None
            and sr.admit_time is not None
            and sr.first_token_time is not None
            and sr.finish_time is not None
        ):
            shard = shard_label(sr.shard_id)
            self.trace.add_request_span(
                sr.request_id, "queue", sr.arrival_time, sr.admit_time, shard=shard
            )
            self.trace.add_request_span(
                sr.request_id,
                "prefill",
                sr.admit_time,
                sr.first_token_time,
                cached_tokens=sr.tokens_cached,
            )
            self.trace.add_request_span(
                sr.request_id,
                "decode",
                sr.first_token_time,
                sr.finish_time,
                tokens=sr.tokens_decoded,
            )
        self.count("requests.finished")
        self.count("tokens.generated", sr.tokens_decoded)
        self.observe("ttft", sr.ttft)
        self.observe("tpot", sr.tpot)
        self.observe("e2e", sr.e2e_latency)
        if sr.admit_time is not None:
            self.observe("queue_wait", sr.admit_time - sr.arrival_time)

    # ------------------------------------------------------------------
    # Time-series sampling (driven by the run loops)
    # ------------------------------------------------------------------
    def sample(self, now: float, cores: Sequence[object]) -> None:
        """Emit samples for every interval boundary crossed before ``now``."""
        if self.sampler is None:
            return
        emitted = self.sampler.observe(now, lambda: collect_core_stats(cores))
        self._mirror_counters(emitted)

    def finish_run(self, now: float, cores: Sequence[object]) -> None:
        """Flush the sampler through the end of the run (``now`` = makespan)."""
        if self.sampler is None:
            return
        emitted = self.sampler.flush(now, lambda: collect_core_stats(cores))
        self._mirror_counters(emitted)

    def _mirror_counters(self, samples: Iterable[Mapping[str, float]]) -> None:
        if self.trace is None:
            return
        for sample in samples:
            for name in _MIRRORED_SERIES:
                if name in sample:
                    self.trace.add_counter(name, sample["t"], {name: sample[name]})

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """JSON-able rollup of everything this run recorded."""
        document: dict[str, object] = {}
        if self.registry is not None:
            document["metrics"] = self.registry.snapshot()
        if self.trace is not None:
            document["lanes"] = [
                {
                    "lane": lane,
                    "spans": len(self.trace.spans_on(lane)),
                    "busy_s": self.trace.lane_busy(lane),
                }
                for lane in self.trace.lanes()
            ]
            document["requests_traced"] = len(
                {rs.request_id for rs in self.trace.request_spans}
            )
        if self.sampler is not None:
            document["samples"] = len(self.sampler.samples)
        return document
