"""Request-lifecycle and per-lane span tracing with Chrome trace export.

The offline half of the repo traces pipeline tasks
(:mod:`repro.runtime.trace`); this module is the online counterpart: it
records what the *serving* stack did and when, at event granularity:

* **lane spans** — exclusive-occupancy spans on per-shard lanes
  (``shard0/decode``, ``shard0/prefill``, ``shard0/weight``): one span per
  engine step and stream, so the decode lane's span sum *is*
  ``decode_busy_s`` and the weight lane shows the serialize point every
  step shares;
* **request spans** — each request's lifecycle as a gapless chain of
  ``queue`` (arrival → admission), ``prefill`` (admission → first token)
  and ``decode`` (first token → finish) phases;
* **instants** — point events: routing decisions, admission verdicts,
  drops;
* **counter samples** — time series (queue depth, load, ...) the sampler
  mirrors into the trace.

:meth:`TraceRecorder.to_chrome` exports all of it as Chrome trace-event
JSON (the ``traceEvents`` array format), loadable in Perfetto or
``chrome://tracing``: lane spans become ``X`` complete events on named
threads, request phases become ``b``/``e`` async events keyed by request
id, and counter samples become ``C`` events.  Timestamps are simulated
seconds scaled to microseconds, the unit the format expects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.utils.errors import SimulationError

#: Simulated seconds -> Chrome trace microseconds.
_TIME_SCALE = 1e6

#: Overlap tolerance when verifying lane exclusivity (simulated seconds).
_LANE_TOLERANCE = 1e-9

#: The request-lifecycle phases, in chain order.
REQUEST_PHASES: tuple[str, ...] = ("queue", "prefill", "decode")


@dataclass(frozen=True)
class Span:
    """One exclusive-occupancy span on a named lane."""

    lane: str
    name: str
    start: float
    duration: float
    args: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(
                f"span {self.name!r} on {self.lane!r} has negative duration "
                f"({self.duration})"
            )

    @property
    def end(self) -> float:
        """Completion time of the span."""
        return self.start + self.duration


@dataclass(frozen=True)
class RequestSpan:
    """One phase of one request's lifecycle."""

    request_id: int
    phase: str
    start: float
    end: float
    args: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"request {self.request_id} phase {self.phase!r} ends before "
                f"it starts ({self.start} -> {self.end})"
            )

    @property
    def duration(self) -> float:
        """Time the request spent in this phase."""
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A point event on a lane (routing decision, admission verdict, drop)."""

    lane: str
    name: str
    ts: float
    args: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """One sample of one or more named counters at an instant."""

    name: str
    ts: float
    values: Mapping[str, float] = field(default_factory=dict)


class TraceRecorder:
    """Collects spans, request phases, instants and counter samples."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.request_spans: list[RequestSpan] = []
        self.instants: list[Instant] = []
        self.counters: list[CounterSample] = []

    def add_span(
        self,
        lane: str,
        name: str,
        start: float,
        duration: float,
        **args: object,
    ) -> None:
        """Record one exclusive lane span."""
        self.spans.append(
            Span(lane=lane, name=name, start=start, duration=duration, args=args)
        )

    def add_request_span(
        self,
        request_id: int,
        phase: str,
        start: float,
        end: float,
        **args: object,
    ) -> None:
        """Record one request-lifecycle phase."""
        self.request_spans.append(
            RequestSpan(
                request_id=request_id, phase=phase, start=start, end=end, args=args
            )
        )

    def add_instant(self, lane: str, name: str, ts: float, **args: object) -> None:
        """Record a point event."""
        self.instants.append(Instant(lane=lane, name=name, ts=ts, args=args))

    def add_counter(self, name: str, ts: float, values: Mapping[str, float]) -> None:
        """Record one counter sample (a dict of series values at ``ts``)."""
        self.counters.append(CounterSample(name=name, ts=ts, values=dict(values)))

    # ------------------------------------------------------------------
    # Queries and invariants
    # ------------------------------------------------------------------
    def lanes(self) -> list[str]:
        """Every lane with at least one span or instant, sorted."""
        names = {span.lane for span in self.spans}
        names.update(instant.lane for instant in self.instants)
        return sorted(names)

    def spans_on(self, lane: str) -> list[Span]:
        """Spans on ``lane`` ordered by start time."""
        return sorted(
            (span for span in self.spans if span.lane == lane),
            key=lambda span: (span.start, span.end),
        )

    def lane_busy(self, lane: str) -> float:
        """Total span time on ``lane`` (spans never overlap there)."""
        return sum(span.duration for span in self.spans if span.lane == lane)

    def request_chain(self, request_id: int) -> list[RequestSpan]:
        """One request's lifecycle phases in chain (start-time) order."""
        return sorted(
            (rs for rs in self.request_spans if rs.request_id == request_id),
            key=lambda rs: (rs.start, rs.end),
        )

    def verify_lanes(self) -> None:
        """Assert no two spans overlap on the same lane."""
        for lane in self.lanes():
            spans = self.spans_on(lane)
            for previous, current in zip(spans, spans[1:]):
                if current.start < previous.end - _LANE_TOLERANCE:
                    raise SimulationError(
                        f"overlapping spans on lane {lane!r}: "
                        f"{previous.name} [{previous.start:.6f}, {previous.end:.6f}] "
                        f"and {current.name} [{current.start:.6f}, {current.end:.6f}]"
                    )

    def verify_request_chains(self) -> None:
        """Assert every traced request's phases chain gaplessly."""
        ids = {rs.request_id for rs in self.request_spans}
        for request_id in ids:
            chain = self.request_chain(request_id)
            for previous, current in zip(chain, chain[1:]):
                if abs(current.start - previous.end) > _LANE_TOLERANCE:
                    raise SimulationError(
                        f"request {request_id}: phase {previous.phase!r} ends at "
                        f"{previous.end:.6f} but {current.phase!r} starts at "
                        f"{current.start:.6f}"
                    )

    @property
    def makespan(self) -> float:
        """Latest end time across every span and request phase."""
        ends = [span.end for span in self.spans]
        ends.extend(rs.end for rs in self.request_spans)
        return max(ends, default=0.0)

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict[str, object]:
        """The trace as a Chrome trace-event JSON document (Perfetto-ready)."""
        events: list[dict[str, object]] = []
        lane_tids = {lane: tid for tid, lane in enumerate(self.lanes(), start=1)}

        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": 1,
                "tid": 0,
                "args": {"name": "serving"},
            }
        )
        for lane, tid in lane_tids.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )

        for span in self.spans:
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": "lane",
                    "pid": 1,
                    "tid": lane_tids[span.lane],
                    "ts": span.start * _TIME_SCALE,
                    "dur": span.duration * _TIME_SCALE,
                    "args": dict(span.args),
                }
            )
        for instant in self.instants:
            events.append(
                {
                    "ph": "i",
                    "name": instant.name,
                    "cat": "event",
                    "s": "t",
                    "pid": 1,
                    "tid": lane_tids[instant.lane],
                    "ts": instant.ts * _TIME_SCALE,
                    "args": dict(instant.args),
                }
            )
        for rs in self.request_spans:
            base = {
                "cat": "request",
                "id": rs.request_id,
                "pid": 1,
                "tid": 0,
                "name": rs.phase,
            }
            events.append(
                {"ph": "b", "ts": rs.start * _TIME_SCALE, "args": dict(rs.args), **base}
            )
            events.append({"ph": "e", "ts": rs.end * _TIME_SCALE, **base})
        for sample in self.counters:
            events.append(
                {
                    "ph": "C",
                    "name": sample.name,
                    "cat": "sampler",
                    "pid": 1,
                    "tid": 0,
                    "ts": sample.ts * _TIME_SCALE,
                    "args": dict(sample.values),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str | Path) -> dict[str, object]:
        """Write the Chrome trace JSON to ``path``; returns the document."""
        document = self.to_chrome()
        Path(path).write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
        return document


# ----------------------------------------------------------------------
# Validation of exported (or externally produced) Chrome traces
# ----------------------------------------------------------------------
_KNOWN_PHASES = {"X", "M", "i", "b", "e", "C"}


def validate_chrome_trace(document: object) -> list[str]:
    """Schema-check a Chrome trace-event document; returns error strings.

    An empty list means the document is valid: a dict with a
    ``traceEvents`` array whose events carry the fields their phase
    requires — ``X`` events a non-negative ``dur``, ``b``/``e`` pairs
    balanced per (category, id, name), every event a numeric ``ts``.
    """
    errors: list[str] = []
    if not isinstance(document, Mapping):
        return ["trace document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["trace document has no traceEvents array"]
    open_async: dict[tuple[object, object, object], int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            errors.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            errors.append(f"event {index} has unknown phase {phase!r}")
            continue
        if "name" not in event:
            errors.append(f"event {index} ({phase}) has no name")
        if phase != "M" and not isinstance(event.get("ts"), (int, float)):
            errors.append(f"event {index} ({event.get('name')}) has no numeric ts")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                errors.append(
                    f"event {index} ({event.get('name')}) has invalid dur "
                    f"{duration!r}"
                )
        if phase in ("b", "e"):
            key = (event.get("cat"), event.get("id"), event.get("name"))
            if event.get("id") is None:
                errors.append(f"event {index} ({event.get('name')}) has no async id")
            delta = 1 if phase == "b" else -1
            open_async[key] = open_async.get(key, 0) + delta
            if open_async[key] < 0:
                errors.append(
                    f"event {index}: async end without begin for {key!r}"
                )
    for key, balance in open_async.items():
        if balance > 0:
            errors.append(f"unclosed async span(s) for {key!r}")
    return errors


def summarize_chrome_trace(document: Mapping[str, object]) -> dict[str, object]:
    """Per-lane and per-phase rollups of an exported Chrome trace.

    Returns ``{"lanes": [...], "requests": [...], "makespan_s": ...}`` where
    each lane row carries its span count and busy seconds, and each request
    row aggregates one lifecycle phase (count, total and mean seconds) from
    the async events.  Works on any document :func:`validate_chrome_trace`
    accepts, including ones round-tripped through JSON.
    """
    events = document.get("traceEvents", [])
    thread_names: dict[tuple[object, object], str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            key = (event.get("pid"), event.get("tid"))
            thread_names[key] = str(event.get("args", {}).get("name", key))

    lane_busy: dict[str, float] = {}
    lane_count: dict[str, int] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        key = (event.get("pid"), event.get("tid"))
        lane = thread_names.get(key, str(key))
        lane_busy[lane] = lane_busy.get(lane, 0.0) + float(event["dur"]) / _TIME_SCALE
        lane_count[lane] = lane_count.get(lane, 0) + 1

    begins: dict[tuple[object, object, object], list[float]] = {}
    phase_totals: dict[str, list[float]] = {}
    for event in events:
        phase = event.get("ph")
        if phase not in ("b", "e"):
            continue
        key = (event.get("cat"), event.get("id"), event.get("name"))
        if phase == "b":
            begins.setdefault(key, []).append(float(event["ts"]))
        else:
            starts = begins.get(key)
            if starts:
                start = starts.pop()
                name = str(event.get("name"))
                phase_totals.setdefault(name, []).append(
                    (float(event["ts"]) - start) / _TIME_SCALE
                )

    makespan = 0.0
    for event in events:
        if isinstance(event.get("ts"), (int, float)):
            end = float(event["ts"]) + float(event.get("dur", 0.0))
            makespan = max(makespan, end / _TIME_SCALE)

    lanes = [
        {"lane": lane, "spans": lane_count[lane], "busy_s": lane_busy[lane]}
        for lane in sorted(lane_busy)
    ]
    requests = [
        {
            "phase": phase,
            "count": len(durations),
            "total_s": sum(durations),
            "mean_s": sum(durations) / len(durations),
        }
        for phase, durations in sorted(phase_totals.items())
    ]
    return {"lanes": lanes, "requests": requests, "makespan_s": makespan}


def load_chrome_trace(path: str | Path) -> dict[str, object]:
    """Read a Chrome trace JSON file."""
    return json.loads(Path(path).read_text())


def iter_lane_spans(
    document: Mapping[str, object],
) -> Iterable[tuple[str, float, float]]:
    """Yield ``(lane, start_s, duration_s)`` for every X event in a document."""
    events = document.get("traceEvents", [])
    thread_names: dict[tuple[object, object], str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            key = (event.get("pid"), event.get("tid"))
            thread_names[key] = str(event.get("args", {}).get("name", key))
    for event in events:
        if event.get("ph") != "X":
            continue
        key = (event.get("pid"), event.get("tid"))
        yield (
            thread_names.get(key, str(key)),
            float(event["ts"]) / _TIME_SCALE,
            float(event["dur"]) / _TIME_SCALE,
        )
