"""``repro-trace``: validate and summarise exported Chrome trace JSON.

A recorded serving trace (``repro-serve --trace trace.json``) is meant to
be opened in Perfetto, but CI and quick terminal triage need answers
without a UI: is the file schema-valid, how busy was each lane, and where
did requests spend their time.  This CLI prints exactly that:

```
$ repro-trace trace.json
$ repro-trace trace.json --validate        # exit 1 on schema errors
$ repro-trace trace.json --json            # machine-readable summary
```
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.obs.trace import (
    load_chrome_trace,
    summarize_chrome_trace,
    validate_chrome_trace,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Validate and summarise a Chrome trace-event JSON file recorded "
            "by the serving telemetry (repro-serve --trace)."
        ),
    )
    parser.add_argument("trace", help="path to the Chrome trace JSON file")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="schema-check only: exit 1 listing errors, print nothing else",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of tables",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point (installed as ``repro-trace``).

    Exit status: 0 on success, 1 on an invalid trace, 2 on an unreadable
    or unparsable file.
    """
    from repro.experiments.report import render_rows

    args = _build_parser().parse_args(argv)
    try:
        document = load_chrome_trace(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro-trace: error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2

    errors = validate_chrome_trace(document)
    if errors:
        for error in errors:
            print(f"repro-trace: invalid: {error}", file=sys.stderr)
        return 1
    if args.validate:
        print(f"{args.trace}: valid Chrome trace")
        return 0

    summary = summarize_chrome_trace(document)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    print(f"trace: {args.trace}  (makespan {summary['makespan_s']:.3f} s)")
    if summary["lanes"]:
        print(render_rows(summary["lanes"], title="lane occupancy", precision=4))
    if summary["requests"]:
        print(
            render_rows(
                summary["requests"], title="request phases", precision=4
            )
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
