"""Execution substrate: a discrete-event simulator of the CPU-GPU-I/O node.

The paper's CGOPipe contribution is a *schedule*: an ordering of compute
tasks and transfers across four independently progressing resources — the
GPU, the CPU, the host-to-device copy engine and the device-to-host copy
engine.  This package provides the substrate those schedules execute on:

* :mod:`repro.runtime.tasks` — task descriptions (kind, resource, duration,
  dependencies) and task-graph construction helpers.
* :mod:`repro.runtime.resources` — the four exclusive channels (plus
  convenience constructors for multi-slot resources).
* :mod:`repro.runtime.simulator` — a deterministic list-scheduling
  discrete-event simulator that executes a task graph and produces a trace.
* :mod:`repro.runtime.trace` — timeline traces with utilisation, bubble and
  critical-path accounting plus ASCII Gantt rendering (used to regenerate
  Fig. 6).
* :mod:`repro.runtime.memory_manager` — paged memory pools and page tables
  (Appendix A.1).
* :mod:`repro.runtime.weights` — the paged-weight manager with the
  ``2 x sizeof(W_L)`` double buffer and pinned-memory staging.
* :mod:`repro.runtime.kv_cache` — a paged KV cache with per-request block
  tables split across CPU and GPU pools.
* :mod:`repro.runtime.block_store` — shared, reference-counted KV blocks
  with prefix caching: content-hash-chained prompt blocks, copy-on-write
  on divergence, LRU eviction of unreferenced cache.
* :mod:`repro.runtime.costs` — task-duration model derived from the same
  operator FLOP/byte counts the analytical performance model uses.
"""

from repro.runtime.tasks import Task, TaskGraph, TaskKind
from repro.runtime.resources import Resource, ResourceKind, default_resources
from repro.runtime.simulator import SimulationResult, Simulator
from repro.runtime.trace import Trace, TraceEvent
from repro.runtime.memory_manager import MemoryPool, PageTable, PagedAllocation
from repro.runtime.weights import PagedWeightManager, WeightPage
from repro.runtime.block_store import BlockTable, KVBlock, SharedBlockStore
from repro.runtime.kv_cache import KVCacheManager, SequenceCache
from repro.runtime.costs import TaskCostModel

__all__ = [
    "Task",
    "TaskGraph",
    "TaskKind",
    "Resource",
    "ResourceKind",
    "default_resources",
    "SimulationResult",
    "Simulator",
    "Trace",
    "TraceEvent",
    "MemoryPool",
    "PageTable",
    "PagedAllocation",
    "PagedWeightManager",
    "WeightPage",
    "BlockTable",
    "KVBlock",
    "SharedBlockStore",
    "KVCacheManager",
    "SequenceCache",
    "TaskCostModel",
]
