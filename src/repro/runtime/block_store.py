"""Shared, reference-counted KV block store with prefix caching.

The per-sequence paged KV cache of :mod:`repro.runtime.kv_cache` gives every
sequence exclusive ownership of its pages.  This module replaces that
ownership model with a *shared block store* in the style of vLLM's prefix
caching / SGLang's RadixAttention:

* the KV cache is divided into fixed-size **blocks** of ``block_tokens``
  token positions (all layers of one block are stored together);
* a *full* block whose content is a pure function of the token prefix it
  holds carries a **chained content hash** (the hash of its tokens combined
  with the previous block's hash), so two sequences with the same prompt
  prefix map to the *same physical block*;
* blocks are **reference counted**: a block is shared by every sequence
  whose block table points at it, charged to the memory pools exactly once,
  and becomes evictable — not freed — when its refcount drops to zero;
* refcount-zero hashed blocks form the **prefix cache** and are reclaimed
  in LRU order only when an allocation actually needs their pages;
* a sequence that needs to *write into* a shared block (divergence below a
  cached prefix) triggers **copy-on-write**: it gets a private copy and
  drops its reference to the shared original.

Invariants (property-tested in ``tests/properties``):

* a refcount is never negative;
* bytes in use equal the sum over *unique* resident blocks — sharers are
  never double counted;
* eviction only ever selects blocks with a zero refcount;
* with no matching prefixes the store degenerates to per-sequence
  allocation: every block is private and freed as soon as its one owner
  releases it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

from repro.runtime.memory_manager import MemoryPool, PagedAllocation
from repro.utils.errors import MemoryManagerError
from repro.utils.validation import require_positive, require_positive_int

#: Multiplier of the polynomial rolling hash chaining tokens into block
#: hashes (CPython's own string-hash multiplier; any odd constant works).
_HASH_MULTIPLIER = 1000003
_HASH_MODULUS = 2**64


def chain_block_hashes(
    token_ids: Sequence[int], block_tokens: int
) -> list[int]:
    """Chained content hashes of every *full* block of ``token_ids``.

    Hash ``i`` covers tokens ``[0, (i + 1) * block_tokens)``: it mixes block
    ``i``'s tokens into block ``i - 1``'s hash, so equal hashes imply equal
    whole prefixes, not merely equal block contents.  The hash is a plain
    deterministic polynomial — stable across processes and runs.
    """
    require_positive_int("block_tokens", block_tokens)
    return list(_chain_block_hashes_cached(tuple(token_ids), block_tokens))


@lru_cache(maxsize=8192)
def _chain_block_hashes_cached(
    token_ids: tuple[int, ...], block_tokens: int
) -> tuple[int, ...]:
    """Memoised hashing: one admission hashes the same prompt several times
    (capacity check, registration, per-shard routing probes)."""
    hashes: list[int] = []
    value = 0x9E3779B97F4A7C15  # non-zero seed so a zero-token prefix hashes apart
    full_blocks = len(token_ids) // block_tokens
    for block_index in range(full_blocks):
        start = block_index * block_tokens
        for token in token_ids[start : start + block_tokens]:
            value = (value * _HASH_MULTIPLIER + int(token) + 1) % _HASH_MODULUS
        hashes.append(value)
    return tuple(hashes)


@dataclass(slots=True)
class KVBlock:
    """One fixed-size KV block: the unit of sharing, charging and eviction."""

    block_id: int
    num_tokens: int
    ref_count: int = 0
    block_hash: int | None = None
    cpu_allocation: PagedAllocation | None = None
    gpu_allocation: PagedAllocation | None = None
    last_use: int = 0
    #: Whether the block currently sits in the store's reusable cache
    #: (refcount zero, retained for prefix matching) and is therefore
    #: counted in the store's incremental reclaim totals.
    cached: bool = False
    #: Simulated instant the block entered the cache (idleness start);
    #: TTL eviction compares this against the session-idle cutoff.
    last_touch_time: float = 0.0

    @property
    def is_shareable(self) -> bool:
        """Whether the block is indexed by content (a full prefix block)."""
        return self.block_hash is not None

    @property
    def cpu_bytes(self) -> float:
        """CPU bytes charged for this block (page-rounded)."""
        return self.cpu_allocation.total_bytes if self.cpu_allocation else 0.0

    @property
    def gpu_bytes(self) -> float:
        """GPU bytes charged for this block (page-rounded)."""
        return self.gpu_allocation.total_bytes if self.gpu_allocation else 0.0


class SharedBlockStore:
    """Ref-counted KV blocks over CPU/GPU memory pools with LRU reuse.

    ``block_bytes`` is the full KV footprint of one block across all layers;
    ``gpu_ratio`` splits every block between the pools exactly as the
    policy's ``r_c`` splits per-sequence allocations in the unshared path.
    """

    def __init__(
        self,
        cpu_pool: MemoryPool,
        block_bytes: float,
        block_tokens: int,
        gpu_pool: MemoryPool | None = None,
        gpu_ratio: float = 0.0,
    ) -> None:
        require_positive("block_bytes", block_bytes)
        require_positive_int("block_tokens", block_tokens)
        if gpu_ratio > 0 and gpu_pool is None:
            raise MemoryManagerError(
                "gpu_ratio > 0 requires a GPU memory pool for the block store"
            )
        self.cpu_pool = cpu_pool
        self.gpu_pool = gpu_pool
        self.gpu_ratio = min(1.0, gpu_ratio)
        self.block_bytes = float(block_bytes)
        self.block_tokens = block_tokens
        # Every block charges the same byte split and hence the same page
        # counts; hoist them out of the per-block hot paths (allocate,
        # cache/uncache, admission capacity checks).
        gpu_block_bytes = self.block_bytes * self.gpu_ratio
        self._block_cpu_bytes = self.block_bytes - gpu_block_bytes
        self._block_gpu_bytes = gpu_block_bytes
        self._block_cpu_pages = cpu_pool.pages_needed(self._block_cpu_bytes)
        self._block_gpu_pages = (
            gpu_pool.pages_needed(gpu_block_bytes) if gpu_pool is not None else 0
        )
        self.blocks: dict[int, KVBlock] = {}
        self._hash_index: dict[int, int] = {}
        self._next_block_id = 0
        self._clock = 0
        self.evictions = 0
        self.ttl_evictions = 0
        self.crash_drops = 0
        self.cow_copies = 0
        #: Simulated time, advanced (monotonically) by the engine that owns
        #: the store; only consulted by TTL eviction, so stores driven
        #: without a clock behave exactly as before.
        self.clock_time = 0.0
        #: Bumped on every content-index mutation (block registered or
        #: evicted); routers memoise prefix matches against this, so a
        #: stale memo can never survive an index change.
        self.version = 0
        # Incremental accounting: every admission capacity check and every
        # telemetry snapshot used to scan all resident blocks, which made
        # long streams quadratic in the request count.  These counters
        # track the same totals under O(1) updates at each block
        # transition (allocate / refcount 0 <-> positive / free).
        self._total_cpu_pages = 0
        self._total_gpu_pages = 0
        self._cached_cpu_pages = 0
        self._cached_gpu_pages = 0
        self._num_cached = 0
        # LRU eviction order with lazy deletion: entries are
        # ``(last_use, block_id)`` pushed when a block enters the cache;
        # stale entries (block acquired again, re-cached later, or freed)
        # are skipped on pop by re-checking against the live block.
        self._lru_heap: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Introspection / accounting
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Resident blocks, referenced or cached."""
        return len(self.blocks)

    @property
    def num_cached_blocks(self) -> int:
        """Resident blocks with no referents (the reusable prefix cache)."""
        return self._num_cached

    def bytes_in_use(self, live_only: bool = False) -> tuple[float, float]:
        """(cpu, gpu) bytes charged across unique resident blocks.

        ``live_only`` restricts the sum to blocks with a positive refcount;
        either way each block is counted exactly once no matter how many
        sequences share it.  Allocations are whole pages, so page counters
        reproduce the per-block byte sum exactly.
        """
        cpu_pages = self._total_cpu_pages
        gpu_pages = self._total_gpu_pages
        if live_only:
            cpu_pages -= self._cached_cpu_pages
            gpu_pages -= self._cached_gpu_pages
        cpu = cpu_pages * self.cpu_pool.page_bytes
        gpu = gpu_pages * self.gpu_pool.page_bytes if self.gpu_pool else 0.0
        return cpu, gpu

    def occupancy(self) -> dict[str, float]:
        """Point-in-time occupancy snapshot (the telemetry sampler's view).

        ``blocks``/``cached_blocks`` count resident and reusable (refcount
        zero) blocks; byte totals count each unique block once, with the
        ``live_*`` pair restricted to referenced blocks.
        """
        cpu_bytes, gpu_bytes = self.bytes_in_use()
        live_cpu, live_gpu = self.bytes_in_use(live_only=True)
        return {
            "blocks": float(self.num_blocks),
            "cached_blocks": float(self.num_cached_blocks),
            "cpu_bytes": cpu_bytes,
            "gpu_bytes": gpu_bytes,
            "live_cpu_bytes": live_cpu,
            "live_gpu_bytes": live_gpu,
        }

    def _split_bytes(self) -> tuple[float, float]:
        return self._block_cpu_bytes, self._block_gpu_bytes

    def _evictable(self) -> list[KVBlock]:
        return sorted(
            (block for block in self.blocks.values() if block.ref_count == 0),
            key=lambda block: block.last_use,
        )

    def _cache(self, block: KVBlock) -> None:
        """Count a block entering the reusable cache (refcount hit zero)."""
        block.cached = True
        block.last_touch_time = self.clock_time
        self._num_cached += 1
        # Per-block page counts are store constants (zero for a pool the
        # split does not touch), so no allocation needs to be consulted.
        self._cached_cpu_pages += self._block_cpu_pages
        self._cached_gpu_pages += self._block_gpu_pages
        heapq.heappush(self._lru_heap, (block.last_use, block.block_id))

    def _uncache(self, block: KVBlock) -> None:
        """Count a block leaving the cache (re-acquired or freed)."""
        if not block.cached:
            return
        block.cached = False
        self._num_cached -= 1
        self._cached_cpu_pages -= self._block_cpu_pages
        self._cached_gpu_pages -= self._block_gpu_pages

    def _pop_lru_cached(self) -> KVBlock | None:
        """The least-recently-used cached block, skipping stale heap entries."""
        while self._lru_heap:
            last_use, block_id = heapq.heappop(self._lru_heap)
            block = self.blocks.get(block_id)
            if block is not None and block.cached and block.last_use == last_use:
                return block
        return None

    def allocatable_blocks(self) -> int:
        """Fresh blocks allocatable right now, counting evictable cache.

        The capacity half of :meth:`can_allocate_blocks` as a count instead
        of a verdict: how many blocks could be carved out of free pages plus
        everything LRU eviction could reclaim.  Routers use this as a KV
        headroom signal, so it runs in O(1) off the incremental counters.
        """
        limit: int | None = None
        if self._block_cpu_pages:
            available = self.cpu_pool.free_pages + self._cached_cpu_pages
            limit = available // self._block_cpu_pages
        if self._block_gpu_pages:
            assert self.gpu_pool is not None  # guaranteed by the constructor
            available = self.gpu_pool.free_pages + self._cached_gpu_pages
            gpu_limit = available // self._block_gpu_pages
            limit = gpu_limit if limit is None else min(limit, gpu_limit)
        return limit or 0

    def can_allocate_blocks(
        self, num_blocks: int, reserved_block_ids: Iterable[int] = ()
    ) -> bool:
        """Whether ``num_blocks`` fresh blocks could be carved out right now.

        Counts both free pages and the pages eviction could reclaim, minus
        the cached blocks in ``reserved_block_ids`` (a prefix match about to
        be acquired must not be double-counted as reclaimable).  Runs in
        O(reserved) off the incremental cache counters — this sits on the
        admission hot path, once per arrival.
        """
        if num_blocks <= 0:
            return True
        reserved_cached = 0
        blocks = self.blocks
        for block_id in set(reserved_block_ids):
            block = blocks.get(block_id)
            if block is not None and block.cached:
                reserved_cached += 1
        ok = True
        if self._block_cpu_pages:
            needed = self._block_cpu_pages * num_blocks
            reclaim = (
                self._cached_cpu_pages - reserved_cached * self._block_cpu_pages
            )
            ok = needed <= self.cpu_pool.free_pages + reclaim
        if ok and self._block_gpu_pages:
            assert self.gpu_pool is not None  # guaranteed by the constructor
            needed = self._block_gpu_pages * num_blocks
            reclaim = (
                self._cached_gpu_pages - reserved_cached * self._block_gpu_pages
            )
            ok = needed <= self.gpu_pool.free_pages + reclaim
        return ok

    # ------------------------------------------------------------------
    # Prefix matching
    # ------------------------------------------------------------------
    def match_prefix(self, token_ids: Sequence[int]) -> list[int]:
        """Resident block ids matching the longest cached prefix of a prompt.

        Only consecutive leading matches count (block ``i + 1`` can never be
        reused under a differing block ``i`` — its chained hash differs), and
        the match is capped one token short of the full prompt so prefill
        always has at least one token left to compute the first logits from.
        """
        if not token_ids:
            return []
        return self.match_prefix_hashes(
            chain_block_hashes(token_ids, self.block_tokens),
            len(token_ids) - 1,
        )

    @property
    def prefix_index(self) -> dict[int, int]:
        """The live content index (chained block hash -> resident block id).

        Exposed for read-only probing: routers that fan one prompt's hash
        chain across many shards walk this directly instead of paying a
        method call per shard.  Membership here is exactly what
        :meth:`match_prefix_hashes` tests, so ``hash in prefix_index`` per
        chain position reproduces its match depth.  Callers must never
        mutate it.
        """
        return self._hash_index

    def match_prefix_hashes(
        self, block_hashes: Sequence[int], matchable_tokens: int
    ) -> list[int]:
        """:meth:`match_prefix` over pre-computed chained block hashes.

        Routers probing many shards hash the prompt once and probe each
        shard's index with this, instead of re-hashing per shard.
        ``matchable_tokens`` carries :meth:`match_prefix`'s cap of one
        token short of the full prompt — the match depends on the prompt
        length, not just its hashes.
        """
        matched: list[int] = []
        for block_hash in block_hashes:
            if len(matched) * self.block_tokens + self.block_tokens > matchable_tokens:
                break
            block_id = self._hash_index.get(block_hash)
            if block_id is None:
                break
            matched.append(block_id)
        return matched

    # ------------------------------------------------------------------
    # Block lifecycle
    # ------------------------------------------------------------------
    def acquire(self, block_id: int) -> KVBlock:
        """Take a reference on a resident block (a prefix-cache hit)."""
        block = self._get(block_id)
        block.ref_count += 1
        if block.ref_count == 1:
            self._uncache(block)
        self._touch(block)
        return block

    def acquire_many(self, block_ids: Iterable[int]) -> None:
        """:meth:`acquire` a whole prefix match (same order, one call).

        Registration pins every matched block; doing it in one loop keeps
        the refcount/cache/LRU transitions identical to sequential
        acquires without a method call and double dict probe per block.
        """
        blocks = self.blocks
        clock = self._clock
        for block_id in block_ids:
            block = blocks.get(block_id)
            if block is None:
                raise MemoryManagerError(f"unknown block {block_id}")
            block.ref_count += 1
            if block.ref_count == 1:
                self._uncache(block)
            clock += 1
            block.last_use = clock
        self._clock = clock

    def allocate_block(
        self, num_tokens: int, block_hash: int | None = None
    ) -> KVBlock:
        """Allocate a fresh block (refcount 1), evicting LRU cache if needed.

        ``block_hash`` registers the block in the content index so later
        prompts can share it; a hash collision with a resident block keeps
        the incumbent (the new block stays private).
        """
        require_positive_int("num_tokens", num_tokens)
        if num_tokens > self.block_tokens:
            raise MemoryManagerError(
                f"block holds at most {self.block_tokens} tokens, got {num_tokens}"
            )
        self._reclaim_for(self._block_cpu_bytes, self._block_gpu_bytes)
        block = KVBlock(
            block_id=self._next_block_id,
            num_tokens=num_tokens,
            ref_count=1,
        )
        self._next_block_id += 1
        if self._block_cpu_pages:
            block.cpu_allocation = self.cpu_pool.take_pages(self._block_cpu_pages)
        if self._block_gpu_pages:
            assert self.gpu_pool is not None  # guaranteed by the constructor
            try:
                block.gpu_allocation = self.gpu_pool.take_pages(self._block_gpu_pages)
            except MemoryManagerError:
                # Roll the CPU share back: the block never becomes visible,
                # so nothing else can free those pages.
                if block.cpu_allocation is not None:
                    self.cpu_pool.free(block.cpu_allocation)
                raise
        if block_hash is not None and block_hash not in self._hash_index:
            block.block_hash = block_hash
            self._hash_index[block_hash] = block.block_id
            self.version += 1
        self.blocks[block.block_id] = block
        self._total_cpu_pages += self._block_cpu_pages
        self._total_gpu_pages += self._block_gpu_pages
        self._clock += 1
        block.last_use = self._clock
        return block

    def allocate_run(
        self,
        sizes: Sequence[int],
        hashes: Sequence[int | None],
        out_block_ids: list[int],
    ) -> None:
        """One prompt's worth of fresh blocks, as sequential allocations.

        Observably identical to calling :meth:`allocate_block` once per
        ``(size, hash)`` pair — same eviction points, ids, index/clock
        transitions — without the per-block method and validation
        overhead (registration is the allocation hot path: one run per
        admitted request).  Each committed block id is appended to
        ``out_block_ids`` immediately, so a mid-run pool failure leaves
        the committed prefix visible for the caller to release.  Callers
        guarantee every size lies in ``(0, block_tokens]``.
        """
        blocks = self.blocks
        hash_index = self._hash_index
        cpu_pool = self.cpu_pool
        gpu_pool = self.gpu_pool
        cpu_pages = self._block_cpu_pages
        gpu_pages = self._block_gpu_pages
        for num_tokens, block_hash in zip(sizes, hashes):
            if cpu_pages > cpu_pool.free_pages or (
                gpu_pages and gpu_pages > gpu_pool.free_pages
            ):
                self._reclaim_for(self._block_cpu_bytes, self._block_gpu_bytes)
            block = KVBlock(
                block_id=self._next_block_id,
                num_tokens=num_tokens,
                ref_count=1,
            )
            self._next_block_id += 1
            if cpu_pages:
                block.cpu_allocation = cpu_pool.take_pages(cpu_pages)
            if gpu_pages:
                assert gpu_pool is not None  # guaranteed by the constructor
                try:
                    block.gpu_allocation = gpu_pool.take_pages(gpu_pages)
                except MemoryManagerError:
                    if block.cpu_allocation is not None:
                        cpu_pool.free(block.cpu_allocation)
                    raise
            if block_hash is not None and block_hash not in hash_index:
                block.block_hash = block_hash
                hash_index[block_hash] = block.block_id
                self.version += 1
            blocks[block.block_id] = block
            self._total_cpu_pages += cpu_pages
            self._total_gpu_pages += gpu_pages
            self._clock += 1
            block.last_use = self._clock
            out_block_ids.append(block.block_id)

    def register_chain(
        self,
        matched_ids: Sequence[int],
        num_tokens: int,
        block_hashes: Sequence[int | None],
        out_block_ids: list[int],
    ) -> int:
        """Register one sequence's whole prefix chain in a single call.

        Fuses the admission/migration registration path — pin the prefix
        match (``matched_ids``), then carve the remaining ``num_tokens``
        minus cached tokens into fresh blocks tagged with the chain's
        remaining ``block_hashes`` — without the per-block loops and
        intermediate size/hash lists the caller used to build.  Observably
        identical to :meth:`acquire_many` followed by
        :meth:`allocate_block` per block: same eviction points, ids and
        index/clock transitions.  On a mid-run pool failure every block
        this call pinned or committed is released before re-raising, so
        the store is left exactly as found.  Returns the cached (matched)
        token count.
        """
        start = len(out_block_ids)
        try:
            if matched_ids:
                self.acquire_many(matched_ids)
                out_block_ids.extend(matched_ids)
            cached_tokens = len(matched_ids) * self.block_tokens
            remaining = num_tokens - cached_tokens
            if remaining > 0:
                blocks = self.blocks
                hash_index = self._hash_index
                cpu_pool = self.cpu_pool
                gpu_pool = self.gpu_pool
                cpu_pages = self._block_cpu_pages
                gpu_pages = self._block_gpu_pages
                block_tokens = self.block_tokens
                block_index = len(matched_ids)
                num_hashes = len(block_hashes)
                while remaining > 0:
                    take = (
                        block_tokens if remaining >= block_tokens else remaining
                    )
                    # A full block lying entirely inside the known prompt is
                    # content-addressable; later prompts can share it.
                    block_hash = (
                        block_hashes[block_index]
                        if take == block_tokens and block_index < num_hashes
                        else None
                    )
                    if cpu_pages > cpu_pool.free_pages or (
                        gpu_pages and gpu_pages > gpu_pool.free_pages
                    ):
                        self._reclaim_for(
                            self._block_cpu_bytes, self._block_gpu_bytes
                        )
                    block = KVBlock(
                        block_id=self._next_block_id,
                        num_tokens=take,
                        ref_count=1,
                    )
                    self._next_block_id += 1
                    if cpu_pages:
                        block.cpu_allocation = cpu_pool.take_pages(cpu_pages)
                    if gpu_pages:
                        assert gpu_pool is not None  # constructor guarantee
                        try:
                            block.gpu_allocation = gpu_pool.take_pages(
                                gpu_pages
                            )
                        except MemoryManagerError:
                            if block.cpu_allocation is not None:
                                cpu_pool.free(block.cpu_allocation)
                            raise
                    if block_hash is not None and block_hash not in hash_index:
                        block.block_hash = block_hash
                        hash_index[block_hash] = block.block_id
                        self.version += 1
                    blocks[block.block_id] = block
                    self._total_cpu_pages += cpu_pages
                    self._total_gpu_pages += gpu_pages
                    self._clock += 1
                    block.last_use = self._clock
                    out_block_ids.append(block.block_id)
                    remaining -= take
                    block_index += 1
        except MemoryManagerError:
            self.release_many(out_block_ids[start:])
            del out_block_ids[start:]
            raise
        return cached_tokens

    def append_to_block(self, block_id: int, num_tokens: int) -> KVBlock:
        """Grow a *private* partial block in place (decode-token append).

        Shared or content-indexed blocks are immutable; callers must
        copy-on-write first (:meth:`copy_on_write`).
        """
        require_positive_int("num_tokens", num_tokens)
        block = self._get(block_id)
        if block.ref_count != 1 or block.is_shareable:
            raise MemoryManagerError(
                f"block {block_id} is shared or content-indexed; "
                "copy-on-write before appending"
            )
        if block.num_tokens + num_tokens > self.block_tokens:
            raise MemoryManagerError(
                f"append of {num_tokens} tokens overflows block {block_id} "
                f"({block.num_tokens}/{self.block_tokens} used)"
            )
        block.num_tokens += num_tokens
        self._touch(block)
        return block

    def copy_on_write(self, block_id: int) -> KVBlock:
        """Diverge from a shared block: private copy, drop the shared ref.

        The copy charges its own pages (the defining cost of divergence);
        the original keeps its other sharers and its place in the content
        index.
        """
        original = self._get(block_id)
        if original.ref_count <= 0:
            raise MemoryManagerError(
                f"copy-on-write of unreferenced block {block_id}"
            )
        copy = self.allocate_block(original.num_tokens)
        self.release(block_id)
        self.cow_copies += 1
        return copy

    def release(self, block_id: int) -> None:
        """Drop one reference; free or retain the block at refcount zero.

        Hashed blocks are *retained* as prefix cache (freed only by LRU
        eviction under allocation pressure); private blocks can never be
        re-matched, so they are freed immediately.
        """
        block = self._get(block_id)
        if block.ref_count <= 0:
            raise MemoryManagerError(
                f"refcount underflow: block {block_id} released at "
                f"refcount {block.ref_count}"
            )
        block.ref_count -= 1
        if block.ref_count == 0:
            if block.is_shareable:
                self._touch(block)
                self._cache(block)
            else:
                self._free(block)

    def release_many(self, block_ids: Iterable[int]) -> None:
        """Release a sequence's whole block table (same order, one loop)."""
        blocks = self.blocks
        for block_id in block_ids:
            block = blocks.get(block_id)
            if block is None:
                raise MemoryManagerError(f"unknown block {block_id}")
            if block.ref_count <= 0:
                raise MemoryManagerError(
                    f"refcount underflow: block {block_id} released at "
                    f"refcount {block.ref_count}"
                )
            block.ref_count -= 1
            if block.ref_count == 0:
                if block.is_shareable:
                    self._touch(block)
                    self._cache(block)
                else:
                    self._free(block)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _reclaim_for(self, cpu_bytes: float, gpu_bytes: float) -> None:
        """Evict LRU refcount-zero blocks until one more block fits."""
        while not self._fits(cpu_bytes, gpu_bytes):
            victim = self._pop_lru_cached()
            if victim is None:
                # Nothing reclaimable: let the pool raise its usual
                # capacity error from the caller's allocate().
                return
            self._free(victim)
            self.evictions += 1

    def expire_idle(self, cutoff: float) -> int:
        """Free cached blocks idle since before ``cutoff`` (TTL eviction).

        A chat session that went quiet leaves its whole prefix chain parked
        in the cache; TTL eviction reclaims those pages ahead of allocation
        pressure.  Blocks are freed in LRU order off the existing lazy
        heap: the integer use clock is monotone in simulated time, so the
        heap head is also the oldest block by ``last_touch_time`` and the
        scan stops at the first survivor — O(evicted), not O(cached).
        Returns the number of blocks expired (also accumulated on
        ``ttl_evictions``).
        """
        expired = 0
        heap = self._lru_heap
        blocks = self.blocks
        while heap:
            last_use, block_id = heap[0]
            block = blocks.get(block_id)
            if block is None or not block.cached or block.last_use != last_use:
                heapq.heappop(heap)  # stale entry (re-acquired or freed)
                continue
            if block.last_touch_time > cutoff:
                break
            heapq.heappop(heap)
            self._free(block)
            expired += 1
        self.ttl_evictions += expired
        return expired

    def drop_all_cached(self) -> int:
        """Free every cached (refcount-zero) block: crash teardown.

        A crashed shard's prefix cache does not survive the device — after
        live sequences are released, this sweep frees the remaining cached
        blocks so the store's resident bytes return to zero and no dangling
        ``prefix_index`` entries survive.  Counted separately from capacity
        and TTL evictions (``crash_drops``).  Returns the number of blocks
        dropped.
        """
        dropped = 0
        while True:
            victim = self._pop_lru_cached()
            if victim is None:
                break
            self._free(victim)
            dropped += 1
        self.crash_drops += dropped
        return dropped

    def _fits(self, cpu_bytes: float, gpu_bytes: float) -> bool:
        # Only ever asked about one block's constant split, so the page
        # needs are the precomputed per-block counts.
        if self._block_cpu_pages > self.cpu_pool.free_pages:
            return False
        if self._block_gpu_pages:
            assert self.gpu_pool is not None  # guaranteed by the constructor
            if self._block_gpu_pages > self.gpu_pool.free_pages:
                return False
        return True

    def _free(self, block: KVBlock) -> None:
        if block.ref_count != 0:
            raise MemoryManagerError(
                f"attempted to free block {block.block_id} with "
                f"refcount {block.ref_count}"
            )
        self._uncache(block)
        if block.cpu_allocation is not None:
            self.cpu_pool.free(block.cpu_allocation)
            self._total_cpu_pages -= block.cpu_allocation.num_pages
        if block.gpu_allocation is not None:
            assert self.gpu_pool is not None  # allocation implies the pool
            self.gpu_pool.free(block.gpu_allocation)
            self._total_gpu_pages -= block.gpu_allocation.num_pages
        if block.block_hash is not None:
            self._hash_index.pop(block.block_hash, None)
            self.version += 1
        del self.blocks[block.block_id]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _get(self, block_id: int) -> KVBlock:
        if block_id not in self.blocks:
            raise MemoryManagerError(f"unknown block {block_id}")
        return self.blocks[block_id]

    def _touch(self, block: KVBlock) -> None:
        self._clock += 1
        block.last_use = self._clock


@dataclass
class BlockTable:
    """One sequence's ordered view into the shared store."""

    block_ids: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.block_ids)

    def __iter__(self):
        return iter(self.block_ids)
