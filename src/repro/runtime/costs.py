"""Task-duration model shared by every pipeline schedule.

Schedules describe *ordering*; this module supplies the durations of the
individual tasks they order, derived from the same analytical operator
costs and derated hardware peaks as the policy optimizer's performance
model.  Keeping one cost source for both the optimizer and the simulator is
deliberate: the paper argues relative policy quality is what the model must
predict, so all systems are simulated with identical task costs and differ
only in how their schedules arrange those tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.performance_model import EfficiencyModel
from repro.core.policy import Policy
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.models.flops import (
    attention_decode_cost,
    attention_prefill_cost,
    ffn_cost,
    layer_norm_cost,
    lm_head_cost,
    o_proj_cost,
    qkv_proj_cost,
)
from repro.models.memory import (
    attention_weight_bytes,
    kv_cache_bytes_per_token_per_layer,
    layer_weight_bytes,
)
from repro.utils.validation import require_non_negative, require_positive_int


@dataclass(frozen=True)
class TaskCostModel:
    """Durations (seconds) of the individual pipeline tasks."""

    model: ModelConfig
    hardware: HardwareSpec
    efficiency: EfficiencyModel = field(default_factory=EfficiencyModel)

    # ------------------------------------------------------------------
    # Effective rates
    # ------------------------------------------------------------------
    @property
    def gpu_flops(self) -> float:
        """Derated GPU FLOPs/s."""
        return self.hardware.gpu_flops * self.efficiency.gpu_compute

    @property
    def gpu_bandwidth(self) -> float:
        """Derated GPU HBM bandwidth."""
        return self.hardware.gpu_bandwidth * self.efficiency.gpu_memory

    @property
    def cpu_flops(self) -> float:
        """Derated CPU FLOPs/s."""
        return self.hardware.cpu_flops * self.efficiency.cpu_compute

    @property
    def cpu_bandwidth(self) -> float:
        """Derated CPU DRAM bandwidth."""
        return self.hardware.cpu_bandwidth * self.efficiency.cpu_memory

    @property
    def interconnect_bandwidth(self) -> float:
        """Derated PCIe bandwidth per direction."""
        return self.hardware.cpu_gpu_bandwidth * self.efficiency.interconnect

    @property
    def transfer_latency(self) -> float:
        """Fixed launch latency per DMA transfer."""
        return self.hardware.interconnect.latency

    # ------------------------------------------------------------------
    # Primitive timings
    # ------------------------------------------------------------------
    def _gpu_time(self, flops: float, local_bytes: float) -> float:
        return max(flops / self.gpu_flops, local_bytes / self.gpu_bandwidth)

    def _cpu_time(self, flops: float, local_bytes: float) -> float:
        return max(flops / self.cpu_flops, local_bytes / self.cpu_bandwidth)

    def transfer_time(self, num_bytes: float) -> float:
        """Duration of one DMA transfer of ``num_bytes``."""
        require_non_negative("num_bytes", num_bytes)
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.interconnect_bandwidth + self.transfer_latency

    # ------------------------------------------------------------------
    # Decode-stage compute tasks (per micro-batch, per layer)
    # ------------------------------------------------------------------
    def pre_attention(self, micro_batch: int) -> float:
        """Layer norm + QKV projection on the GPU."""
        require_positive_int("micro_batch", micro_batch)
        cost = layer_norm_cost(self.model, micro_batch).combine(
            qkv_proj_cost(self.model, micro_batch)
        )
        return self._gpu_time(cost.flops, cost.total_bytes)

    def post_attention(self, micro_batch: int, ffn_on_gpu: bool = True) -> float:
        """O projection (plus the MoE FFN when it runs on the GPU)."""
        require_positive_int("micro_batch", micro_batch)
        cost = o_proj_cost(self.model, micro_batch)
        if ffn_on_gpu:
            cost = cost.combine(ffn_cost(self.model, micro_batch))
        return self._gpu_time(cost.flops, cost.total_bytes)

    def cpu_attention(self, micro_batch: int, context_len: int) -> float:
        """Grouped-query attention core executed on the CPU."""
        cost = attention_decode_cost(self.model, micro_batch, context_len)
        return self._cpu_time(cost.flops, cost.total_bytes)

    def gpu_attention(self, micro_batch: int, context_len: int) -> float:
        """Attention core executed on the GPU over HBM-resident KV."""
        cost = attention_decode_cost(self.model, micro_batch, context_len)
        return self._gpu_time(cost.flops, cost.total_bytes)

    def cpu_ffn(self, micro_batch: int) -> float:
        """MoE FFN executed on the CPU (latency-oriented corner)."""
        cost = ffn_cost(self.model, micro_batch)
        return self._cpu_time(cost.flops, cost.total_bytes)

    def sample(self, batch_size: int) -> float:
        """LM head plus sampling for one decode step of the whole batch."""
        cost = lm_head_cost(self.model, batch_size)
        return self._gpu_time(cost.flops, cost.total_bytes)

    # ------------------------------------------------------------------
    # Transfer tasks
    # ------------------------------------------------------------------
    def weight_page_transfer(self, policy: Policy) -> float:
        """One paged weight transfer (streamed layer bytes / pages-per-layer)."""
        return self.transfer_time(self.streamed_layer_bytes(policy) / max(1, policy.num_micro_batches))

    def weight_layer_transfer(self, policy: Policy) -> float:
        """A whole layer's streamed weights moved as one monolithic transfer."""
        return self.transfer_time(self.streamed_layer_bytes(policy))

    def streamed_layer_bytes(self, policy: Policy) -> float:
        """Bytes of one layer's weights streamed from the CPU."""
        per_layer = layer_weight_bytes(self.model)
        if not policy.ffn_on_gpu:
            per_layer = attention_weight_bytes(self.model)
        return policy.weights_cpu_ratio * per_layer

    def qkv_offload(self, micro_batch: int) -> float:
        """Q + new K/V moved GPU -> CPU for CPU attention (D1)."""
        require_positive_int("micro_batch", micro_batch)
        num_bytes = (
            micro_batch
            * (self.model.hidden_size + 2 * self.model.kv_dim)
            * self.model.dtype.num_bytes
        )
        return self.transfer_time(num_bytes)

    def hidden_load(self, micro_batch: int) -> float:
        """Attention-output hidden states moved CPU -> GPU (D2)."""
        require_positive_int("micro_batch", micro_batch)
        num_bytes = micro_batch * self.model.hidden_size * self.model.dtype.num_bytes
        return self.transfer_time(num_bytes)

    def hidden_offload(self, micro_batch: int) -> float:
        """Hidden states moved GPU -> CPU (CPU-FFN corner)."""
        return self.hidden_load(micro_batch)

    def kv_transfer(self, micro_batch: int, context_len: int, cpu_ratio: float = 1.0) -> float:
        """A micro-batch's KV cache moved CPU -> GPU for GPU attention (D4)."""
        require_positive_int("micro_batch", micro_batch)
        require_positive_int("context_len", context_len)
        num_bytes = (
            cpu_ratio
            * micro_batch
            * context_len
            * kv_cache_bytes_per_token_per_layer(self.model)
        )
        return self.transfer_time(num_bytes)

    def kv_offload(self, micro_batch: int, num_tokens: int = 1) -> float:
        """Freshly produced K/V moved GPU -> CPU after attention."""
        require_positive_int("micro_batch", micro_batch)
        require_positive_int("num_tokens", num_tokens)
        num_bytes = (
            micro_batch
            * num_tokens
            * kv_cache_bytes_per_token_per_layer(self.model)
        )
        return self.transfer_time(num_bytes)

    # ------------------------------------------------------------------
    # Prefill
    # ------------------------------------------------------------------
    def prefill_layer(self, micro_batch: int, prompt_len: int) -> float:
        """GPU compute time of one layer's prefill for one micro-batch."""
        require_positive_int("micro_batch", micro_batch)
        require_positive_int("prompt_len", prompt_len)
        tokens = micro_batch * prompt_len
        cost = (
            layer_norm_cost(self.model, tokens)
            .combine(qkv_proj_cost(self.model, tokens))
            .combine(attention_prefill_cost(self.model, micro_batch, prompt_len))
            .combine(o_proj_cost(self.model, tokens))
            .combine(ffn_cost(self.model, tokens))
        )
        return self._gpu_time(cost.flops, cost.total_bytes)

    def prefill_kv_offload(self, micro_batch: int, prompt_len: int) -> float:
        """Prompt KV for one micro-batch of one layer moved GPU -> CPU."""
        return self.transfer_time(
            micro_batch
            * prompt_len
            * kv_cache_bytes_per_token_per_layer(self.model)
        )
