"""Paged KV cache split across CPU and GPU memory pools.

Each sequence owns a block table mapping logical KV blocks (a fixed number
of token positions per layer) to physical pages in either the CPU or the GPU
pool, following the policy's ``r_c`` split.  The functional engine uses the
manager to track real tensors; the simulated systems use it for capacity
accounting and to size KV-transfer tasks.

With ``prefix_cache=True`` the ownership model changes from per-sequence
allocations to the shared, reference-counted block store of
:mod:`repro.runtime.block_store`: sequences whose prompts share a token
prefix share the physical blocks holding it (charged once), finished
sequences leave their full prompt blocks behind as reusable cache, and
unreferenced cache is evicted LRU only under allocation pressure.  With the
flag off (the default) behaviour is bit-for-bit the original per-sequence
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.models.config import ModelConfig
from repro.models.memory import kv_cache_bytes_per_token_per_layer
from repro.runtime.block_store import BlockTable, SharedBlockStore, chain_block_hashes
from repro.runtime.memory_manager import MemoryPool, PagedAllocation
from repro.utils.errors import MemoryManagerError
from repro.utils.validation import require_non_negative, require_positive_int


@dataclass
class SequenceCache:
    """KV bookkeeping for one sequence: its length and page allocations.

    In the per-sequence regime the sequence owns ``cpu_allocations`` /
    ``gpu_allocations`` outright; in the shared regime ``block_table``
    references (possibly shared) blocks in the store and ``cached_tokens``
    records how much of the prompt was a prefix-cache hit.
    """

    sequence_id: int
    num_tokens: int = 0
    cpu_allocations: list[PagedAllocation] = field(default_factory=list)
    gpu_allocations: list[PagedAllocation] = field(default_factory=list)
    block_table: BlockTable | None = None
    cached_tokens: int = 0

    @property
    def cpu_bytes(self) -> float:
        """Bytes of this sequence's cache held in CPU memory."""
        return sum(allocation.total_bytes for allocation in self.cpu_allocations)

    @property
    def gpu_bytes(self) -> float:
        """Bytes of this sequence's cache held in GPU memory."""
        return sum(allocation.total_bytes for allocation in self.gpu_allocations)


class KVCacheManager:
    """Allocates and tracks the paged KV cache for a batch of sequences."""

    def __init__(
        self,
        model: ModelConfig,
        cpu_pool: MemoryPool,
        gpu_pool: MemoryPool | None = None,
        gpu_ratio: float = 0.0,
        block_tokens: int = 16,
        prefix_cache: bool = False,
    ) -> None:
        require_non_negative("gpu_ratio", gpu_ratio)
        require_positive_int("block_tokens", block_tokens)
        if gpu_ratio > 0 and gpu_pool is None:
            raise MemoryManagerError(
                "gpu_ratio > 0 requires a GPU memory pool for the KV cache"
            )
        self.model = model
        self.cpu_pool = cpu_pool
        self.gpu_pool = gpu_pool
        self.gpu_ratio = min(1.0, gpu_ratio)
        self.block_tokens = block_tokens
        # The per-token KV footprint is a pure function of the model; cache
        # it once instead of re-deriving it on every admission check.
        self._bytes_per_token = (
            kv_cache_bytes_per_token_per_layer(model) * model.num_layers
        )
        self.sequences: dict[int, SequenceCache] = {}
        # One-entry match memo: the admission path matches the same hash
        # chain twice back-to-back (capacity check, then registration) with
        # no store mutation in between.  Keyed on chain identity and the
        # store's content-index version so any insert/evict invalidates it.
        self._match_memo: tuple | None = None
        self.block_store: SharedBlockStore | None = None
        if prefix_cache:
            self.block_store = SharedBlockStore(
                cpu_pool=cpu_pool,
                block_bytes=block_tokens * self.bytes_per_token(),
                block_tokens=block_tokens,
                gpu_pool=gpu_pool,
                gpu_ratio=self.gpu_ratio,
            )

    @property
    def prefix_cache_enabled(self) -> bool:
        """Whether the shared block store backs this manager."""
        return self.block_store is not None

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    def bytes_per_token(self) -> float:
        """KV bytes per token across all layers."""
        return self._bytes_per_token

    def bytes_for_tokens(self, num_tokens: int) -> float:
        """KV bytes for ``num_tokens`` tokens across all layers."""
        require_non_negative("num_tokens", num_tokens)
        return num_tokens * self.bytes_per_token()

    def _blocks_for_tokens(self, num_tokens: int) -> int:
        return -(-num_tokens // self.block_tokens)

    def headroom_tokens(self) -> int:
        """Tokens of fresh KV the pools could still take on (routing signal).

        In the shared regime this counts evictable cache as available — the
        same accounting :meth:`can_admit` uses — so headroom only shrinks
        when pages are pinned by live sequences.  It is a capacity signal,
        not an admission guarantee: prefix hits make real requests cheaper
        than this projects.
        """
        if self.block_store is not None:
            return self.block_store.allocatable_blocks() * self.block_tokens
        per_token = self.bytes_per_token()
        gpu_share = per_token * self.gpu_ratio
        cpu_share = per_token - gpu_share
        limit = float("inf")
        if cpu_share > 0:
            free = self.cpu_pool.free_pages * self.cpu_pool.page_bytes
            limit = free / cpu_share
        if gpu_share > 0:
            assert self.gpu_pool is not None  # guaranteed by the constructor
            free = self.gpu_pool.free_pages * self.gpu_pool.page_bytes
            limit = min(limit, free / gpu_share)
        return int(limit) if limit != float("inf") else 0

    # ------------------------------------------------------------------
    # Prefix matching
    # ------------------------------------------------------------------
    def match_prefix(self, token_ids: Sequence[int] | None) -> int:
        """Prompt tokens reusable from the shared cache (0 when disabled).

        Matches whole blocks only and never the entire prompt — prefill must
        always compute at least one token to produce the first logits.
        """
        if self.block_store is None or not token_ids:
            return 0
        return len(self.block_store.match_prefix(token_ids)) * self.block_tokens

    def match_prefix_hashes(
        self, block_hashes: Sequence[int], matchable_tokens: int
    ) -> int:
        """:meth:`match_prefix` over pre-computed chained block hashes.

        ``matchable_tokens`` is ``len(token_ids) - 1`` for the prompt the
        hashes came from (the never-match-the-whole-prompt cap).
        """
        if self.block_store is None:
            return 0
        matched = self.block_store.match_prefix_hashes(
            block_hashes, matchable_tokens
        )
        return len(matched) * self.block_tokens

    # ------------------------------------------------------------------
    # Sequence lifecycle
    # ------------------------------------------------------------------
    def register_sequence(
        self,
        sequence_id: int,
        prompt_tokens: int,
        token_ids: Sequence[int] | None = None,
        block_hashes: Sequence[int] | None = None,
        matchable_tokens: int | None = None,
    ) -> SequenceCache:
        """Create bookkeeping for a sequence and allocate its prompt cache.

        ``token_ids`` (shared regime only) identifies the prompt content for
        prefix matching; it may be shorter than ``prompt_tokens`` when the
        reservation also covers tokens to be generated, or when a padded
        system charges more positions than the prompt holds.  Alternatively
        the caller can pass the prompt's pre-computed chained
        ``block_hashes`` plus ``matchable_tokens`` (``prompt length - 1``)
        directly — bit-identical matching and block tagging without token
        ids ever existing.
        """
        require_positive_int("prompt_tokens", prompt_tokens)
        if sequence_id in self.sequences:
            raise MemoryManagerError(f"sequence {sequence_id} already registered")
        if self.block_store is not None:
            return self._register_shared(
                sequence_id,
                prompt_tokens,
                token_ids,
                block_hashes=block_hashes,
                matchable_tokens=matchable_tokens,
            )
        cache = SequenceCache(sequence_id=sequence_id)
        self.sequences[sequence_id] = cache
        self.append_tokens(sequence_id, prompt_tokens)
        return cache

    def _register_shared(
        self,
        sequence_id: int,
        num_tokens: int,
        token_ids: Sequence[int] | None,
        block_hashes: Sequence[int] | None = None,
        matchable_tokens: int | None = None,
    ) -> SequenceCache:
        store = self.block_store
        assert store is not None  # caller guarantees the shared regime
        table = BlockTable()
        cache = SequenceCache(
            sequence_id=sequence_id, block_table=table, cached_tokens=0
        )
        if block_hashes is None:
            tokens = tuple(token_ids) if token_ids else ()
            block_hashes = chain_block_hashes(tokens, self.block_tokens)
            matchable_tokens = len(tokens) - 1
        elif matchable_tokens is None:
            raise MemoryManagerError(
                "block_hashes requires matchable_tokens"
            )
        matched_ids = self._match_hashes_memo(block_hashes, matchable_tokens)
        # Blocks beyond the reservation are matchable but useless here
        # (shorter re-issue of a longer cached prompt).
        matched_ids = matched_ids[: num_tokens // self.block_tokens]
        cache.cached_tokens = store.register_chain(
            matched_ids, num_tokens, block_hashes, table.block_ids
        )
        cache.num_tokens = num_tokens
        self.sequences[sequence_id] = cache
        return cache

    def _match_hashes_memo(
        self, block_hashes: Sequence[int], matchable_tokens: int
    ) -> list[int]:
        """Prefix match with a one-entry memo over the admit double-probe.

        :meth:`can_admit` and :meth:`register_sequence` run back-to-back on
        the same chain with nothing mutating the store between them; the
        memo hits on chain *identity* (columnar requests carry one stored
        tuple) and is invalidated by the store's content-index ``version``,
        which bumps on every insert or eviction — so a hit is always
        exactly what a fresh probe would return.
        """
        store = self.block_store
        assert store is not None  # callers guarantee the shared regime
        memo = self._match_memo
        if (
            memo is not None
            and memo[0] is block_hashes
            and memo[1] == matchable_tokens
            and memo[2] == store.version
        ):
            return memo[3]
        matched = store.match_prefix_hashes(block_hashes, matchable_tokens)
        self._match_memo = (block_hashes, matchable_tokens, store.version, matched)
        return matched

    def append_tokens(self, sequence_id: int, num_tokens: int) -> None:
        """Grow a sequence's cache by ``num_tokens`` decode/prefill tokens."""
        require_positive_int("num_tokens", num_tokens)
        cache = self._get(sequence_id)
        if self.block_store is not None:
            self._append_shared(cache, num_tokens)
            return
        total_bytes = self.bytes_for_tokens(num_tokens)
        gpu_bytes = total_bytes * self.gpu_ratio
        cpu_bytes = total_bytes - gpu_bytes
        if cpu_bytes > 0:
            cache.cpu_allocations.append(self.cpu_pool.allocate(cpu_bytes))
        if gpu_bytes > 0:
            assert self.gpu_pool is not None  # guaranteed by the constructor
            cache.gpu_allocations.append(self.gpu_pool.allocate(gpu_bytes))
        cache.num_tokens += num_tokens

    def _append_shared(self, cache: SequenceCache, num_tokens: int) -> None:
        store = self.block_store
        assert store is not None  # caller guarantees the shared regime
        table = cache.block_table
        assert table is not None  # shared sequences always carry a table
        remaining = num_tokens
        while remaining > 0:
            tail = store.blocks[table.block_ids[-1]] if table.block_ids else None
            if tail is not None and tail.num_tokens < self.block_tokens:
                if tail.ref_count > 1 or tail.is_shareable:
                    # Divergence below a shared block: copy-on-write gives
                    # this sequence a private, writable tail.  Registration
                    # only ever shares *full* blocks, so today this guard is
                    # defensive; it becomes load-bearing the moment partial
                    # or decode blocks enter the content index.
                    tail = store.copy_on_write(tail.block_id)
                    table.block_ids[-1] = tail.block_id
                take = min(self.block_tokens - tail.num_tokens, remaining)
                store.append_to_block(tail.block_id, take)
            else:
                take = min(self.block_tokens, remaining)
                block = store.allocate_block(take)
                table.block_ids.append(block.block_id)
            remaining -= take
        cache.num_tokens += num_tokens

    def release_sequence(self, sequence_id: int) -> None:
        """Free every page owned by a finished sequence.

        In the shared regime this drops one reference per block: private
        blocks free immediately, content-indexed prompt blocks stay resident
        as prefix cache until eviction selects them.
        """
        cache = self._get(sequence_id)
        if self.block_store is not None:
            assert cache.block_table is not None
            self.block_store.release_many(cache.block_table.block_ids)
            del self.sequences[sequence_id]
            return
        for allocation in cache.cpu_allocations:
            self.cpu_pool.free(allocation)
        if self.gpu_pool is not None:
            for allocation in cache.gpu_allocations:
                self.gpu_pool.free(allocation)
        del self.sequences[sequence_id]

    def release_all(self) -> None:
        """Free every sequence (end of a batch)."""
        for sequence_id in list(self.sequences):
            self.release_sequence(sequence_id)

    def _get(self, sequence_id: int) -> SequenceCache:
        if sequence_id not in self.sequences:
            raise MemoryManagerError(f"unknown sequence {sequence_id}")
        return self.sequences[sequence_id]

    # ------------------------------------------------------------------
    # Aggregate accounting
    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        """Tokens cached across all live sequences."""
        return sum(cache.num_tokens for cache in self.sequences.values())

    @property
    def cpu_bytes(self) -> float:
        """Total CPU bytes held by live sequences (shared blocks counted once)."""
        if self.block_store is not None:
            return self.block_store.bytes_in_use(live_only=True)[0]
        return sum(cache.cpu_bytes for cache in self.sequences.values())

    @property
    def gpu_bytes(self) -> float:
        """Total GPU bytes held by live sequences (shared blocks counted once)."""
        if self.block_store is not None:
            return self.block_store.bytes_in_use(live_only=True)[1]
        return sum(cache.gpu_bytes for cache in self.sequences.values())

    def occupancy(self) -> dict[str, float]:
        """Point-in-time cache occupancy for the telemetry sampler.

        In the shared regime this is the block store's view (resident and
        cached block counts plus byte totals); otherwise block counts are
        zero and bytes come from the live per-sequence caches.
        """
        if self.block_store is not None:
            report = self.block_store.occupancy()
        else:
            report = {
                "blocks": 0.0,
                "cached_blocks": 0.0,
                "cpu_bytes": self.cpu_bytes,
                "gpu_bytes": self.gpu_bytes,
            }
        report["tokens"] = float(self.total_tokens)
        return report

    def can_admit(
        self,
        prompt_tokens: int,
        generation_len: int,
        token_ids: Sequence[int] | None = None,
        block_hashes: Sequence[int] | None = None,
        matchable_tokens: int | None = None,
    ) -> bool:
        """Whether a new request fits the pools at its end-of-generation size.

        In the shared regime the footprint is *incremental*: blocks covered
        by a cached prefix of ``token_ids`` (or of the pre-hashed
        ``block_hashes`` chain with its ``matchable_tokens`` cap) cost
        nothing new, and pages held by evictable (unreferenced) cache count
        as available.
        """
        require_positive_int("prompt_tokens", prompt_tokens)
        require_non_negative("generation_len", generation_len)
        if self.block_store is not None:
            total_blocks = self._blocks_for_tokens(prompt_tokens + generation_len)
            if block_hashes is not None:
                if matchable_tokens is None:
                    raise MemoryManagerError(
                        "block_hashes requires matchable_tokens"
                    )
                matched = self._match_hashes_memo(block_hashes, matchable_tokens)
            else:
                matched = self.block_store.match_prefix(token_ids or ())
            matched = matched[: (prompt_tokens + generation_len) // self.block_tokens]
            return self.block_store.can_allocate_blocks(
                total_blocks - len(matched), reserved_block_ids=matched
            )
        total_bytes = self.bytes_for_tokens(prompt_tokens + generation_len)
        gpu_bytes = total_bytes * self.gpu_ratio
        cpu_bytes = total_bytes - gpu_bytes
        cpu_ok = self.cpu_pool.can_allocate(cpu_bytes)
        gpu_ok = True
        if gpu_bytes > 0:
            gpu_ok = self.gpu_pool is not None and self.gpu_pool.can_allocate(gpu_bytes)
        return cpu_ok and gpu_ok
