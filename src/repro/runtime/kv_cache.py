"""Paged KV cache split across CPU and GPU memory pools.

Each sequence owns a block table mapping logical KV blocks (a fixed number
of token positions per layer) to physical pages in either the CPU or the GPU
pool, following the policy's ``r_c`` split.  The functional engine uses the
manager to track real tensors; the simulated systems use it for capacity
accounting and to size KV-transfer tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.config import ModelConfig
from repro.models.memory import kv_cache_bytes_per_token_per_layer
from repro.runtime.memory_manager import MemoryPool, PagedAllocation
from repro.utils.errors import MemoryManagerError
from repro.utils.validation import require_non_negative, require_positive_int


@dataclass
class SequenceCache:
    """KV bookkeeping for one sequence: its length and page allocations."""

    sequence_id: int
    num_tokens: int = 0
    cpu_allocations: list[PagedAllocation] = field(default_factory=list)
    gpu_allocations: list[PagedAllocation] = field(default_factory=list)

    @property
    def cpu_bytes(self) -> float:
        """Bytes of this sequence's cache held in CPU memory."""
        return sum(allocation.total_bytes for allocation in self.cpu_allocations)

    @property
    def gpu_bytes(self) -> float:
        """Bytes of this sequence's cache held in GPU memory."""
        return sum(allocation.total_bytes for allocation in self.gpu_allocations)


class KVCacheManager:
    """Allocates and tracks the paged KV cache for a batch of sequences."""

    def __init__(
        self,
        model: ModelConfig,
        cpu_pool: MemoryPool,
        gpu_pool: MemoryPool | None = None,
        gpu_ratio: float = 0.0,
        block_tokens: int = 16,
    ) -> None:
        require_non_negative("gpu_ratio", gpu_ratio)
        require_positive_int("block_tokens", block_tokens)
        if gpu_ratio > 0 and gpu_pool is None:
            raise MemoryManagerError(
                "gpu_ratio > 0 requires a GPU memory pool for the KV cache"
            )
        self.model = model
        self.cpu_pool = cpu_pool
        self.gpu_pool = gpu_pool
        self.gpu_ratio = min(1.0, gpu_ratio)
        self.block_tokens = block_tokens
        self.sequences: dict[int, SequenceCache] = {}

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    def bytes_per_token(self) -> float:
        """KV bytes per token across all layers."""
        return kv_cache_bytes_per_token_per_layer(self.model) * self.model.num_layers

    def bytes_for_tokens(self, num_tokens: int) -> float:
        """KV bytes for ``num_tokens`` tokens across all layers."""
        require_non_negative("num_tokens", num_tokens)
        return num_tokens * self.bytes_per_token()

    # ------------------------------------------------------------------
    # Sequence lifecycle
    # ------------------------------------------------------------------
    def register_sequence(self, sequence_id: int, prompt_tokens: int) -> SequenceCache:
        """Create bookkeeping for a sequence and allocate its prompt cache."""
        require_positive_int("prompt_tokens", prompt_tokens)
        if sequence_id in self.sequences:
            raise MemoryManagerError(f"sequence {sequence_id} already registered")
        cache = SequenceCache(sequence_id=sequence_id)
        self.sequences[sequence_id] = cache
        self.append_tokens(sequence_id, prompt_tokens)
        return cache

    def append_tokens(self, sequence_id: int, num_tokens: int) -> None:
        """Grow a sequence's cache by ``num_tokens`` decode/prefill tokens."""
        require_positive_int("num_tokens", num_tokens)
        cache = self._get(sequence_id)
        total_bytes = self.bytes_for_tokens(num_tokens)
        gpu_bytes = total_bytes * self.gpu_ratio
        cpu_bytes = total_bytes - gpu_bytes
        if cpu_bytes > 0:
            cache.cpu_allocations.append(self.cpu_pool.allocate(cpu_bytes))
        if gpu_bytes > 0:
            assert self.gpu_pool is not None  # guaranteed by the constructor
            cache.gpu_allocations.append(self.gpu_pool.allocate(gpu_bytes))
        cache.num_tokens += num_tokens

    def release_sequence(self, sequence_id: int) -> None:
        """Free every page owned by a finished sequence."""
        cache = self._get(sequence_id)
        for allocation in cache.cpu_allocations:
            self.cpu_pool.free(allocation)
        if self.gpu_pool is not None:
            for allocation in cache.gpu_allocations:
                self.gpu_pool.free(allocation)
        del self.sequences[sequence_id]

    def release_all(self) -> None:
        """Free every sequence (end of a batch)."""
        for sequence_id in list(self.sequences):
            self.release_sequence(sequence_id)

    def _get(self, sequence_id: int) -> SequenceCache:
        if sequence_id not in self.sequences:
            raise MemoryManagerError(f"unknown sequence {sequence_id}")
        return self.sequences[sequence_id]

    # ------------------------------------------------------------------
    # Aggregate accounting
    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        """Tokens cached across all live sequences."""
        return sum(cache.num_tokens for cache in self.sequences.values())

    @property
    def cpu_bytes(self) -> float:
        """Total CPU bytes held by the cache."""
        return sum(cache.cpu_bytes for cache in self.sequences.values())

    @property
    def gpu_bytes(self) -> float:
        """Total GPU bytes held by the cache."""
        return sum(cache.gpu_bytes for cache in self.sequences.values())

    def can_admit(self, prompt_tokens: int, generation_len: int) -> bool:
        """Whether a new request fits the pools at its end-of-generation size."""
        require_positive_int("prompt_tokens", prompt_tokens)
        require_non_negative("generation_len", generation_len)
        total_bytes = self.bytes_for_tokens(prompt_tokens + generation_len)
        gpu_bytes = total_bytes * self.gpu_ratio
        cpu_bytes = total_bytes - gpu_bytes
        cpu_ok = self.cpu_pool.can_allocate(cpu_bytes)
        gpu_ok = True
        if gpu_bytes > 0:
            gpu_ok = self.gpu_pool is not None and self.gpu_pool.can_allocate(gpu_bytes)
        return cpu_ok and gpu_ok
