"""Paged memory pools and page tables (paper Appendix A.1).

MoE-Lightning stores streamed weights and the KV cache in fixed-size pages:
kernels address them through a page table (Fig. 11), transfers move whole
pages, and the allocator never needs to find large contiguous regions.  This
module provides a deliberately simple but fully functional paged allocator
that the weight manager, the KV cache and the functional engine share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.errors import MemoryManagerError
from repro.utils.validation import require_positive, require_positive_int


@dataclass(frozen=True, slots=True)
class PagedAllocation:
    """A set of pages handed out by a :class:`MemoryPool`."""

    pool_name: str
    pages: tuple[int, ...]
    page_bytes: float

    @property
    def num_pages(self) -> int:
        """Number of pages in the allocation."""
        return len(self.pages)

    @property
    def total_bytes(self) -> float:
        """Capacity of the allocation in bytes."""
        return self.num_pages * self.page_bytes


class MemoryPool:
    """A fixed-capacity pool of equally sized pages.

    Models one physical memory (GPU HBM, CPU DRAM or the pinned staging
    area).  Allocation returns page indices; freeing returns them to the
    free list.  Double frees and foreign pages raise
    :class:`MemoryManagerError`.
    """

    def __init__(self, name: str, capacity_bytes: float, page_bytes: float) -> None:
        require_positive("capacity_bytes", capacity_bytes)
        require_positive("page_bytes", page_bytes)
        self.name = name
        self.page_bytes = float(page_bytes)
        self.num_pages = int(capacity_bytes // page_bytes)
        if self.num_pages <= 0:
            raise MemoryManagerError(
                f"pool {name!r}: capacity {capacity_bytes} is smaller than one "
                f"page of {page_bytes} bytes"
            )
        self._free: list[int] = list(range(self.num_pages - 1, -1, -1))
        self._allocated: set[int] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> float:
        """Total pool capacity in bytes."""
        return self.num_pages * self.page_bytes

    @property
    def free_pages(self) -> int:
        """Number of pages currently available."""
        return len(self._free)

    @property
    def used_pages(self) -> int:
        """Number of pages currently allocated."""
        return len(self._allocated)

    @property
    def used_bytes(self) -> float:
        """Bytes currently allocated."""
        return self.used_pages * self.page_bytes

    @property
    def utilization(self) -> float:
        """Fraction of the pool currently allocated."""
        return self.used_pages / self.num_pages

    def pages_needed(self, num_bytes: float) -> int:
        """Pages required to hold ``num_bytes``."""
        if num_bytes <= 0:
            return 0
        return int(-(-num_bytes // self.page_bytes))

    def can_allocate(self, num_bytes: float) -> bool:
        """Whether an allocation of ``num_bytes`` would currently succeed."""
        return self.pages_needed(num_bytes) <= self.free_pages

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, num_bytes: float) -> PagedAllocation:
        """Allocate enough pages for ``num_bytes``.

        Raises :class:`MemoryManagerError` when the pool cannot satisfy the
        request — the paged design means fragmentation can never be the
        reason, only true capacity exhaustion.
        """
        needed = self.pages_needed(num_bytes)
        if needed > self.free_pages:
            raise MemoryManagerError(
                f"pool {self.name!r}: requested {needed} pages "
                f"({num_bytes / 1e6:.1f} MB) but only {self.free_pages} free"
            )
        # One slice instead of ``needed`` pops — same pages in the same
        # (reverse-of-free-list) order, without the per-page call overhead.
        free = self._free
        start = len(free) - needed
        pages = tuple(reversed(free[start:]))
        del free[start:]
        self._allocated.update(pages)
        return PagedAllocation(pool_name=self.name, pages=pages, page_bytes=self.page_bytes)

    def allocate_pages(self, num_pages: int) -> PagedAllocation:
        """Allocate an exact number of pages."""
        require_positive_int("num_pages", num_pages)
        return self.allocate(num_pages * self.page_bytes)

    def take_pages(self, needed: int) -> PagedAllocation:
        """Allocate exactly ``needed`` already-rounded pages.

        Hot-path variant of :meth:`allocate` for callers that charge the
        same page count on every call (the shared block store): the ceil
        division and byte bookkeeping happen once at caller setup instead
        of per allocation.  Pages come out in the same order
        :meth:`allocate` would hand them out.
        """
        free = self._free
        if needed > len(free):
            raise MemoryManagerError(
                f"pool {self.name!r}: requested {needed} pages "
                f"but only {len(free)} free"
            )
        start = len(free) - needed
        pages = tuple(reversed(free[start:]))
        del free[start:]
        self._allocated.update(pages)
        return PagedAllocation(pool_name=self.name, pages=pages, page_bytes=self.page_bytes)

    def free(self, allocation: PagedAllocation) -> None:
        """Return an allocation's pages to the pool."""
        if allocation.pool_name != self.name:
            raise MemoryManagerError(
                f"allocation belongs to pool {allocation.pool_name!r}, "
                f"not {self.name!r}"
            )
        for page in allocation.pages:
            if page not in self._allocated:
                raise MemoryManagerError(
                    f"pool {self.name!r}: double free of page {page}"
                )
            self._allocated.remove(page)
            self._free.append(page)

    def reset(self) -> None:
        """Free every allocation (used between batches)."""
        self._allocated.clear()
        self._free = list(range(self.num_pages - 1, -1, -1))


@dataclass
class PageTable:
    """Maps logical keys (e.g. expert index, sequence block) to physical pages.

    This is the structure the MoE FFN kernel reads in Fig. 11: "each expert
    ... requires two pages, and the kernel accesses the appropriate pages
    using a page table".
    """

    entries: dict[object, tuple[int, ...]] = field(default_factory=dict)

    def map(self, key: object, allocation: PagedAllocation) -> None:
        """Bind ``key`` to the pages of ``allocation``."""
        self.entries[key] = allocation.pages

    def lookup(self, key: object) -> tuple[int, ...]:
        """Physical pages bound to ``key``."""
        if key not in self.entries:
            raise MemoryManagerError(f"page table has no entry for {key!r}")
        return self.entries[key]

    def unmap(self, key: object) -> None:
        """Remove the binding for ``key``."""
        self.entries.pop(key, None)

    def __contains__(self, key: object) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)
