"""Resources (channels) of the simulated CPU-GPU node.

CGOPipe reasons about four independently progressing channels (Fig. 6):

* ``GPU``  — the GPU compute stream,
* ``CPU``  — the CPU attention worker pool,
* ``HTOD`` — the host-to-device copy engine,
* ``DTOH`` — the device-to-host copy engine.

Transfers in opposite directions run simultaneously (independent data
paths), while transfers in the same direction serialise — which is exactly
what modelling HtoD and DtoH as two separate exclusive resources captures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.validation import require_positive_int


class ResourceKind(enum.Enum):
    """The four channels a task can occupy."""

    GPU = "gpu"
    CPU = "cpu"
    HTOD = "htod"
    DTOH = "dtoh"


@dataclass(frozen=True)
class Resource:
    """An execution channel with a fixed number of parallel slots.

    All four default channels are exclusive (one task at a time): GPU kernels
    on one stream, CPU attention as one aggregate worker pool whose
    parallelism is already folded into the task duration, and one DMA engine
    per direction.
    """

    kind: ResourceKind
    slots: int = 1

    def __post_init__(self) -> None:
        require_positive_int("slots", self.slots)

    @property
    def name(self) -> str:
        """Short channel name used in traces."""
        return self.kind.value


def default_resources() -> dict[ResourceKind, Resource]:
    """The standard single-node resource set used by all schedules."""
    return {
        ResourceKind.GPU: Resource(ResourceKind.GPU),
        ResourceKind.CPU: Resource(ResourceKind.CPU),
        ResourceKind.HTOD: Resource(ResourceKind.HTOD),
        ResourceKind.DTOH: Resource(ResourceKind.DTOH),
    }
