"""Deterministic discrete-event simulator for task graphs.

The simulator executes a :class:`~repro.runtime.tasks.TaskGraph` on a set of
exclusive resources using list scheduling: a task becomes *ready* when all
of its dependencies have finished; among ready tasks contending for the same
resource, the one submitted earliest runs first.  This mirrors how the real
system behaves — tasks are launched asynchronously onto CUDA streams /
thread pools in the order Algorithm 1 emits them, and each stream executes
its queue in FIFO order, subject to cross-stream event dependencies.

The result is a :class:`~repro.runtime.trace.Trace` plus summary statistics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.runtime.resources import Resource, ResourceKind, default_resources
from repro.runtime.tasks import TaskGraph
from repro.runtime.trace import Trace, TraceEvent
from repro.utils.errors import SimulationError


@dataclass
class SimulationResult:
    """Outcome of simulating one task graph."""

    trace: Trace
    makespan: float
    completion_times: dict[int, float] = field(default_factory=dict)

    def utilization(self, resource: ResourceKind) -> float:
        """Busy fraction of ``resource`` over the makespan."""
        return self.trace.utilization(resource, span=self.makespan)

    def utilization_report(self) -> dict[str, float]:
        """Utilisation of every channel plus the makespan."""
        return self.trace.utilization_report()


class Simulator:
    """Executes task graphs on a fixed resource set."""

    def __init__(self, resources: dict[ResourceKind, Resource] | None = None) -> None:
        self.resources = resources or default_resources()

    def run(self, graph: TaskGraph, start_time: float = 0.0) -> SimulationResult:
        """Simulate ``graph`` and return its trace and completion times.

        Raises :class:`SimulationError` if the graph cannot make progress
        (which, given the forward-dependency invariant of ``TaskGraph``,
        indicates a bug in a schedule or in the simulator itself).
        """
        graph.validate()
        tasks = graph.tasks
        if not tasks:
            return SimulationResult(trace=Trace(), makespan=start_time)

        remaining_deps = {task.task_id: len(task.deps) for task in tasks}
        dependents: dict[int, list[int]] = {task.task_id: [] for task in tasks}
        for task in tasks:
            for dep in task.deps:
                dependents[dep].append(task.task_id)

        # Per-resource FIFO queues of ready tasks, ordered by submission id.
        ready: dict[ResourceKind, list[int]] = {
            kind: [] for kind in self.resources
        }
        for task in tasks:
            if task.resource not in ready:
                raise SimulationError(
                    f"task {task.label} targets unknown resource {task.resource}"
                )
            if remaining_deps[task.task_id] == 0:
                heapq.heappush(ready[task.resource], task.task_id)

        free_at: dict[ResourceKind, list[float]] = {
            kind: [start_time] * resource.slots
            for kind, resource in self.resources.items()
        }

        trace = Trace()
        completion: dict[int, float] = {}
        finished = 0
        # Event queue of task completions: (end_time, task_id).
        in_flight: list[tuple[float, int]] = []

        def try_dispatch(now: float) -> None:
            """Start every ready task whose resource has a free slot at ``now``."""
            for kind, queue in ready.items():
                slots = free_at[kind]
                while queue:
                    slot_index = min(range(len(slots)), key=slots.__getitem__)
                    if slots[slot_index] > now + 1e-15:
                        break
                    task_id = heapq.heappop(queue)
                    task = graph.get(task_id)
                    begin = max(now, slots[slot_index])
                    end = begin + task.duration
                    slots[slot_index] = end
                    trace.add(TraceEvent.from_task(task, begin, end))
                    heapq.heappush(in_flight, (end, task_id))

        now = start_time
        try_dispatch(now)
        while finished < len(tasks):
            if not in_flight:
                raise SimulationError(
                    "simulation stalled: no task in flight but "
                    f"{len(tasks) - finished} tasks remain"
                )
            now, task_id = heapq.heappop(in_flight)
            completion[task_id] = now
            finished += 1
            for dependent in dependents[task_id]:
                remaining_deps[dependent] -= 1
                if remaining_deps[dependent] == 0:
                    dependent_task = graph.get(dependent)
                    heapq.heappush(ready[dependent_task.resource], dependent)
            try_dispatch(now)

        trace.verify_exclusive()
        return SimulationResult(
            trace=trace,
            makespan=trace.makespan,
            completion_times=completion,
        )
