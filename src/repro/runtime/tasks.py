"""Task descriptions and task-graph construction.

A :class:`Task` is one unit of work pinned to a resource: a GPU kernel
launch, a CPU attention call, or a single DMA transfer.  Schedules build a
:class:`TaskGraph` — tasks plus dependency edges — and hand it to the
simulator.  The task *kinds* mirror the blocks of the paper's Fig. 6 and the
operations of Algorithm 1 (``PreAttn``, ``OffloadQKV``, ``CPUAttn``,
``W_CtoPin``/``W_PintoG``, ``LoadH``, ``PostAttn``), plus the extra kinds the
baseline schedules need (GPU attention and KV-cache transfers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.runtime.resources import ResourceKind
from repro.utils.errors import ScheduleError
from repro.utils.validation import require_non_negative


class TaskKind(enum.Enum):
    """Task vocabulary shared by all schedules."""

    PRE_ATTENTION = "pre_attn"  # layer norm + QKV projection (GPU)
    GPU_ATTENTION = "gpu_attn"  # attention core on GPU
    CPU_ATTENTION = "cpu_attn"  # attention core on CPU
    POST_ATTENTION = "post_attn"  # O projection + MoE FFN (GPU)
    CPU_FFN = "cpu_ffn"  # MoE FFN on CPU (latency-oriented corner)
    WEIGHT_TRANSFER = "weight_transfer"  # weights page, CPU -> GPU
    WEIGHT_TO_PINNED = "weight_to_pinned"  # weights page, pageable -> pinned
    KV_TRANSFER = "kv_transfer"  # KV cache micro-batch, CPU -> GPU
    KV_OFFLOAD = "kv_offload"  # freshly computed KV, GPU -> CPU
    QKV_OFFLOAD = "qkv_offload"  # Q/K/V for CPU attention, GPU -> CPU
    HIDDEN_LOAD = "hidden_load"  # attention outputs, CPU -> GPU
    HIDDEN_OFFLOAD = "hidden_offload"  # hidden states, GPU -> CPU
    SAMPLE = "sample"  # LM head + sampling (GPU)
    OTHER = "other"


@dataclass
class Task:
    """A single schedulable unit of work."""

    task_id: int
    kind: TaskKind
    resource: ResourceKind
    duration: float
    layer: int = -1
    micro_batch: int = -1
    step: int = -1
    deps: list[int] = field(default_factory=list)
    label: str = ""

    def __post_init__(self) -> None:
        require_non_negative("duration", self.duration)
        if not self.label:
            self.label = f"{self.kind.value}[L{self.layer},mb{self.micro_batch}]"


class TaskGraph:
    """A DAG of tasks with monotonically increasing submission order.

    Submission order matters: when several tasks are ready on the same
    resource, the simulator runs them in the order they were added — this is
    how a schedule's launch order (e.g. Algorithm 1's loop body) is encoded.
    """

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._by_id: dict[int, Task] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self,
        kind: TaskKind,
        resource: ResourceKind,
        duration: float,
        deps: Iterable[int] = (),
        layer: int = -1,
        micro_batch: int = -1,
        step: int = -1,
        label: str = "",
    ) -> Task:
        """Create a task, append it in submission order, and return it.

        Zero-duration tasks are allowed (e.g. an empty weight page when all
        weights are GPU-resident); they still participate in dependency
        ordering but never occupy their resource.
        """
        task_id = len(self._tasks)
        dep_list = []
        for dep in deps:
            if dep is None:
                continue
            if dep not in self._by_id:
                raise ScheduleError(
                    f"task {task_id} depends on unknown task id {dep}"
                )
            dep_list.append(dep)
        task = Task(
            task_id=task_id,
            kind=kind,
            resource=resource,
            duration=duration,
            layer=layer,
            micro_batch=micro_batch,
            step=step,
            deps=dep_list,
            label=label,
        )
        self._tasks.append(task)
        self._by_id[task_id] = task
        return task

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def get(self, task_id: int) -> Task:
        """Look up a task by id."""
        if task_id not in self._by_id:
            raise ScheduleError(f"unknown task id {task_id}")
        return self._by_id[task_id]

    @property
    def tasks(self) -> list[Task]:
        """All tasks in submission order."""
        return list(self._tasks)

    def tasks_on(self, resource: ResourceKind) -> list[Task]:
        """Tasks pinned to ``resource``, in submission order."""
        return [task for task in self._tasks if task.resource == resource]

    def total_work(self, resource: ResourceKind) -> float:
        """Sum of task durations on ``resource`` (lower bound on busy time)."""
        return sum(task.duration for task in self.tasks_on(resource))

    def validate(self) -> None:
        """Check the graph is a DAG with forward-only dependencies.

        Because tasks may only depend on previously added tasks, the graph is
        acyclic by construction; this re-checks the invariant explicitly so a
        schedule bug fails loudly rather than deadlocking the simulator.
        """
        for task in self._tasks:
            for dep in task.deps:
                if dep >= task.task_id:
                    raise ScheduleError(
                        f"task {task.task_id} depends on a later task {dep}; "
                        "dependencies must reference earlier submissions"
                    )
