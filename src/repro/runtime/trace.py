"""Execution traces: per-task spans, utilisation, bubbles and Gantt rendering.

A :class:`Trace` is the output of the simulator: one :class:`TraceEvent` per
executed task, recording which resource it occupied and when.  The analysis
helpers answer the questions the paper's Fig. 6 poses visually — how busy is
each channel, where are the bubbles (the "squares with red zigzag lines"),
and what fraction of the makespan does the GPU sit idle waiting for data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.runtime.resources import ResourceKind
from repro.runtime.tasks import Task, TaskKind
from repro.utils.errors import SimulationError


@dataclass(frozen=True)
class TraceEvent:
    """One executed task: its identity plus the occupied time span."""

    task_id: int
    kind: TaskKind
    resource: ResourceKind
    start: float
    end: float
    layer: int = -1
    micro_batch: int = -1
    step: int = -1
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"trace event {self.label or self.task_id} ends before it starts"
            )

    @property
    def duration(self) -> float:
        """Time the task occupied its resource."""
        return self.end - self.start

    @classmethod
    def from_task(cls, task: Task, start: float, end: float) -> "TraceEvent":
        """Build an event from a task and its scheduled span."""
        return cls(
            task_id=task.task_id,
            kind=task.kind,
            resource=task.resource,
            start=start,
            end=end,
            layer=task.layer,
            micro_batch=task.micro_batch,
            step=task.step,
            label=task.label,
        )


@dataclass
class Trace:
    """A full execution timeline."""

    events: list[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        """Append an event to the trace."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    # Span queries
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """End time of the last event (traces start at time zero)."""
        return max((event.end for event in self.events), default=0.0)

    @property
    def start_time(self) -> float:
        """Start time of the earliest event."""
        return min((event.start for event in self.events), default=0.0)

    def events_on(self, resource: ResourceKind) -> list[TraceEvent]:
        """Events on ``resource`` ordered by start time."""
        return sorted(
            (event for event in self.events if event.resource == resource),
            key=lambda event: (event.start, event.end),
        )

    def events_of(self, kind: TaskKind) -> list[TraceEvent]:
        """Events of a given kind ordered by start time."""
        return sorted(
            (event for event in self.events if event.kind == kind),
            key=lambda event: (event.start, event.end),
        )

    def window(self, start: float, end: float) -> "Trace":
        """Events overlapping the window, clipped to it."""
        if end < start:
            raise SimulationError("window end must not precede its start")
        clipped = []
        for event in self.events:
            if event.end <= start or event.start >= end:
                continue
            clipped.append(
                TraceEvent(
                    task_id=event.task_id,
                    kind=event.kind,
                    resource=event.resource,
                    start=max(event.start, start),
                    end=min(event.end, end),
                    layer=event.layer,
                    micro_batch=event.micro_batch,
                    step=event.step,
                    label=event.label,
                )
            )
        return Trace(events=clipped)

    # ------------------------------------------------------------------
    # Utilisation and bubbles
    # ------------------------------------------------------------------
    def busy_time(self, resource: ResourceKind) -> float:
        """Total occupied time on ``resource`` (events never overlap there)."""
        return sum(event.duration for event in self.events_on(resource))

    def utilization(self, resource: ResourceKind, span: float | None = None) -> float:
        """Busy fraction of ``resource`` over ``span`` (default: makespan)."""
        total = span if span is not None else self.makespan
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_time(resource) / total)

    def utilization_report(self) -> dict[str, float]:
        """Utilisation of every channel plus the makespan."""
        report = {
            resource.value: self.utilization(resource) for resource in ResourceKind
        }
        report["makespan"] = self.makespan
        return report

    def bubbles(self, resource: ResourceKind) -> list[tuple[float, float]]:
        """Idle gaps on ``resource`` between its first and last event."""
        events = self.events_on(resource)
        if not events:
            return []
        gaps = []
        cursor = events[0].end
        for event in events[1:]:
            if event.start > cursor + 1e-12:
                gaps.append((cursor, event.start))
            cursor = max(cursor, event.end)
        return gaps

    def bubble_time(self, resource: ResourceKind) -> float:
        """Total idle time on ``resource`` between its first and last event."""
        return sum(end - start for start, end in self.bubbles(resource))

    def bubble_fraction(self, resource: ResourceKind) -> float:
        """Idle fraction of the busy window on ``resource``."""
        events = self.events_on(resource)
        if not events:
            return 0.0
        window = events[-1].end - events[0].start
        if window <= 0:
            return 0.0
        return self.bubble_time(resource) / window

    def verify_exclusive(self) -> None:
        """Assert no two events overlap on the same exclusive resource."""
        for resource in ResourceKind:
            events = self.events_on(resource)
            for previous, current in zip(events, events[1:]):
                if current.start < previous.end - 1e-9:
                    raise SimulationError(
                        f"overlapping events on {resource.value}: "
                        f"{previous.label} [{previous.start:.6f}, {previous.end:.6f}] "
                        f"and {current.label} [{current.start:.6f}, {current.end:.6f}]"
                    )

    # ------------------------------------------------------------------
    # Rendering (Fig. 6-style diagrams)
    # ------------------------------------------------------------------
    def gantt(self, width: int = 100, resources: Iterable[ResourceKind] = ResourceKind) -> str:
        """Render an ASCII Gantt chart of the trace.

        Each channel becomes one row; task kinds map to single characters so
        the pipeline structure (and its bubbles, shown as spaces) is visible
        in a terminal, mirroring the paper's Fig. 6.
        """
        span = self.makespan - self.start_time
        if span <= 0:
            return "(empty trace)"
        symbols = {
            TaskKind.PRE_ATTENTION: "A",
            TaskKind.GPU_ATTENTION: "B",
            TaskKind.CPU_ATTENTION: "B",
            TaskKind.POST_ATTENTION: "C",
            TaskKind.CPU_FFN: "F",
            TaskKind.WEIGHT_TRANSFER: "W",
            TaskKind.WEIGHT_TO_PINNED: "w",
            TaskKind.KV_TRANSFER: "K",
            TaskKind.KV_OFFLOAD: "k",
            TaskKind.QKV_OFFLOAD: "q",
            TaskKind.HIDDEN_LOAD: "h",
            TaskKind.HIDDEN_OFFLOAD: "d",
            TaskKind.SAMPLE: "S",
            TaskKind.OTHER: "o",
        }
        lines = []
        for resource in resources:
            row = [" "] * width
            for event in self.events_on(resource):
                start_col = int((event.start - self.start_time) / span * (width - 1))
                end_col = int((event.end - self.start_time) / span * (width - 1))
                symbol = symbols.get(event.kind, "o")
                for col in range(start_col, max(start_col + 1, end_col + 1)):
                    if 0 <= col < width:
                        row[col] = symbol
            lines.append(f"{resource.value:>5} |{''.join(row)}|")
        return "\n".join(lines)
