"""Paged weight management (paper §4.1 "Weights Paging" and Appendix A.1).

The streamed portion of a layer's weights is chunked into ``n`` pages, where
``n`` equals the number of micro-batches in the pipeline, so that one page
transfer interleaves naturally with each micro-batch's intermediate-result
transfers.  On the GPU a double buffer of size ``2 x sizeof(W_L)`` holds the
current layer's pages and the next layer's incoming pages; on the host a
pinned staging area lets pageable-to-pinned and pinned-to-GPU copies overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy import Policy
from repro.models.config import ModelConfig
from repro.models.memory import attention_weight_bytes, layer_weight_bytes
from repro.runtime.memory_manager import MemoryPool, PagedAllocation, PageTable
from repro.utils.errors import MemoryManagerError
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class WeightPage:
    """One transferable chunk of a layer's streamed weights."""

    layer: int
    page_index: int
    num_bytes: float

    @property
    def is_empty(self) -> bool:
        """Whether this page carries no data (fully GPU-resident layer)."""
        return self.num_bytes <= 0


class PagedWeightManager:
    """Splits streamed layer weights into pages and tracks GPU residency.

    The manager owns two GPU-side buffers (current layer / next layer) carved
    out of a GPU :class:`MemoryPool`, plus a pinned staging buffer on the
    host.  ``pages_for_layer`` yields the transfer schedule CGOPipe
    interleaves; ``advance_layer`` swaps the double buffer exactly like the
    real system rotates its weight buffers between layers.
    """

    def __init__(
        self,
        model: ModelConfig,
        policy: Policy,
        gpu_pool: MemoryPool,
        pinned_pool: MemoryPool | None = None,
    ) -> None:
        self.model = model
        self.policy = policy
        self.gpu_pool = gpu_pool
        self.pinned_pool = pinned_pool
        self.page_table = PageTable()
        self.num_pages_per_layer = max(1, policy.num_micro_batches)

        streamed = self.streamed_bytes_per_layer()
        self._buffers: list[PagedAllocation | None] = [None, None]
        if streamed > 0:
            self._buffers[0] = gpu_pool.allocate(streamed)
            self._buffers[1] = gpu_pool.allocate(streamed)
        self._current = 0
        self._resident_layer: int | None = None
        self._incoming_layer: int | None = None
        if pinned_pool is not None and streamed > 0:
            self._pinned_allocation = pinned_pool.allocate(
                min(streamed, pinned_pool.capacity_bytes)
            )
        else:
            self._pinned_allocation = None

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    def streamed_bytes_per_layer(self) -> float:
        """Bytes of one layer's weights that are not GPU-resident."""
        per_layer = layer_weight_bytes(self.model)
        if not self.policy.ffn_on_gpu:
            per_layer = attention_weight_bytes(self.model)
        return self.policy.weights_cpu_ratio * per_layer

    def page_bytes(self) -> float:
        """Size of one weight page."""
        return self.streamed_bytes_per_layer() / self.num_pages_per_layer

    def pages_for_layer(self, layer: int) -> list[WeightPage]:
        """The transfer schedule (one page per micro-batch) for ``layer``."""
        require_positive_int("layer", layer + 1)  # layers are 0-indexed
        page_bytes = self.page_bytes()
        return [
            WeightPage(layer=layer, page_index=index, num_bytes=page_bytes)
            for index in range(self.num_pages_per_layer)
        ]

    # ------------------------------------------------------------------
    # Double-buffer state machine
    # ------------------------------------------------------------------
    @property
    def resident_layer(self) -> int | None:
        """Layer whose weights currently occupy the active buffer."""
        return self._resident_layer

    @property
    def incoming_layer(self) -> int | None:
        """Layer currently being prefetched into the inactive buffer."""
        return self._incoming_layer

    def begin_prefetch(self, layer: int) -> PagedAllocation | None:
        """Mark ``layer`` as the prefetch target of the inactive buffer."""
        if self._incoming_layer is not None and self._incoming_layer != layer:
            raise MemoryManagerError(
                f"cannot prefetch layer {layer}: buffer already holds an "
                f"in-flight prefetch of layer {self._incoming_layer}"
            )
        self._incoming_layer = layer
        buffer = self._buffers[1 - self._current]
        if buffer is not None:
            self.page_table.map(("incoming", layer), buffer)
        return buffer

    def advance_layer(self) -> None:
        """Swap buffers: the prefetched layer becomes the resident layer."""
        if self._incoming_layer is None:
            raise MemoryManagerError("advance_layer called with no prefetch in flight")
        if self._resident_layer is not None:
            self.page_table.unmap(("resident", self._resident_layer))
        self._current = 1 - self._current
        self._resident_layer = self._incoming_layer
        self._incoming_layer = None
        buffer = self._buffers[self._current]
        if buffer is not None:
            self.page_table.map(("resident", self._resident_layer), buffer)

    def release(self) -> None:
        """Free all GPU and pinned buffers held by the manager."""
        for buffer in self._buffers:
            if buffer is not None:
                self.gpu_pool.free(buffer)
        self._buffers = [None, None]
        if self._pinned_allocation is not None and self.pinned_pool is not None:
            self.pinned_pool.free(self._pinned_allocation)
            self._pinned_allocation = None

    # ------------------------------------------------------------------
    # Static placement
    # ------------------------------------------------------------------
    def resident_bytes_total(self) -> float:
        """Bytes of weights statically resident on the GPU (all layers)."""
        per_layer = layer_weight_bytes(self.model)
        return self.policy.weights_gpu_ratio * per_layer * self.model.num_layers

    def describe(self) -> str:
        """Human-readable summary used in examples."""
        return (
            f"paged weights: {self.num_pages_per_layer} pages/layer of "
            f"{self.page_bytes() / 1e6:.1f} MB, streamed "
            f"{self.streamed_bytes_per_layer() / 1e9:.2f} GB/layer, resident "
            f"{self.resident_bytes_total() / 1e9:.2f} GB total"
        )
