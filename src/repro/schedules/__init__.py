"""Pipeline schedules: CGOPipe and the baseline schedules of Fig. 6.

Every schedule consumes the same task-duration model
(:class:`~repro.runtime.costs.TaskCostModel`) and produces a task graph for
the decode stage; they differ only in *which* tasks exist (CPU vs. GPU
attention, KV transfers vs. QKV offloads) and in *how* transfers are ordered
(paged and interleaved vs. monolithic).  The simulator turns each graph into
a timeline, so the throughput differences between systems come purely from
scheduling — which is the paper's claim about CGOPipe.

* :class:`CGOPipeSchedule` — the paper's schedule (Algorithm 1): CPU
  attention launched two micro-batches ahead, paged weights interleaved with
  hidden-state uploads.
* :class:`FastDecodeSchedule` — S2: CPU attention overlapped with GPU
  compute, but monolithic (un-paged) weight transfers.
* :class:`FlexGenCPUSchedule` — S3: CPU attention with no overlap (the GPU
  waits), monolithic weight transfers; FlexGen's CPU-attention mode.
* :class:`FlexGenSchedule` — S4: GPU attention with per-micro-batch KV-cache
  swapping and monolithic weight transfers; FlexGen's default mode.
* :class:`DeepSpeedSchedule` — DeepSpeed ZeRO-Inference: whole-batch
  micro-batches, KV cache resident on the GPU, weights streamed layer by
  layer with single-buffer prefetch.
"""

from repro.schedules.base import PipelineSchedule, StepTiming
from repro.schedules.cgopipe import CGOPipeSchedule
from repro.schedules.fastdecode import FastDecodeSchedule
from repro.schedules.flexgen import FlexGenSchedule
from repro.schedules.flexgen_cpu import FlexGenCPUSchedule
from repro.schedules.deepspeed import DeepSpeedSchedule

SCHEDULE_REGISTRY = {
    schedule.name: schedule
    for schedule in (
        CGOPipeSchedule,
        FastDecodeSchedule,
        FlexGenCPUSchedule,
        FlexGenSchedule,
        DeepSpeedSchedule,
    )
}

__all__ = [
    "PipelineSchedule",
    "StepTiming",
    "CGOPipeSchedule",
    "FastDecodeSchedule",
    "FlexGenCPUSchedule",
    "FlexGenSchedule",
    "DeepSpeedSchedule",
    "SCHEDULE_REGISTRY",
]
