"""Common machinery for pipeline schedules.

A schedule builds the decode-stage task graph for a policy at a given
context length.  The base class provides:

* steady-state step timing — the graph contains a warm-up step followed by
  measured steps, and the per-step latency is taken as the average distance
  between consecutive step-completion times, so prologue effects (the first
  layer waiting for its first weights, Algorithm 1's explicit prologue) do
  not pollute the measurement;
* bubble/utilisation reporting used by the Fig. 6 comparison;
* a uniform ``decode_time`` integration over a growing context, mirroring
  the analytical model's trapezoidal integration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.performance_model import EfficiencyModel
from repro.core.policy import Policy
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.runtime.costs import TaskCostModel
from repro.runtime.resources import ResourceKind
from repro.runtime.simulator import SimulationResult, Simulator
from repro.runtime.tasks import TaskGraph
from repro.utils.errors import ScheduleError
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class StepTiming:
    """Timing summary for one simulated decode configuration."""

    step_time: float
    makespan: float
    num_steps: int
    utilization: dict[str, float] = field(default_factory=dict, compare=False)
    gpu_bubble_fraction: float = 0.0
    htod_bubble_fraction: float = 0.0


class PipelineSchedule(abc.ABC):
    """Base class for decode-stage pipeline schedules."""

    #: Registry name; subclasses override.
    name: str = "base"
    #: Whether the schedule runs the attention core on the CPU.
    uses_cpu_attention: bool = True
    #: Whether weights are transferred in interleaved pages.
    uses_paged_weights: bool = False

    def __init__(
        self,
        model: ModelConfig,
        hardware: HardwareSpec,
        efficiency: EfficiencyModel | None = None,
        max_sim_layers: int | None = None,
    ) -> None:
        self.model = model
        self.hardware = hardware
        self.costs = TaskCostModel(
            model=model,
            hardware=hardware,
            efficiency=efficiency or EfficiencyModel(),
        )
        self.simulator = Simulator()
        if max_sim_layers is not None:
            require_positive_int("max_sim_layers", max_sim_layers)
        self.max_sim_layers = max_sim_layers

    @property
    def sim_num_layers(self) -> int:
        """Layers materialised in the simulated task graph.

        Per-layer work is identical across layers during decode, so for very
        deep models the graph can simulate a truncated stack and scale the
        steady-state step time back up — the truncation only affects the
        (small) step-boundary effects.  ``None`` simulates every layer.
        """
        if self.max_sim_layers is None:
            return self.model.num_layers
        return min(self.model.num_layers, self.max_sim_layers)

    @property
    def layer_scale(self) -> float:
        """Factor that scales simulated per-step time to the full model depth."""
        return self.model.num_layers / self.sim_num_layers

    # ------------------------------------------------------------------
    # Graph construction (subclass responsibility)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build_decode_graph(
        self, policy: Policy, context_len: int, num_steps: int = 1
    ) -> TaskGraph:
        """Build the task graph for ``num_steps`` decode steps."""

    def validate_policy(self, policy: Policy) -> None:
        """Reject policies the schedule cannot execute."""
        if self.uses_cpu_attention and policy.attention_on_gpu:
            raise ScheduleError(
                f"{self.name} performs attention on the CPU but the policy "
                "requests GPU attention"
            )
        if not self.uses_cpu_attention and not policy.attention_on_gpu:
            raise ScheduleError(
                f"{self.name} performs attention on the GPU but the policy "
                "requests CPU attention"
            )

    # ------------------------------------------------------------------
    # Simulation helpers
    # ------------------------------------------------------------------
    def simulate(
        self, policy: Policy, context_len: int, num_steps: int = 1
    ) -> SimulationResult:
        """Simulate ``num_steps`` decode steps and return the raw result."""
        require_positive_int("num_steps", num_steps)
        self.validate_policy(policy)
        graph = self.build_decode_graph(policy, context_len, num_steps=num_steps)
        return self.simulator.run(graph)

    def step_timing(
        self,
        policy: Policy,
        context_len: int,
        warmup_steps: int = 1,
        measure_steps: int = 2,
    ) -> StepTiming:
        """Steady-state per-step latency at a fixed context length."""
        require_positive_int("warmup_steps", warmup_steps)
        require_positive_int("measure_steps", measure_steps)
        total_steps = warmup_steps + measure_steps
        result = self.simulate(policy, context_len, num_steps=total_steps)
        step_ends = self._step_completion_times(result, total_steps)
        steady = (step_ends[-1] - step_ends[warmup_steps - 1]) / measure_steps
        if self.sim_num_layers < self.model.num_layers:
            # Scale the layer-periodic part of the step up to the full depth;
            # the sampling task happens once per step regardless of depth.
            sample_time = self.costs.sample(policy.batch_size)
            steady = (steady - sample_time) * self.layer_scale + sample_time
        trace = result.trace
        return StepTiming(
            step_time=steady,
            makespan=result.makespan,
            num_steps=total_steps,
            utilization=result.utilization_report(),
            gpu_bubble_fraction=trace.bubble_fraction(ResourceKind.GPU),
            htod_bubble_fraction=trace.bubble_fraction(ResourceKind.HTOD),
        )

    def _step_completion_times(
        self, result: SimulationResult, num_steps: int
    ) -> list[float]:
        """Completion time of each decode step (max end over its events)."""
        ends = [0.0] * num_steps
        seen = [False] * num_steps
        for event in result.trace:
            if event.step < 0:
                continue
            ends[event.step] = max(ends[event.step], event.end)
            seen[event.step] = True
        if not all(seen):
            missing = [idx for idx, ok in enumerate(seen) if not ok]
            raise ScheduleError(
                f"{self.name}: steps {missing} produced no events; the graph "
                "builder did not emit every requested step"
            )
        return ends

    def decode_time(
        self,
        policy: Policy,
        start_context: int,
        generation_len: int,
        num_samples: int = 5,
    ) -> float:
        """Total decode time while the context grows over ``generation_len``.

        The steady-state step time is simulated at ``num_samples`` context
        lengths and integrated with the trapezoidal rule, matching the
        analytical model's treatment so the two are directly comparable.
        """
        require_positive_int("start_context", start_context)
        require_positive_int("generation_len", generation_len)
        require_positive_int("num_samples", num_samples)
        if generation_len == 1:
            return self.step_timing(policy, start_context + 1).step_time
        count = min(num_samples, generation_len)
        positions = [
            start_context + 1 + round(i * (generation_len - 1) / (count - 1))
            for i in range(count)
        ]
        latencies = [self.step_timing(policy, pos).step_time for pos in positions]
        total = 0.0
        for i in range(count - 1):
            steps = positions[i + 1] - positions[i]
            total += 0.5 * (latencies[i] + latencies[i + 1]) * steps
        return total
