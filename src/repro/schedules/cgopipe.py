"""CGOPipe: the paper's CPU-GPU-I/O pipeline schedule (Algorithm 1, Fig. 6 top).

Structure of one decode step with ``n_ub`` micro-batches and ``L`` layers:

* The GPU alternates post-attention for the current micro-batch with
  pre-attention for the micro-batch two slots ahead.
* The CPU runs grouped-query attention for the micro-batch two slots ahead,
  fed by QKV offloads (device-to-host) and feeding hidden-state uploads
  (host-to-device).
* The streamed portion of the *next* layer's weights is cut into
  ``n_ub`` pages; page ``j`` is uploaded while micro-batch ``j`` of the
  current layer is being processed, so weight traffic interleaves with the
  small hidden-state uploads instead of blocking them.
* A double buffer holds the current and the incoming layer's pages, so a
  page upload for layer ``i+1`` may only start once layer ``i-1``'s buffer
  has been released (its last post-attention finished).
"""

from __future__ import annotations

from repro.core.policy import Policy
from repro.runtime.resources import ResourceKind
from repro.runtime.tasks import TaskGraph, TaskKind
from repro.schedules.base import PipelineSchedule
from repro.utils.errors import ScheduleError
from repro.utils.validation import require_positive_int


class CGOPipeSchedule(PipelineSchedule):
    """The MoE-Lightning schedule: CPU attention + paged, interleaved weights."""

    name = "cgopipe"
    uses_cpu_attention = True
    uses_paged_weights = True

    def validate_policy(self, policy: Policy) -> None:
        super().validate_policy(policy)
        if not policy.ffn_on_gpu:
            raise ScheduleError(
                "CGOPipe is designed for the F_g=1 corner (MoE FFN on GPU); "
                "use the performance model directly for CPU-FFN policies"
            )

    def build_decode_graph(
        self, policy: Policy, context_len: int, num_steps: int = 1
    ) -> TaskGraph:
        """Build the CGOPipe task graph for ``num_steps`` decode steps."""
        require_positive_int("context_len", context_len)
        require_positive_int("num_steps", num_steps)
        self.validate_policy(policy)

        graph = TaskGraph()
        costs = self.costs
        mu = policy.micro_batch_size
        n_ub = policy.num_micro_batches
        num_layers = self.sim_num_layers

        pre_time = costs.pre_attention(mu)
        qkv_time = costs.qkv_offload(mu)
        attn_time = costs.cpu_attention(mu, context_len)
        hidden_time = costs.hidden_load(mu)
        post_time = costs.post_attention(mu, ffn_on_gpu=True)
        page_time = costs.weight_page_transfer(policy)
        sample_time = costs.sample(policy.batch_size)

        # Per-step bookkeeping of task ids.
        pre_ids: dict[tuple[int, int, int], int] = {}
        post_ids: dict[tuple[int, int, int], int] = {}
        cpu_attn_ids: dict[tuple[int, int, int], int] = {}
        weight_page_ids: dict[tuple[int, int], list[int]] = {}
        sample_ids: dict[int, int] = {}

        def slot_to_layer_mb(slot: int) -> tuple[int, int]:
            return slot // n_ub, slot % n_ub

        def emit_pre_chain(step: int, layer: int, mb: int) -> None:
            """Emit PreAttn -> OffloadQKV -> CPUAttn for one (layer, mb)."""
            deps = []
            if layer == 0:
                if step > 0:
                    deps.append(sample_ids[step - 1])
            else:
                deps.append(post_ids[(step, layer - 1, mb)])
            deps.extend(weight_page_ids.get((step, layer), []))
            pre = graph.add(
                TaskKind.PRE_ATTENTION,
                ResourceKind.GPU,
                pre_time,
                deps=deps,
                layer=layer,
                micro_batch=mb,
                step=step,
            )
            pre_ids[(step, layer, mb)] = pre.task_id
            offload = graph.add(
                TaskKind.QKV_OFFLOAD,
                ResourceKind.DTOH,
                qkv_time,
                deps=[pre.task_id],
                layer=layer,
                micro_batch=mb,
                step=step,
            )
            cpu_attn = graph.add(
                TaskKind.CPU_ATTENTION,
                ResourceKind.CPU,
                attn_time,
                deps=[offload.task_id],
                layer=layer,
                micro_batch=mb,
                step=step,
            )
            cpu_attn_ids[(step, layer, mb)] = cpu_attn.task_id

        def emit_weight_page(step: int, layer: int, page: int) -> None:
            """Emit one paged weight upload for ``layer`` of ``step``.

            The double buffer allows at most the current and the next layer in
            flight, so the upload waits for layer ``layer - 2``'s last
            post-attention of the same step (buffer release).
            """
            if not policy.streams_weights:
                return
            deps = []
            release_global = step * num_layers + layer - 2
            if release_global >= 0:
                release_key = (
                    release_global // num_layers,
                    release_global % num_layers,
                    n_ub - 1,
                )
                if release_key in post_ids:
                    deps.append(post_ids[release_key])
            task = graph.add(
                TaskKind.WEIGHT_TRANSFER,
                ResourceKind.HTOD,
                page_time,
                deps=deps,
                layer=layer,
                micro_batch=page,
                step=step,
            )
            weight_page_ids.setdefault((step, layer), []).append(task.task_id)

        for step in range(num_steps):
            num_slots = num_layers * n_ub

            # Prologue: pre-attention chains for the first two slots, plus the
            # first weight pages of the next layer (Algorithm 1, lines 2-7).
            prologue_slots = min(2, num_slots)
            for slot in range(prologue_slots):
                layer, mb = slot_to_layer_mb(slot)
                emit_pre_chain(step, layer, mb)
                next_layer = layer + 1
                if next_layer < num_layers:
                    emit_weight_page(step, next_layer, mb)

            # Main loop (Algorithm 1, lines 8-17).
            for slot in range(num_slots):
                layer, mb = slot_to_layer_mb(slot)
                # Hidden states for (layer, mb) return from the CPU (LoadH).
                cpu_attn_key = (step, layer, mb)
                if cpu_attn_key not in cpu_attn_ids:
                    raise ScheduleError(
                        f"CPU attention for step {step}, layer {layer}, "
                        f"micro-batch {mb} was never emitted "
                        "(prologue/lookahead bookkeeping bug)"
                    )
                hidden = graph.add(
                    TaskKind.HIDDEN_LOAD,
                    ResourceKind.HTOD,
                    hidden_time,
                    deps=[cpu_attn_ids[cpu_attn_key]],
                    layer=layer,
                    micro_batch=mb,
                    step=step,
                )
                # Interleaved weight page for the next layer (W_PintoG).
                lookahead_layer = layer + 1
                if lookahead_layer >= num_layers:
                    # Prefetch the first layer of the next step during the
                    # last layer of this one.
                    if step + 1 < num_steps:
                        emit_weight_page(step + 1, 0, mb)
                elif slot >= prologue_slots or mb >= prologue_slots:
                    emit_weight_page(step, lookahead_layer, mb)
                # Post-attention for the current slot.
                deps = [hidden.task_id]
                deps.extend(weight_page_ids.get((step, layer), []))
                post = graph.add(
                    TaskKind.POST_ATTENTION,
                    ResourceKind.GPU,
                    post_time,
                    deps=deps,
                    layer=layer,
                    micro_batch=mb,
                    step=step,
                )
                post_ids[(step, layer, mb)] = post.task_id
                # Pre-attention chain for the slot two ahead.
                ahead = slot + 2
                if ahead < num_slots and ahead >= prologue_slots:
                    ahead_layer, ahead_mb = slot_to_layer_mb(ahead)
                    emit_pre_chain(step, ahead_layer, ahead_mb)

            sample = graph.add(
                TaskKind.SAMPLE,
                ResourceKind.GPU,
                sample_time,
                deps=[post_ids[(step, num_layers - 1, mb)] for mb in range(n_ub)],
                layer=num_layers - 1,
                micro_batch=-1,
                step=step,
            )
            sample_ids[step] = sample.task_id

        return graph
