"""DeepSpeed ZeRO-Inference style schedule.

ZeRO-Inference pins the model weights in CPU memory and streams them to the
GPU layer by layer, prefetching the next layer while the current one
computes.  It does not split the batch into micro-batches (the whole batch
is one kernel launch, ``N / μ = 1`` in the paper's Table 4) and it keeps the
KV cache in GPU memory, so the batch size — and with it the achievable
weight-transfer amortisation — is limited by GPU memory rather than CPU
memory.  Attention runs on the GPU.
"""

from __future__ import annotations

from repro.core.policy import Policy
from repro.runtime.resources import ResourceKind
from repro.runtime.tasks import TaskGraph, TaskKind
from repro.schedules.base import PipelineSchedule
from repro.utils.errors import ScheduleError
from repro.utils.validation import require_positive_int


class DeepSpeedSchedule(PipelineSchedule):
    """Layer-streamed weights, whole-batch kernels, GPU-resident KV cache."""

    name = "deepspeed"
    uses_cpu_attention = False
    uses_paged_weights = False

    def validate_policy(self, policy: Policy) -> None:
        super().validate_policy(policy)
        if policy.num_micro_batches != 1:
            raise ScheduleError(
                "DeepSpeed ZeRO-Inference processes the whole batch as a "
                "single micro-batch; the policy must have N == mu"
            )
        if policy.kv_cache_gpu_ratio < 1.0:
            raise ScheduleError(
                "DeepSpeed ZeRO-Inference keeps the KV cache in GPU memory; "
                "the policy must have r_c == 1"
            )

    def build_decode_graph(
        self, policy: Policy, context_len: int, num_steps: int = 1
    ) -> TaskGraph:
        """Build the ZeRO-Inference task graph for ``num_steps`` decode steps."""
        require_positive_int("context_len", context_len)
        require_positive_int("num_steps", num_steps)
        self.validate_policy(policy)

        graph = TaskGraph()
        costs = self.costs
        mu = policy.micro_batch_size
        num_layers = self.sim_num_layers

        pre_time = costs.pre_attention(mu)
        attn_time = costs.gpu_attention(mu, context_len)
        post_time = costs.post_attention(mu, ffn_on_gpu=policy.ffn_on_gpu)
        weight_time = costs.weight_layer_transfer(policy)
        sample_time = costs.sample(policy.batch_size)

        sample_ids: dict[int, int] = {}

        for step in range(num_steps):
            previous_post: int | None = None
            weight_ids: dict[int, int] = {}

            def emit_weights(step_idx: int, layer: int, deps: list[int]) -> None:
                if not policy.streams_weights:
                    return
                task = graph.add(
                    TaskKind.WEIGHT_TRANSFER,
                    ResourceKind.HTOD,
                    weight_time,
                    deps=deps,
                    layer=layer,
                    micro_batch=-1,
                    step=step_idx,
                )
                weight_ids[layer] = task.task_id

            # Double-buffer prefetch: the first two layers' weights start
            # moving at the beginning of the step; each later layer's weights
            # start once the layer two positions earlier has released its
            # buffer (its post-attention finished).
            start_deps = [sample_ids[step - 1]] if step > 0 else []
            emit_weights(step, 0, start_deps)
            if num_layers > 1:
                emit_weights(step, 1, start_deps)

            for layer in range(num_layers):
                deps = []
                if previous_post is not None:
                    deps.append(previous_post)
                elif step > 0:
                    deps.append(sample_ids[step - 1])
                if layer in weight_ids:
                    deps.append(weight_ids[layer])
                pre = graph.add(
                    TaskKind.PRE_ATTENTION,
                    ResourceKind.GPU,
                    pre_time,
                    deps=deps,
                    layer=layer,
                    micro_batch=0,
                    step=step,
                )
                attn = graph.add(
                    TaskKind.GPU_ATTENTION,
                    ResourceKind.GPU,
                    attn_time,
                    deps=[pre.task_id],
                    layer=layer,
                    micro_batch=0,
                    step=step,
                )
                post = graph.add(
                    TaskKind.POST_ATTENTION,
                    ResourceKind.GPU,
                    post_time,
                    deps=[attn.task_id],
                    layer=layer,
                    micro_batch=0,
                    step=step,
                )
                previous_post = post.task_id
                if layer + 2 < num_layers:
                    emit_weights(step, layer + 2, [post.task_id])

            sample = graph.add(
                TaskKind.SAMPLE,
                ResourceKind.GPU,
                sample_time,
                deps=[previous_post] if previous_post is not None else [],
                layer=num_layers - 1,
                micro_batch=-1,
                step=step,
            )
            sample_ids[step] = sample.task_id

        return graph
