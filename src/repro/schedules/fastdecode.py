"""FastDecode-style schedule (S2 in Fig. 6).

CPU attention is overlapped with GPU compute — the same producer/consumer
structure as CGOPipe — but the next layer's weights move as a single
monolithic transfer after the layer's hidden-state uploads.  The big weight
blob therefore blocks the next layer's first hidden-state upload (and hence
the next layer's first post-attention), producing the layer-boundary bubbles
CGOPipe's paging removes.  FastDecode itself does not target weight
offloading at all; this schedule is the paper's "pipeline, without paged
weights" rendition of it.
"""

from __future__ import annotations

from repro.core.policy import Policy
from repro.runtime.resources import ResourceKind
from repro.runtime.tasks import TaskGraph, TaskKind
from repro.schedules.base import PipelineSchedule
from repro.utils.errors import ScheduleError
from repro.utils.validation import require_positive_int


class FastDecodeSchedule(PipelineSchedule):
    """Overlapped CPU attention with monolithic (un-paged) weight transfers."""

    name = "fastdecode"
    uses_cpu_attention = True
    uses_paged_weights = False

    def validate_policy(self, policy: Policy) -> None:
        super().validate_policy(policy)
        if not policy.ffn_on_gpu:
            raise ScheduleError(
                f"{self.name} models the F_g=1 corner (MoE FFN on the GPU)"
            )

    def build_decode_graph(
        self, policy: Policy, context_len: int, num_steps: int = 1
    ) -> TaskGraph:
        """Build the S2 task graph for ``num_steps`` decode steps."""
        require_positive_int("context_len", context_len)
        require_positive_int("num_steps", num_steps)
        self.validate_policy(policy)

        graph = TaskGraph()
        costs = self.costs
        mu = policy.micro_batch_size
        n_ub = policy.num_micro_batches
        num_layers = self.sim_num_layers

        pre_time = costs.pre_attention(mu)
        qkv_time = costs.qkv_offload(mu)
        attn_time = costs.cpu_attention(mu, context_len)
        hidden_time = costs.hidden_load(mu)
        post_time = costs.post_attention(mu, ffn_on_gpu=True)
        weight_time = costs.weight_layer_transfer(policy)
        sample_time = costs.sample(policy.batch_size)

        post_ids: dict[tuple[int, int, int], int] = {}
        cpu_attn_ids: dict[tuple[int, int, int], int] = {}
        weight_ids: dict[tuple[int, int], int] = {}
        sample_ids: dict[int, int] = {}

        def emit_pre_chain(step: int, layer: int, mb: int) -> None:
            deps = []
            if layer == 0:
                if step > 0:
                    deps.append(sample_ids[step - 1])
            else:
                deps.append(post_ids[(step, layer - 1, mb)])
            if (step, layer) in weight_ids:
                deps.append(weight_ids[(step, layer)])
            pre = graph.add(
                TaskKind.PRE_ATTENTION,
                ResourceKind.GPU,
                pre_time,
                deps=deps,
                layer=layer,
                micro_batch=mb,
                step=step,
            )
            offload = graph.add(
                TaskKind.QKV_OFFLOAD,
                ResourceKind.DTOH,
                qkv_time,
                deps=[pre.task_id],
                layer=layer,
                micro_batch=mb,
                step=step,
            )
            cpu_attn = graph.add(
                TaskKind.CPU_ATTENTION,
                ResourceKind.CPU,
                attn_time,
                deps=[offload.task_id],
                layer=layer,
                micro_batch=mb,
                step=step,
            )
            cpu_attn_ids[(step, layer, mb)] = cpu_attn.task_id

        def emit_weights(step: int, layer: int) -> None:
            if not policy.streams_weights:
                return
            # Double-buffer release: layer ``i``'s monolithic transfer may only
            # start once layer ``i-2`` (wrapping across steps) has finished its
            # last post-attention and freed its weight buffer.
            deps = []
            release_global = step * num_layers + layer - 2
            if release_global >= 0:
                release_key = (
                    release_global // num_layers,
                    release_global % num_layers,
                    n_ub - 1,
                )
                if release_key in post_ids:
                    deps.append(post_ids[release_key])
            task = graph.add(
                TaskKind.WEIGHT_TRANSFER,
                ResourceKind.HTOD,
                weight_time,
                deps=deps,
                layer=layer,
                micro_batch=-1,
                step=step,
            )
            weight_ids[(step, layer)] = task.task_id

        for step in range(num_steps):
            num_slots = num_layers * n_ub
            prologue_slots = min(2, num_slots)
            for slot in range(prologue_slots):
                layer, mb = slot // n_ub, slot % n_ub
                emit_pre_chain(step, layer, mb)

            for slot in range(num_slots):
                layer, mb = slot // n_ub, slot % n_ub
                key = (step, layer, mb)
                if key not in cpu_attn_ids:
                    raise ScheduleError(
                        f"missing CPU attention for step {step}, layer {layer}, "
                        f"micro-batch {mb}"
                    )
                hidden = graph.add(
                    TaskKind.HIDDEN_LOAD,
                    ResourceKind.HTOD,
                    hidden_time,
                    deps=[cpu_attn_ids[key]],
                    layer=layer,
                    micro_batch=mb,
                    step=step,
                )
                # The whole next-layer weight blob is queued after the last
                # hidden-state upload of the current layer (no paging).
                if mb == n_ub - 1:
                    if layer + 1 < num_layers:
                        emit_weights(step, layer + 1)
                    elif step + 1 < num_steps:
                        emit_weights(step + 1, 0)
                deps = [hidden.task_id]
                if (step, layer) in weight_ids:
                    deps.append(weight_ids[(step, layer)])
                post = graph.add(
                    TaskKind.POST_ATTENTION,
                    ResourceKind.GPU,
                    post_time,
                    deps=deps,
                    layer=layer,
                    micro_batch=mb,
                    step=step,
                )
                post_ids[key] = post.task_id
                ahead = slot + 2
                if ahead < num_slots and ahead >= prologue_slots:
                    ahead_layer, ahead_mb = ahead // n_ub, ahead % n_ub
                    emit_pre_chain(step, ahead_layer, ahead_mb)

            sample = graph.add(
                TaskKind.SAMPLE,
                ResourceKind.GPU,
                sample_time,
                deps=[post_ids[(step, num_layers - 1, mb)] for mb in range(n_ub)],
                layer=num_layers - 1,
                micro_batch=-1,
                step=step,
            )
            sample_ids[step] = sample.task_id

        return graph
