"""FlexGen's default decode schedule (S4 in Fig. 6).

Attention runs on the GPU, so every micro-batch's KV cache must be swapped
in from CPU memory before its attention kernel can run.  The KV cache for
the next micro-batch is prefetched while the current one computes, and the
next layer's weights are transferred as one monolithic blob after the
layer's KV transfers — which is why the GPU sits idle at every layer
boundary waiting for the weight transfer to complete (the red-zigzag squares
of Fig. 6), and why the host-to-device channel carries far more bytes than
under CGOPipe.
"""

from __future__ import annotations

from repro.core.policy import Policy
from repro.runtime.resources import ResourceKind
from repro.runtime.tasks import TaskGraph, TaskKind
from repro.schedules.base import PipelineSchedule
from repro.utils.validation import require_positive_int


class FlexGenSchedule(PipelineSchedule):
    """GPU attention with per-micro-batch KV swapping and un-paged weights."""

    name = "flexgen"
    uses_cpu_attention = False
    uses_paged_weights = False

    def build_decode_graph(
        self, policy: Policy, context_len: int, num_steps: int = 1
    ) -> TaskGraph:
        """Build the S4 task graph for ``num_steps`` decode steps."""
        require_positive_int("context_len", context_len)
        require_positive_int("num_steps", num_steps)
        self.validate_policy(policy)

        graph = TaskGraph()
        costs = self.costs
        mu = policy.micro_batch_size
        n_ub = policy.num_micro_batches
        num_layers = self.sim_num_layers

        pre_time = costs.pre_attention(mu)
        attn_time = costs.gpu_attention(mu, context_len)
        post_time = costs.post_attention(mu, ffn_on_gpu=policy.ffn_on_gpu)
        kv_time = costs.kv_transfer(
            mu, context_len, cpu_ratio=policy.kv_cache_cpu_ratio
        )
        kv_offload_time = costs.kv_offload(mu)
        weight_time = costs.weight_layer_transfer(policy)
        sample_time = costs.sample(policy.batch_size)

        post_ids: dict[tuple[int, int, int], int] = {}
        kv_ids: dict[tuple[int, int, int], int] = {}
        weight_ids: dict[tuple[int, int], int] = {}
        sample_ids: dict[int, int] = {}

        attn_ids: dict[tuple[int, int, int], int] = {}

        def slot_key(step: int, layer: int, mb: int, offset: int) -> tuple | None:
            """The (step, layer, mb) key ``offset`` slots before the given one."""
            global_slot = (step * num_layers + layer) * n_ub + mb - offset
            if global_slot < 0:
                return None
            step_idx, rest = divmod(global_slot, num_layers * n_ub)
            layer_idx, mb_idx = divmod(rest, n_ub)
            return (step_idx, layer_idx, mb_idx)

        def emit_kv(step: int, layer: int, mb: int) -> None:
            """Prefetch the KV cache of (layer, mb) over the HtoD channel.

            FlexGen keeps at most two micro-batch KV buffers on the GPU, so a
            transfer waits for the attention two slots earlier to release its
            buffer.
            """
            if kv_time <= 0:
                return
            deps = []
            release = slot_key(step, layer, mb, offset=2)
            if release is not None and release in attn_ids:
                deps.append(attn_ids[release])
            task = graph.add(
                TaskKind.KV_TRANSFER,
                ResourceKind.HTOD,
                kv_time,
                deps=deps,
                layer=layer,
                micro_batch=mb,
                step=step,
            )
            kv_ids[(step, layer, mb)] = task.task_id

        def emit_weights(step: int, layer: int) -> None:
            """Transfer the whole streamed weight blob of ``layer``.

            The double buffer forces the transfer to wait until the layer two
            positions earlier has finished its last post-attention.
            """
            if not policy.streams_weights:
                return
            deps = []
            release_global = step * num_layers + layer - 2
            if release_global >= 0:
                release_key = (
                    release_global // num_layers,
                    release_global % num_layers,
                    n_ub - 1,
                )
                if release_key in post_ids:
                    deps.append(post_ids[release_key])
            task = graph.add(
                TaskKind.WEIGHT_TRANSFER,
                ResourceKind.HTOD,
                weight_time,
                deps=deps,
                layer=layer,
                micro_batch=-1,
                step=step,
            )
            weight_ids[(step, layer)] = task.task_id

        for step in range(num_steps):
            # KV for the first micro-batch of the step is fetched up front.
            emit_kv(step, 0, 0)
            for layer in range(num_layers):
                for mb in range(n_ub):
                    # Prefetch the next micro-batch's KV (or the next layer's
                    # first micro-batch, followed by that layer's weights).
                    if mb + 1 < n_ub:
                        emit_kv(step, layer, mb + 1)
                    else:
                        if layer + 1 < num_layers:
                            emit_kv(step, layer + 1, 0)
                            emit_weights(step, layer + 1)
                        elif step + 1 < num_steps:
                            emit_kv(step + 1, 0, 0)
                            emit_weights(step + 1, 0)

                    deps = []
                    if layer == 0:
                        if step > 0:
                            deps.append(sample_ids[step - 1])
                    else:
                        deps.append(post_ids[(step, layer - 1, mb)])
                    if (step, layer) in weight_ids:
                        deps.append(weight_ids[(step, layer)])
                    pre = graph.add(
                        TaskKind.PRE_ATTENTION,
                        ResourceKind.GPU,
                        pre_time,
                        deps=deps,
                        layer=layer,
                        micro_batch=mb,
                        step=step,
                    )
                    attn_deps = [pre.task_id]
                    if (step, layer, mb) in kv_ids:
                        attn_deps.append(kv_ids[(step, layer, mb)])
                    attn = graph.add(
                        TaskKind.GPU_ATTENTION,
                        ResourceKind.GPU,
                        attn_time,
                        deps=attn_deps,
                        layer=layer,
                        micro_batch=mb,
                        step=step,
                    )
                    attn_ids[(step, layer, mb)] = attn.task_id
                    # The new token's K/V is written back to the CPU cache.
                    if kv_offload_time > 0 and policy.kv_cache_cpu_ratio > 0:
                        graph.add(
                            TaskKind.KV_OFFLOAD,
                            ResourceKind.DTOH,
                            kv_offload_time,
                            deps=[pre.task_id],
                            layer=layer,
                            micro_batch=mb,
                            step=step,
                        )
                    post = graph.add(
                        TaskKind.POST_ATTENTION,
                        ResourceKind.GPU,
                        post_time,
                        deps=[attn.task_id],
                        layer=layer,
                        micro_batch=mb,
                        step=step,
                    )
                    post_ids[(step, layer, mb)] = post.task_id

            sample = graph.add(
                TaskKind.SAMPLE,
                ResourceKind.GPU,
                sample_time,
                deps=[post_ids[(step, num_layers - 1, mb)] for mb in range(n_ub)],
                layer=num_layers - 1,
                micro_batch=-1,
                step=step,
            )
            sample_ids[step] = sample.task_id

        return graph
