"""FlexGen with CPU attention enabled (S3 in Fig. 6).

FlexGen(c) calls its CPU attention synchronously from the scheduling loop:
for each micro-batch the GPU runs pre-attention, then *waits* for the CPU
attention to finish, then runs post-attention before moving to the next
micro-batch.  Nothing hides the CPU attention latency, and weights still
move as monolithic per-layer transfers.  As the paper notes (§4.1), this is
the least-optimised schedule and can be slower than S4 whenever the KV
transfer time is smaller than pre-attention + CPU attention + post-attention.
"""

from __future__ import annotations

from repro.core.policy import Policy
from repro.runtime.resources import ResourceKind
from repro.runtime.tasks import TaskGraph, TaskKind
from repro.schedules.base import PipelineSchedule
from repro.utils.errors import ScheduleError
from repro.utils.validation import require_positive_int


class FlexGenCPUSchedule(PipelineSchedule):
    """Synchronous CPU attention with monolithic weight transfers."""

    name = "flexgen_cpu"
    uses_cpu_attention = True
    uses_paged_weights = False

    def validate_policy(self, policy: Policy) -> None:
        super().validate_policy(policy)
        if not policy.ffn_on_gpu:
            raise ScheduleError(
                f"{self.name} models the F_g=1 corner (MoE FFN on the GPU)"
            )

    def build_decode_graph(
        self, policy: Policy, context_len: int, num_steps: int = 1
    ) -> TaskGraph:
        """Build the S3 task graph for ``num_steps`` decode steps."""
        require_positive_int("context_len", context_len)
        require_positive_int("num_steps", num_steps)
        self.validate_policy(policy)

        graph = TaskGraph()
        costs = self.costs
        mu = policy.micro_batch_size
        n_ub = policy.num_micro_batches
        num_layers = self.sim_num_layers

        pre_time = costs.pre_attention(mu)
        qkv_time = costs.qkv_offload(mu)
        attn_time = costs.cpu_attention(mu, context_len)
        hidden_time = costs.hidden_load(mu)
        post_time = costs.post_attention(mu, ffn_on_gpu=True)
        weight_time = costs.weight_layer_transfer(policy)
        sample_time = costs.sample(policy.batch_size)

        weight_ids: dict[tuple[int, int], int] = {}
        sample_ids: dict[int, int] = {}

        def emit_weights(step: int, layer: int, deps: list[int]) -> None:
            if not policy.streams_weights:
                return
            task = graph.add(
                TaskKind.WEIGHT_TRANSFER,
                ResourceKind.HTOD,
                weight_time,
                deps=deps,
                layer=layer,
                micro_batch=-1,
                step=step,
            )
            weight_ids[(step, layer)] = task.task_id

        for step in range(num_steps):
            previous_post: int | None = None
            last_layer_posts: list[int] = []
            for layer in range(num_layers):
                # The next layer's weights start moving while this layer's
                # serial pre -> CPU-attention -> post chain occupies the GPU
                # (double buffer: the previous layer must have finished).
                release = [previous_post] if previous_post is not None else []
                if layer + 1 < num_layers:
                    emit_weights(step, layer + 1, release)
                elif step + 1 < num_steps:
                    emit_weights(step + 1, 0, release)
                for mb in range(n_ub):
                    deps = []
                    if previous_post is not None:
                        deps.append(previous_post)
                    elif step > 0:
                        deps.append(sample_ids[step - 1])
                    if (step, layer) in weight_ids:
                        deps.append(weight_ids[(step, layer)])
                    pre = graph.add(
                        TaskKind.PRE_ATTENTION,
                        ResourceKind.GPU,
                        pre_time,
                        deps=deps,
                        layer=layer,
                        micro_batch=mb,
                        step=step,
                    )
                    offload = graph.add(
                        TaskKind.QKV_OFFLOAD,
                        ResourceKind.DTOH,
                        qkv_time,
                        deps=[pre.task_id],
                        layer=layer,
                        micro_batch=mb,
                        step=step,
                    )
                    cpu_attn = graph.add(
                        TaskKind.CPU_ATTENTION,
                        ResourceKind.CPU,
                        attn_time,
                        deps=[offload.task_id],
                        layer=layer,
                        micro_batch=mb,
                        step=step,
                    )
                    hidden = graph.add(
                        TaskKind.HIDDEN_LOAD,
                        ResourceKind.HTOD,
                        hidden_time,
                        deps=[cpu_attn.task_id],
                        layer=layer,
                        micro_batch=mb,
                        step=step,
                    )
                    post = graph.add(
                        TaskKind.POST_ATTENTION,
                        ResourceKind.GPU,
                        post_time,
                        deps=[hidden.task_id],
                        layer=layer,
                        micro_batch=mb,
                        step=step,
                    )
                    # Synchronous loop: the next micro-batch's GPU work only
                    # starts once this one is fully finished.
                    previous_post = post.task_id
                    if layer == num_layers - 1:
                        last_layer_posts.append(post.task_id)

            sample = graph.add(
                TaskKind.SAMPLE,
                ResourceKind.GPU,
                sample_time,
                deps=last_layer_posts,
                layer=num_layers - 1,
                micro_batch=-1,
                step=step,
            )
            sample_ids[step] = sample.task_id

        return graph
