"""Online serving: continuous batching over the offloading systems.

The offline harness (:mod:`repro.systems`) evaluates each system on one
static, pre-formed batch — the regime of the paper's throughput evaluation.
This package adds the *online* half implied by the paper's batching
machinery: requests arriving over simulated time, iteration-level
continuous re-batching with Algorithm 2, memory-aware admission control
backed by the paged KV cache, and per-request latency / SLO-goodput
metrics, so MoE-Lightning and the baselines become comparable under load.

* :mod:`repro.serving.arrivals` — Poisson / Gamma-burst / deterministic /
  replay arrival processes over the Table 3 prompt-length samplers.
* :mod:`repro.serving.queue` — request lifecycle plus the bounded waiting
  queue (FCFS or shortest-job-first ordering).
* :mod:`repro.serving.admission` — KV-cache and CPU/GPU-memory gated
  admission via the paged allocator and the analytical memory model; with
  ``prefix_cache=True`` requests are admitted at their *incremental*
  footprint given the longest prompt prefix already in the shared block
  store.
* :mod:`repro.serving.scheduler` — iteration-level scheduler with FCFS,
  prefill-prioritising and decode-prioritising policies.
* :mod:`repro.serving.metrics` — TTFT / TPOT / E2E percentiles and
  SLO-goodput.
* :mod:`repro.serving.server` — the per-shard :class:`EngineCore` state
  machine (event-granular ``begin_step``/``complete_step``, optionally
  with overlapped prefill/decode streams) and the :class:`ServingSystem`
  facade driving any offloading backend through a simulated wall clock.
* :mod:`repro.serving.router` — the :class:`ShardRouter`
  (round-robin / least-loaded / session-affinity / cache-aware) in front
  of per-shard queues.
* :mod:`repro.serving.event_loop` — the central timestamp-ordered event
  queue interleaving arrivals and per-shard step completions in true
  global time order.
* :mod:`repro.serving.sharded` — :class:`ShardedServingSystem`, N
  data-parallel engines on a :class:`~repro.cluster.spec.ClusterSpec`
  with per-shard utilization and stream-occupancy reporting.
"""

from repro.serving.admission import AdmissionController, AdmissionDecision
from repro.serving.event_loop import ServingEventLoop
from repro.serving.arrivals import (
    ArrivalProcess,
    DeterministicProcess,
    GammaProcess,
    PoissonProcess,
    ReplayProcess,
    TimedRequest,
)
from repro.serving.metrics import (
    SLO,
    ReportBuilder,
    ServingReport,
    percentile,
    summarize,
)
from repro.serving.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    ResiliencePolicy,
)
from repro.serving.queue import (
    OUTCOME_CODES,
    RequestQueue,
    RequestState,
    ServingRequest,
)
from repro.serving.scheduler import (
    SCHEDULING_POLICIES,
    ContinuousBatchingScheduler,
    SchedulerAction,
)
from repro.serving.router import ROUTER_POLICIES, ShardRouter
from repro.serving.server import (
    EngineCore,
    EngineStep,
    EngineStepModel,
    ServingResult,
    ServingSystem,
    default_slo,
)
from repro.serving.sharded import (
    ShardStats,
    ShardedServingResult,
    ShardedServingSystem,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ArrivalProcess",
    "DeterministicProcess",
    "GammaProcess",
    "PoissonProcess",
    "ReplayProcess",
    "TimedRequest",
    "SLO",
    "ReportBuilder",
    "ServingReport",
    "percentile",
    "summarize",
    "RequestQueue",
    "RequestState",
    "ServingRequest",
    "SCHEDULING_POLICIES",
    "ContinuousBatchingScheduler",
    "SchedulerAction",
    "EngineCore",
    "EngineStep",
    "EngineStepModel",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "OUTCOME_CODES",
    "ResiliencePolicy",
    "ROUTER_POLICIES",
    "ServingEventLoop",
    "ServingResult",
    "ServingSystem",
    "ShardRouter",
    "ShardStats",
    "ShardedServingResult",
    "ShardedServingSystem",
    "default_slo",
]
