"""Admission control: memory-aware gating of requests into the batch.

Before a queued request joins the running batch, the controller checks that
its KV cache — at its *end-of-generation* size, the same conservative
accounting Algorithm 2 applies inside a batch — fits the CPU and GPU
budgets left over after weights, activations and transfer workspace.  The
budgets come from the analytical :class:`~repro.core.memory_model.MemoryModel`
and the page-level accounting from
:class:`~repro.runtime.kv_cache.KVCacheManager`, so the online system
respects exactly the constraints the offline policy optimizer was solved
under.

Admission also caps the number of live sequences at the policy's batch
size ``N``: the engine never holds more requests than the policy the
schedules and kernels were sized for.

With ``prefix_cache=True`` the controller fronts the shared block store of
:mod:`repro.runtime.block_store`: each request's prompt is matched against
the cached prefix blocks, the reservation covers only the *incremental*
blocks beyond the match, and the matched prefix is recorded on the request
so the engine skips those tokens at prefill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memory_model import MemoryModel
from repro.core.policy import Policy
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.models.memory import kv_cache_bytes_per_token_per_layer
from repro.runtime.kv_cache import KVCacheManager
from repro.runtime.memory_manager import MemoryPool
from repro.serving.queue import ServingRequest
from repro.utils.errors import MemoryManagerError
from repro.utils.validation import require_positive_int
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = ""


class AdmissionController:
    """Gates requests on KV-cache capacity and live-sequence slots.

    The CPU/GPU KV budgets are the memory capacities usable by the policy
    minus its non-KV footprint (weights, activations, workspace) as
    projected by the memory model; explicit ``*_kv_budget_bytes`` overrides
    let tests pin exact boundaries.
    """

    def __init__(
        self,
        model: ModelConfig,
        hardware: HardwareSpec,
        workload: WorkloadSpec,
        policy: Policy,
        padded: bool = False,
        max_live_requests: int | None = None,
        block_tokens: int = 16,
        cpu_kv_budget_bytes: float | None = None,
        gpu_kv_budget_bytes: float | None = None,
        prefix_cache: bool = False,
        reserve_output_tokens: bool = True,
        telemetry=None,
    ) -> None:
        self.model = model
        self.policy = policy
        self.prefix_cache = prefix_cache
        #: Prefill-role engines hand requests off before decoding a single
        #: token, so they reserve KV for the prompt only; reserving the
        #: end-of-generation size there would waste most of the pool on
        #: tokens the *decode* shard will hold.
        self.reserve_output_tokens = reserve_output_tokens
        #: Optional :class:`repro.obs.Telemetry`; verdict counters only —
        #: admission has no clock, so timestamped events stay with the engine.
        self.telemetry = telemetry
        self.max_live_requests = (
            max_live_requests if max_live_requests is not None else policy.batch_size
        )
        require_positive_int("max_live_requests", self.max_live_requests)

        memory_model = MemoryModel(
            model=model, hardware=hardware, workload=workload, padded=padded
        )
        if cpu_kv_budget_bytes is None:
            cpu_usage = memory_model.cpu_usage(policy)
            cpu_kv_budget_bytes = memory_model.usable_cpu_memory - (
                cpu_usage.total - cpu_usage.kv_cache
            )
        if gpu_kv_budget_bytes is None:
            gpu_usage = memory_model.gpu_usage(policy)
            gpu_kv_budget_bytes = memory_model.usable_gpu_memory - (
                gpu_usage.total - gpu_usage.kv_cache
            )

        # Grouped exactly as KVCacheManager computes one block's bytes
        # (block_tokens * bytes_per_token()), so the pool pages below and
        # the store's per-block charges are bit-identical floats.
        page_bytes = block_tokens * (
            kv_cache_bytes_per_token_per_layer(model) * model.num_layers
        )
        if cpu_kv_budget_bytes < page_bytes:
            raise MemoryManagerError(
                f"policy {policy.describe()} leaves no CPU memory for the KV "
                f"cache ({cpu_kv_budget_bytes / 1e9:.2f} GB budget)"
            )
        ratio = policy.kv_cache_gpu_ratio
        # In the shared-block regime each pool's page holds exactly its share
        # of one block, so a split block costs one page per pool rather than
        # rounding both shares up to a whole full-size page.  The shares use
        # the same expressions as SharedBlockStore._split_bytes (gpu = b*r,
        # cpu = b - gpu): a different float grouping could land one ulp
        # above the page size and silently double the per-block charge.
        cpu_page_bytes = page_bytes
        gpu_page_bytes = page_bytes
        if prefix_cache and 0 < ratio < 1:
            gpu_page_bytes = page_bytes * ratio
            cpu_page_bytes = page_bytes - gpu_page_bytes
        cpu_pool = MemoryPool("serving-kv-cpu", cpu_kv_budget_bytes, cpu_page_bytes)
        gpu_pool = None
        if ratio > 0:
            if gpu_kv_budget_bytes < gpu_page_bytes:
                raise MemoryManagerError(
                    f"policy {policy.describe()} keeps KV on the GPU but leaves "
                    f"no GPU memory for it "
                    f"({gpu_kv_budget_bytes / 1e9:.2f} GB budget)"
                )
            gpu_pool = MemoryPool(
                "serving-kv-gpu", gpu_kv_budget_bytes, gpu_page_bytes
            )
        self.kv_cache = KVCacheManager(
            model=model,
            cpu_pool=cpu_pool,
            gpu_pool=gpu_pool,
            gpu_ratio=ratio,
            block_tokens=block_tokens,
            prefix_cache=prefix_cache,
        )

        self.admitted_count = 0
        self.rejected_kv_count = 0
        self.rejected_slots_count = 0
        self.cache_hit_count = 0
        self.cached_tokens_total = 0
        self.prompt_tokens_total = 0

    # ------------------------------------------------------------------
    # Checks and reservations
    # ------------------------------------------------------------------
    @property
    def live_requests(self) -> int:
        """Number of sequences currently holding KV reservations."""
        return len(self.kv_cache.sequences)

    def match_prefix(self, request) -> int:
        """Prompt tokens this controller's cache could reuse (routing signal)."""
        if not self.kv_cache.prefix_cache_enabled:
            return 0
        chain = request.block_hash_chain(self.kv_cache.block_tokens)
        if not chain:
            return 0
        return self.kv_cache.match_prefix_hashes(chain, request.input_len - 1)

    def match_prefix_hashes(
        self, block_hashes, matchable_tokens: int
    ) -> int:
        """:meth:`match_prefix` over pre-computed chained block hashes.

        Lets a router hash a prompt once and probe every shard's cache;
        ``matchable_tokens`` is ``len(token_ids) - 1`` for that prompt.
        """
        return self.kv_cache.match_prefix_hashes(block_hashes, matchable_tokens)

    def check(self, serving_request: ServingRequest) -> AdmissionDecision:
        """Whether the request could be admitted right now (no side effects).

        With the prefix cache on, the KV check is *incremental*: blocks
        matching a cached prefix of the prompt cost nothing new, so a mostly
        cached request passes a budget a cold one of the same length fails.
        """
        if self.live_requests >= self.max_live_requests:
            return AdmissionDecision(
                admitted=False,
                reason=f"batch full ({self.max_live_requests} live requests)",
            )
        request = serving_request.request
        if not self.kv_cache.can_admit(
            request.effective_input_len,
            request.generation_len if self.reserve_output_tokens else 0,
            **self._prefix_identity(request),
        ):
            return AdmissionDecision(
                admitted=False,
                reason="KV cache budget exhausted at end-of-generation size",
            )
        return AdmissionDecision(admitted=True)

    def _prefix_identity(self, request) -> dict:
        """Content-identity kwargs for the KV manager, cheapest form first.

        Hash chains are the native currency: stored chains (columnar chat
        streams) cost nothing, eager token ids hash through the memoised
        chain function, and lazy token sources are never materialised just
        to admit or match.  With the cache off there is nothing to match.
        """
        if not self.kv_cache.prefix_cache_enabled:
            return {}
        chain = request.block_hash_chain(self.kv_cache.block_tokens)
        if chain is None:
            return {}
        return {
            "block_hashes": chain,
            "matchable_tokens": request.input_len - 1,
        }

    def admit(self, serving_request: ServingRequest) -> AdmissionDecision:
        """Check and, on success, reserve the request's full KV footprint.

        The reservation covers prompt plus every token that will be
        generated, so a request admitted now can never be evicted mid-decode
        by a later admission — the same guarantee Algorithm 2's cache-budget
        check gives within a batch.  Prefix-cache hits acquire references on
        the matched blocks (pinning them against eviction) and are recorded
        on the request as already-prefilled tokens.
        """
        decision = self.check(serving_request)
        if not decision.admitted:
            if "KV cache" in decision.reason:
                self.rejected_kv_count += 1
                if self.telemetry is not None:
                    self.telemetry.count("admission.rejected_kv")
            else:
                self.rejected_slots_count += 1
                if self.telemetry is not None:
                    self.telemetry.count("admission.rejected_slots")
            return decision
        self.admit_checked(serving_request)
        return decision

    def admit_checked(self, serving_request: ServingRequest) -> None:
        """Reserve KV for a request that just passed :meth:`check`.

        The scheduler's admission loop peeks, checks, pops and admits the
        same request with nothing in between that could change admission
        state, so this skips :meth:`admit`'s redundant re-check — the hot
        path pays for one capacity probe per admission, not two.
        """
        request = serving_request.request
        reserve = (
            request.generation_len if self.reserve_output_tokens else 0
        )
        cache = self.kv_cache.register_sequence(
            serving_request.request_id,
            request.effective_input_len + reserve,
            **self._prefix_identity(request),
        )
        serving_request.tokens_cached = cache.cached_tokens
        serving_request.tokens_prefilled = max(
            serving_request.tokens_prefilled, cache.cached_tokens
        )
        self.admitted_count += 1
        if cache.cached_tokens > 0:
            self.cache_hit_count += 1
        self.cached_tokens_total += cache.cached_tokens
        self.prompt_tokens_total += request.effective_input_len
        if self.telemetry is not None:
            self.telemetry.count("admission.admitted")
            if cache.cached_tokens > 0:
                self.telemetry.count("admission.cache_hits")
                self.telemetry.count("admission.cached_tokens", cache.cached_tokens)

    def release(self, serving_request: ServingRequest) -> None:
        """Free a finished request's KV reservation."""
        self.kv_cache.release_sequence(serving_request.request_id)

    def kv_headroom_tokens(self) -> int:
        """Tokens of fresh KV this controller could still reserve.

        The phase router's decode-side signal: decode shards are ranked by
        how much KV growth they can absorb, not by request count — a shard
        carrying a few very long sessions is as loaded as one carrying many
        short ones.
        """
        return self.kv_cache.headroom_tokens()

    def utilization(self) -> dict[str, float]:
        """Fraction of each KV pool currently reserved."""
        cpu_pool = self.kv_cache.cpu_pool
        report = {
            "kv_cpu": cpu_pool.used_pages / max(cpu_pool.num_pages, 1),
            "live_requests": float(self.live_requests),
        }
        if self.kv_cache.gpu_pool is not None:
            gpu_pool = self.kv_cache.gpu_pool
            report["kv_gpu"] = gpu_pool.used_pages / max(gpu_pool.num_pages, 1)
        return report
