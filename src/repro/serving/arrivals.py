"""Arrival processes: timestamped request streams for online serving.

The offline harness feeds each system one static, pre-formed batch; online
serving replaces that with a *stream* of requests arriving over simulated
wall-clock time.  An :class:`ArrivalProcess` wraps the prompt-length
samplers of :mod:`repro.workloads.generators` and attaches arrival
timestamps drawn from a point process:

* :class:`PoissonProcess` — memoryless arrivals (exponential gaps), the
  standard open-loop load model;
* :class:`GammaProcess` — gamma-distributed gaps whose coefficient of
  variation controls burstiness (cv > 1 is burstier than Poisson, cv < 1
  smoother);
* :class:`DeterministicProcess` — evenly spaced arrivals (cv = 0);
* :class:`ReplayProcess` — replays an explicit timestamp trace.

Every process is fully determined by its parameters plus the ``seed``
passed to :meth:`ArrivalProcess.generate`, so serving experiments are
reproducible run-to-run.  Request bodies and arrival gaps use independent
seeded streams: changing the arrival process never changes *which*
requests are issued, only *when*.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive, require_positive_int
from repro.workloads.generators import generate_request_columns, generate_requests
from repro.workloads.request import Request
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class TimedRequest:
    """A request paired with the simulated wall-clock time it arrives at."""

    request: Request
    arrival_time: float

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ConfigurationError(
                f"arrival_time must be >= 0, got {self.arrival_time}"
            )


class ArrivalProcess(abc.ABC):
    """Base class: draws inter-arrival gaps for a request stream."""

    #: Registry / report name; subclasses override.
    name: str = "base"

    @abc.abstractmethod
    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``count`` sorted, non-negative arrival timestamps."""

    def generate(
        self,
        spec: WorkloadSpec,
        count: int | None = None,
        seed: int = 0,
    ) -> list[TimedRequest]:
        """Materialise a timestamped request stream for ``spec``.

        Prompt lengths come from :func:`generate_requests` seeded with
        ``seed``; arrival gaps use an independent stream derived from the
        same seed, so two processes at the same seed issue identical
        requests on different timelines.
        """
        count = count if count is not None else spec.num_requests
        require_positive_int("count", count)
        requests = generate_requests(spec, count=count, seed=seed)
        times = self.arrival_times(count, np.random.default_rng([seed, 0xA221]))
        if len(times) != count:
            raise ConfigurationError(
                f"{self.name}: expected {count} arrival times, got {len(times)}"
            )
        return [
            TimedRequest(request=request, arrival_time=float(time))
            for request, time in zip(requests, times)
        ]

    def generate_lazy(
        self,
        spec: WorkloadSpec,
        count: int | None = None,
        seed: int = 0,
        token_ids: bool = False,
        prefix_block_tokens: int = 16,
    ) -> Iterator[TimedRequest]:
        """Lazily yield the stream :meth:`generate` would materialise.

        Arrival times are still drawn vectorised in one shot (same rng
        stream as :meth:`generate`, so timestamps match exactly), but
        request bodies come from the columnar generator and turn into
        :class:`Request` objects only as the consumer pulls them — the
        peak footprint of a million-request stream is one request, not a
        million.  ``token_ids=True`` attaches prompt-content identity for
        the prefix cache: chat requests carry columnar block-hash chains
        (at ``prefix_block_tokens`` tokens per block, matching the
        consumer's block store) plus a lazy token source, so the stream
        stays columnar — no eager token-id materialisation even on the
        cache-aware path.
        """
        count = count if count is not None else spec.num_requests
        require_positive_int("count", count)
        times = self.arrival_times(count, np.random.default_rng([seed, 0xA221]))
        if len(times) != count:
            raise ConfigurationError(
                f"{self.name}: expected {count} arrival times, got {len(times)}"
            )
        requests = generate_request_columns(
            spec,
            count=count,
            seed=seed,
            prefix_block_tokens=prefix_block_tokens if token_ids else None,
        ).iter_requests()
        for request, time in zip(requests, times.tolist()):
            yield TimedRequest(request=request, arrival_time=time)


class PoissonProcess(ArrivalProcess):
    """Open-loop Poisson arrivals at ``rate`` requests per second."""

    name = "poisson"

    def __init__(self, rate: float) -> None:
        require_positive("rate", rate)
        self.rate = float(rate)

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        gaps = rng.exponential(scale=1.0 / self.rate, size=count)
        return np.cumsum(gaps)


class GammaProcess(ArrivalProcess):
    """Gamma-renewal arrivals: ``rate`` requests/s with burstiness ``cv``.

    The coefficient of variation ``cv`` of the inter-arrival gap controls
    clustering: ``cv = 1`` recovers Poisson, ``cv > 1`` produces bursts
    separated by lulls (the regime production traces such as Azure LLM
    inference exhibit), ``cv < 1`` approaches a metronome.
    """

    name = "gamma"

    def __init__(self, rate: float, cv: float = 2.0) -> None:
        require_positive("rate", rate)
        require_positive("cv", cv)
        self.rate = float(rate)
        self.cv = float(cv)

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        shape = 1.0 / (self.cv**2)
        scale = 1.0 / (self.rate * shape)
        gaps = rng.gamma(shape=shape, scale=scale, size=count)
        return np.cumsum(gaps)


class DeterministicProcess(ArrivalProcess):
    """Evenly spaced arrivals at exactly ``rate`` requests per second."""

    name = "deterministic"

    def __init__(self, rate: float) -> None:
        require_positive("rate", rate)
        self.rate = float(rate)

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        gap = 1.0 / self.rate
        return gap * np.arange(1, count + 1, dtype=float)


class ReplayProcess(ArrivalProcess):
    """Replays an explicit, pre-recorded arrival-timestamp trace."""

    name = "replay"

    def __init__(self, timestamps: Sequence[float]) -> None:
        if not timestamps:
            raise ConfigurationError("replay trace must contain at least one timestamp")
        ordered = [float(t) for t in timestamps]
        if any(t < 0 for t in ordered):
            raise ConfigurationError("replay timestamps must be non-negative")
        if any(b < a for a, b in zip(ordered, ordered[1:])):
            raise ConfigurationError("replay timestamps must be non-decreasing")
        self.timestamps = ordered

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count > len(self.timestamps):
            raise ConfigurationError(
                f"replay trace has {len(self.timestamps)} timestamps but "
                f"{count} requests were asked for"
            )
        return np.asarray(self.timestamps[:count], dtype=float)
