"""Timestamp-ordered event loop driving N engine cores in global time order.

The first sharded serving loop was *time-sliced*: before routing each
arrival it ran every shard forward to the arrival instant
(O(arrivals x shards) calls), and because an engine step runs to
completion once started, a shard's clock could overshoot the arrival
mid-step — the router then observed state (retirements, queue drains)
from *after* the instant it was deciding at.

This module replaces that with a discrete-event simulation over one
central event queue.  Two event kinds exist:

* **step-complete** — a shard's in-flight engine step finishes; its
  effects (clock advance, first tokens, decode tokens, retirements) are
  applied via :meth:`~repro.serving.server.EngineCore.complete_step`;
* **arrival** — a request reaches the router, which observes every
  shard's true outstanding load *at that instant* and offers the request
  to the chosen shard's queue.

Events are processed in strict timestamp order.  At equal timestamps,
step completions apply before arrivals (a step ending exactly when a
request arrives has retired its requests by the time the router looks),
and all events sharing a timestamp are drained before any shard begins a
new step, so simultaneous arrivals all enter the same scheduling
decision.  Drained shards simply stop producing events; the loop ends
when the queue empties, which doubles as the drain phase.

With ``overlap=False`` engines this reproduces the time-sliced loop's
per-request timeline bit-for-bit whenever routing is load-independent
(round-robin, session-affinity) — and fixes the load signal where it is
not.  A single core behind the loop reproduces
:class:`~repro.serving.server.ServingSystem`'s timeline exactly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, Iterator, Sequence

from repro.serving.queue import ServingRequest
from repro.serving.server import EngineCore
from repro.utils.errors import SimulationError

#: Tie-break priorities at equal timestamps: completions apply first so the
#: router sees post-retirement state, then scheduled callbacks (KV-transfer
#: landings) deliver, then arrivals enqueue, and only once the timestamp is
#: fully drained do idle shards begin their next step.  Renumbering arrivals
#: below callbacks preserves every pre-existing relative order (completions
#: still beat arrivals), so unified timelines are unchanged.
_STEP_COMPLETE = 0
_CALLBACK = 1
_ARRIVAL = 2

#: A routing decision: maps one arrival plus the live cores to a shard index.
RouteFn = Callable[[ServingRequest, Sequence[EngineCore]], int]


class ServingEventLoop:
    """Central event queue multiplexing one arrival stream over N cores.

    ``route`` is called once per arrival with the cores in shard order; it
    returns the index of the shard to offer the request to.  It runs at
    the arrival's exact timestamp, after every earlier (and simultaneous)
    step completion has been applied, so whatever load or cache signal it
    reads is the true global state at that instant.
    """

    def __init__(
        self, cores: Sequence[EngineCore], route: RouteFn, telemetry=None
    ) -> None:
        if not cores:
            raise SimulationError("event loop needs at least one engine core")
        self.cores = list(cores)
        self.route = route
        #: Optional :class:`repro.obs.Telemetry`: the loop drives its
        #: time-series sampler as simulated time advances (per-core event
        #: hooks live on the cores themselves).
        self.telemetry = telemetry
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = itertools.count()
        self._pending_arrivals = 0
        self._pending_callbacks = 0
        self._stream: Iterator[ServingRequest] | None = None
        self._core_index = {id(core): i for i, core in enumerate(self.cores)}
        self._touched: set[int] = set()

    def _push(self, time: float, priority: int, payload: object) -> None:
        heapq.heappush(self._heap, (time, priority, next(self._seq), payload))

    def schedule(self, time: float, callback: Callable[[], Iterable[int]]) -> None:
        """Deliver ``callback`` at ``time`` (a priced in-flight transfer).

        The callback runs after same-instant step completions and before
        same-instant arrivals, and returns the shard indices it touched so
        the loop re-kicks exactly those (a source shard whose admissions
        were KV-blocked on the transfer's reservation retries immediately).
        Pending callbacks count as live work: the wedge detector knows an
        idle-looking shard may be waiting on one.
        """
        self._push(time, _CALLBACK, callback)
        self._pending_callbacks += 1

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(self, records: Sequence[ServingRequest]) -> float:
        """Serve ``records`` (sorted by arrival time) to completion.

        Returns the makespan: the latest shard clock once every offered
        request has retired.
        """
        for serving_request in records:
            self._push(serving_request.arrival_time, _ARRIVAL, serving_request)
        self._pending_arrivals = len(records)
        return self._drain()

    def run_stream(self, records: Iterable[ServingRequest]) -> float:
        """Serve a lazily-generated arrival stream to completion.

        ``records`` must yield requests in non-decreasing arrival-time
        order (as every :class:`~repro.serving.arrivals.ArrivalProcess`
        produces them).  Exactly one unconsumed arrival is held in the
        event queue at a time — popping it pulls the next from the
        iterator — so a million-request stream never materialises as a
        million queued events.  The event order is identical to
        :meth:`run` on the materialised list: the next arrival can never
        be earlier than the one just popped, so pushing it late changes
        nothing the heap ordering observes.
        """
        self._stream = iter(records)
        first = next(self._stream, None)
        if first is not None:
            self._push(first.arrival_time, _ARRIVAL, first)
            self._pending_arrivals = 1
        try:
            return self._drain()
        finally:
            self._stream = None

    def _drain(self) -> float:
        while self._heap:
            time = self._heap[0][0]
            # Sample interval boundaries crossed before this timestamp with
            # the pre-event state: state is constant between events, so the
            # snapshot taken now is exact at every boundary strictly before
            # ``time``.
            if self.telemetry is not None:
                self.telemetry.sample(time, self.cores)
            # Drain every event at this timestamp before starting new
            # steps: completions first (priority order), then arrivals.
            while self._heap and self._heap[0][0] == time:
                _, priority, _, payload = heapq.heappop(self._heap)
                self._dispatch(priority, payload)
            self._kick()
        for core in self.cores:
            if core.has_work():
                # Backstop for the event-driven kick: a wedged shard whose
                # last event left it unable to begin a step surfaces here
                # rather than silently dropping its work.
                raise SimulationError(
                    "serving engine stalled with work outstanding"
                )
        makespan = max((core.now for core in self.cores), default=0.0)
        if self.telemetry is not None:
            self.telemetry.finish_run(makespan, self.cores)
        return makespan

    def _dispatch(self, priority: int, payload: object) -> None:
        if priority == _ARRIVAL:
            self._pending_arrivals -= 1
            if self._stream is not None:
                # Keep the invariant: the next unconsumed arrival is always
                # in the heap.  It joins before this one routes, so a
                # same-timestamp successor drains in this very batch —
                # exactly where the eager path would have it.
                upcoming = next(self._stream, None)
                if upcoming is not None:
                    self._push(upcoming.arrival_time, _ARRIVAL, upcoming)
                    self._pending_arrivals += 1
            serving_request = payload
            shard = self.route(serving_request, self.cores)
            if self.telemetry is not None:
                self.telemetry.record_route(
                    serving_request, shard, serving_request.arrival_time
                )
            self.cores[shard].offer(serving_request)
            self._touched.add(shard)
        elif priority == _CALLBACK:
            self._pending_callbacks -= 1
            self._touched.update(payload())
        else:
            core, crash_epoch = payload
            if core.crash_epoch != crash_epoch:
                # The shard crashed after this step launched: the step died
                # with the device, its requests were torn down at crash
                # time, and this completion event is stale.
                return
            core.complete_step()
            self._touched.add(self._core_index[id(core)])

    def _kick(self) -> None:
        """Begin the next step on every shard an event just touched.

        A shard with no event this timestamp is unchanged since its last
        kick, so re-deciding it would return the same action — scanning
        all N shards per timestamp (the old behaviour) only re-derives
        idle verdicts.  Kicks run in shard order, matching the full scan.
        """
        touched = self._touched
        if not touched:
            return
        for index in sorted(touched):
            core = self.cores[index]
            if core.down or core.step_in_flight or not core.has_work():
                # A down core never begins a step; work it queued while
                # awaiting recovery kicks when the ready event touches it.
                continue
            completion = core.begin_step()
            if completion is not None:
                # The crash epoch rides the completion event so a crash
                # between begin and complete invalidates it (see _dispatch).
                self._push(completion, _STEP_COMPLETE, (core, core.crash_epoch))
            elif (
                core.has_work()
                and self._pending_arrivals == 0
                and self._pending_callbacks == 0
            ):
                # Nothing in flight anywhere can unblock this shard's
                # admission once the arrival stream is exhausted, every
                # scheduled callback (in-flight KV transfer) has landed and
                # its own steps have drained: the engine is wedged.
                raise SimulationError(
                    "serving engine stalled with work outstanding"
                )
        touched.clear()
