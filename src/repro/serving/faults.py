"""Deterministic fault injection, crash recovery and request resilience.

Every layer of the serving stack built so far assumes a fault-free
cluster: devices never die mid-stream, requests never time out or retry,
and a crashed shard has no defined semantics for its in-flight work or
resident KV blocks.  This module supplies the failure half:

* :class:`FaultEvent` / :class:`FaultSchedule` — a seeded, validated,
  time-ordered list of device crash/recover instants plus straggler and
  link-degradation windows.  The schedule is pure data: the same schedule
  against the same arrival stream reproduces the same timeline.
* :class:`ResiliencePolicy` — request-level resilience knobs: deadline
  timeouts, capped exponential-backoff retries (which re-enter the
  arrival stream with the *same* underlying request, so session identity
  is preserved and the prefix cache re-warms), and predictive admission
  shedding for requests whose SLO is already doomed.
* :class:`FaultInjector` — the per-run runtime.  It schedules every
  fault as a first-class timestamped event on the
  :class:`~repro.serving.event_loop.ServingEventLoop` (riding the same
  callback priority as KV-transfer landings), drives each shard through
  the ``ready -> down -> loading -> ready`` state machine mirroring
  :data:`repro.cluster.spec.DEVICE_STATES`, keeps routers off
  dead/loading shards, and owns the retry schedule.

Determinism contract (asserted at tier 1): an **empty** schedule attached
to a run is bit-for-bit identical to a run with no injector at all —
every hook below either never fires or takes a provably inert fast path.

Crash semantics (property-tested): a crash terminates the shard's
in-flight step (its completion event is skipped via a crash epoch), drops
every queued/prefilling/running/staged request with a ``"crash"`` outcome
code, releases every KV reservation and purges the shard's prefix cache —
so the block store returns to zero resident bytes with no negative
refcounts and no dangling ``prefix_index`` entries.  In-flight disagg
migrations whose source or target died mid-transfer release the held
source reservation exactly once (see ``_DisaggController._landing``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.serving.queue import ServingRequest
from repro.utils.errors import ConfigurationError, SimulationError

#: Fault kinds a schedule may contain.
FAULT_KINDS = ("crash", "recover", "straggle", "link-degrade")

#: Shard states mirroring the cluster layer's ``DEVICE_STATES`` plus the
#: failure state ("ready" serves, "loading" is mid-recovery, "down" is
#: crashed with no recovery begun yet).
SHARD_STATES = ("ready", "down", "loading")


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped fault: the unit a :class:`FaultSchedule` orders.

    * ``"crash"`` — shard ``shard`` dies at ``time``: in-flight step torn
      down, all outstanding requests dropped, KV residency freed.
    * ``"recover"`` — shard ``shard`` begins reloading the model at
      ``time`` and serves again at ``time + duration`` (the load time:
      the ``loading -> ready`` transition of the device state machine).
    * ``"straggle"`` — shard ``shard`` runs ``factor``x slower for
      ``duration`` seconds (every step priced in the window stretches).
    * ``"link-degrade"`` — the cluster link runs ``factor``x slower for
      ``duration`` seconds (``shard`` is ignored; affects KV transfers).
    """

    kind: str
    time: float
    shard: int | None = None
    duration: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.time < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.time}")
        if self.kind in ("crash", "recover", "straggle") and self.shard is None:
            raise ConfigurationError(f"{self.kind} faults need a shard id")
        if self.kind in ("recover", "straggle", "link-degrade"):
            if self.duration < 0:
                raise ConfigurationError(
                    f"{self.kind} duration must be >= 0, got {self.duration}"
                )
        if self.kind in ("straggle", "link-degrade") and self.factor < 1.0:
            raise ConfigurationError(
                f"{self.kind} factor must be >= 1 (a slowdown), "
                f"got {self.factor}"
            )


@dataclass(frozen=True)
class FaultSchedule:
    """A validated, time-ordered fault timeline for one serving run.

    Construct directly from events or through the pattern constructors
    (:meth:`transient_crash`, :meth:`correlated`, :meth:`rolling_restart`,
    seeded :meth:`random`).  An empty schedule is the explicit "chaos off"
    value: attaching it to a run must reproduce the no-injector timeline
    bit-for-bit.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, FAULT_KINDS.index(e.kind)))
        )
        object.__setattr__(self, "events", ordered)
        down: set[int] = set()
        for event in ordered:
            if event.kind == "crash":
                if event.shard in down:
                    raise ConfigurationError(
                        f"shard {event.shard} crashes at t={event.time} while "
                        "already down (recover it first)"
                    )
                down.add(event.shard)
            elif event.kind == "recover":
                if event.shard not in down:
                    raise ConfigurationError(
                        f"shard {event.shard} recovers at t={event.time} "
                        "without a preceding crash"
                    )
                down.discard(event.shard)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def shards(self) -> set[int]:
        """Every shard id the schedule touches."""
        return {e.shard for e in self.events if e.shard is not None}

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """The explicit no-faults schedule (bit-for-bit inert)."""
        return cls(())

    @classmethod
    def transient_crash(
        cls,
        shard: int,
        at: float,
        recover_at: float | None = None,
        load_time: float = 0.0,
    ) -> "FaultSchedule":
        """One shard dies at ``at`` and reloads at ``recover_at``.

        ``recover_at=None`` leaves the shard dark for the rest of the run.
        The shard serves again at ``recover_at + load_time``.
        """
        events = [FaultEvent("crash", at, shard)]
        if recover_at is not None:
            if recover_at < at:
                raise ConfigurationError(
                    f"recover_at ({recover_at}) precedes the crash ({at})"
                )
            events.append(FaultEvent("recover", recover_at, shard, load_time))
        return cls(tuple(events))

    @classmethod
    def correlated(
        cls,
        shards: Sequence[int],
        at: float,
        recover_at: float | None = None,
        load_time: float = 0.0,
    ) -> "FaultSchedule":
        """A whole pool dies at once (rack / power-domain failure)."""
        events: list[FaultEvent] = []
        for shard in shards:
            events.append(FaultEvent("crash", at, shard))
            if recover_at is not None:
                events.append(
                    FaultEvent("recover", recover_at, shard, load_time)
                )
        return cls(tuple(events))

    @classmethod
    def rolling_restart(
        cls,
        shards: Sequence[int],
        start: float,
        interval: float,
        downtime: float,
        load_time: float = 0.0,
    ) -> "FaultSchedule":
        """Restart the shards one at a time, ``interval`` seconds apart.

        Shard ``k`` goes down at ``start + k * interval`` and begins
        reloading ``downtime`` seconds later — the planned-maintenance
        pattern where capacity dips by one shard at a time.
        """
        if interval <= 0 or downtime < 0:
            raise ConfigurationError(
                "rolling restart needs interval > 0 and downtime >= 0"
            )
        events: list[FaultEvent] = []
        for k, shard in enumerate(shards):
            down_at = start + k * interval
            events.append(FaultEvent("crash", down_at, shard))
            events.append(
                FaultEvent("recover", down_at + downtime, shard, load_time)
            )
        return cls(tuple(events))

    @classmethod
    def random(
        cls,
        num_shards: int,
        horizon: float,
        seed: int = 0,
        num_crashes: int = 2,
        mean_downtime: float | None = None,
        load_time: float = 0.0,
    ) -> "FaultSchedule":
        """A seeded random crash/recover timeline (property-test fodder).

        Crash instants are uniform over ``[0, horizon)``; each crash
        recovers after an exponential downtime (mean ``horizon / 10`` by
        default).  Crashes targeting a still-down shard are re-pointed to
        an up shard; if every shard is down the crash is skipped, so the
        schedule always validates.
        """
        if num_shards <= 0 or horizon <= 0:
            raise ConfigurationError(
                "random schedule needs num_shards > 0 and horizon > 0"
            )
        rng = np.random.default_rng(seed)
        mean_down = mean_downtime if mean_downtime is not None else horizon / 10
        events: list[FaultEvent] = []
        busy_until: dict[int, float] = {}
        for _ in range(num_crashes):
            at = float(rng.uniform(0.0, horizon))
            up = [
                s for s in range(num_shards) if busy_until.get(s, -1.0) < at
            ]
            if not up:
                continue
            shard = int(up[int(rng.integers(0, len(up)))])
            downtime = float(rng.exponential(mean_down))
            events.append(FaultEvent("crash", at, shard))
            events.append(FaultEvent("recover", at + downtime, shard, load_time))
            busy_until[shard] = at + downtime + load_time
        return cls(tuple(events))


@dataclass(frozen=True)
class ResiliencePolicy:
    """Request-level resilience knobs for one serving run.

    * ``max_retries`` / ``retry_backoff`` / ``backoff_cap`` — a request
      dropped with a code in ``retry_on`` re-enters the arrival stream
      after ``min(backoff_cap, retry_backoff * 2**attempt)`` seconds,
      carrying the same underlying :class:`~repro.workloads.request.Request`
      (same id, session and prefix hash chain, so the prefix cache
      re-warms).  Each attempt gets its own SLO clock — its arrival time
      is the re-injection instant.
    * ``deadline`` — queued requests older than this at a step boundary
      are dropped with a ``"timeout"`` code (checked head-first, exact
      under FCFS queue ordering).
    * ``shed`` / ``shed_ttft_factor`` — predictive admission: an arrival
      whose predicted queue wait already exceeds ``shed_ttft_factor``
      times the TTFT SLO is dropped at the door (``"shed"``) instead of
      queueing to certain SLO failure under reduced capacity.
    """

    max_retries: int = 0
    retry_backoff: float = 0.5
    backoff_cap: float = 8.0
    retry_on: tuple[str, ...] = ("crash", "timeout")
    deadline: float | None = None
    shed: bool = False
    shed_ttft_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff < 0 or self.backoff_cap < 0:
            raise ConfigurationError("retry backoff values must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be > 0 seconds, got {self.deadline}"
            )
        if self.shed_ttft_factor <= 0:
            raise ConfigurationError(
                f"shed_ttft_factor must be > 0, got {self.shed_ttft_factor}"
            )
        for code in self.retry_on:
            if code not in ("crash", "timeout", "unavailable"):
                raise ConfigurationError(
                    f"retry_on accepts 'crash'/'timeout'/'unavailable', "
                    f"got {code!r}"
                )

    def backoff(self, attempt: int) -> float:
        """Delay before re-injecting attempt ``attempt + 1``."""
        return min(self.backoff_cap, self.retry_backoff * (2.0**attempt))


class FaultInjector:
    """Per-run fault runtime: schedules events, drives shard states, retries.

    One injector per run (it holds run state).  Wiring order:

    1. construct with the run's cores, schedule and policy;
    2. wrap the routing callback with :meth:`wrap_route` (keeps arrivals
       off dead/loading shards — a pure pass-through while every shard is
       available);
    3. install :meth:`handle_failure` as each core's ``on_fail`` sink;
    4. :meth:`attach` the event loop — this schedules every fault event.

    The injector mutates any registered ``ready_view`` lists (e.g. a
    :class:`~repro.serving.router.PhaseRouter`'s ``ready_at``) so
    phase-aware routing sees crashes as un-readiness with zero new code.
    """

    def __init__(
        self,
        cores: Sequence,
        schedule: FaultSchedule,
        resilience: ResiliencePolicy | None = None,
        telemetry=None,
    ) -> None:
        for event in schedule.events:
            if event.shard is not None and not (
                0 <= event.shard < len(cores)
            ):
                raise ConfigurationError(
                    f"fault targets shard {event.shard} but the run has "
                    f"{len(cores)} shards"
                )
        self.cores = list(cores)
        self.schedule = schedule
        self.resilience = resilience
        self.telemetry = telemetry
        self.loop = None
        self._route: Callable | None = None
        self._record_sink: Callable[[ServingRequest], None] | None = None
        #: Shards currently down or loading (routing avoids these).
        self._unavailable: set[int] = set()
        self._states = ["ready"] * len(cores)
        self._down_since: dict[int, float] = {}
        #: Earliest known future serve instant per currently-dark shard.
        self._recover_eta: dict[int, float] = {}
        # Precomputed: for each crash event, whether a later recover event
        # exists for that shard (drives offer()'s queue-vs-reject verdict).
        self._has_recovery: dict[int, bool] = {}
        pending = list(schedule.events)
        for i, event in enumerate(pending):
            if event.kind != "crash":
                continue
            self._has_recovery[id(event)] = any(
                later.kind == "recover" and later.shard == event.shard
                for later in pending[i + 1 :]
            )
        #: Ready-at lists (e.g. PhaseRouter.ready_at) mutated on
        #: crash/recover so readiness-aware routers track live state.
        self._ready_views: list[list[float]] = []
        #: Hooks fired with (shard, dropped_requests) after a crash
        #: teardown (the disagg controller unwinds router accounting here).
        self.on_crash_drops: list[Callable[[int, list[ServingRequest]], None]] = []
        #: Current cluster-link slowdown factor (>= 1.0; KV transfers
        #: multiply their delay by this).
        self.link_penalty = 1.0
        # Counters (surfaced through admission_stats / the chaos sweep).
        self.crashes = 0
        self.recoveries = 0
        self.retries = 0
        self.kv_bytes_lost = 0.0
        self.blocks_lost = 0
        self.unavailability_s = 0.0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_route(self, route: Callable) -> None:
        """Register the run's final routing callback (used for retries)."""
        self._route = route

    def add_ready_view(self, ready_at: list[float]) -> None:
        """Mutate ``ready_at[shard]`` on crash/recover (router readiness)."""
        self._ready_views.append(ready_at)

    def attach(self, loop, record_sink=None) -> None:
        """Schedule every fault event on the run's event loop.

        ``record_sink`` (stored-sample runs) receives each retry's fresh
        :class:`ServingRequest` so the post-run summary counts every
        attempt; streaming runs leave it ``None`` — their terminal sinks
        see retries the same way they see first attempts.
        """
        self.loop = loop
        self._record_sink = record_sink
        for event in self.schedule.events:
            loop.schedule(event.time, self._handler(event))

    def wrap_route(self, route: Callable) -> Callable:
        """Keep the routing callback off dead and loading shards.

        While every shard is available this is a pure pass-through (the
        inner policy's pick is returned untouched), so an empty schedule
        routes bit-for-bit identically.  When the pick is unavailable the
        arrival falls back to the least-loaded available shard; with the
        whole cluster dark it queues on the shard that recovers first.
        """
        unavailable = self._unavailable

        def routed(serving_request: ServingRequest, cores) -> int:
            shard = route(serving_request, cores)
            if not unavailable or shard not in unavailable:
                return shard
            up = [i for i in range(len(cores)) if i not in unavailable]
            if up:
                return min(up, key=lambda i: (cores[i].load(), i))
            eta = self._recover_eta
            if eta:
                return min(eta, key=lambda s: (eta[s], s))
            return shard  # whole cluster dark forever: offer() rejects

        return routed

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def state(self, shard: int) -> str:
        """The shard's availability state (``ready``/``down``/``loading``)."""
        return self._states[shard]

    def available(self, shard: int) -> bool:
        """Whether the shard is serving right now."""
        return shard not in self._unavailable

    def stats(self) -> dict[str, float]:
        """Fault counters for reports and sweep rows."""
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "retries": self.retries,
            "kv_bytes_lost": self.kv_bytes_lost,
            "blocks_lost": self.blocks_lost,
            "unavailability_s": self.unavailability_s,
        }

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handler(self, event: FaultEvent):
        if event.kind == "crash":
            return lambda: self._on_crash(event)
        if event.kind == "recover":
            return lambda: self._on_recover(event)
        if event.kind == "straggle":
            return lambda: self._on_straggle(event)
        return lambda: self._on_link_degrade(event)

    def _on_crash(self, event: FaultEvent):
        shard = event.shard
        core = self.cores[shard]
        self.crashes += 1
        self._states[shard] = "down"
        self._unavailable.add(shard)
        self._down_since[shard] = event.time
        if self._has_recovery.get(id(event), False):
            core.recover_pending = True
        else:
            self._recover_eta.pop(shard, None)
        for view in self._ready_views:
            view[shard] = float("inf")
        # Account the KV the device is about to lose (shared blocks once).
        kv = core.admission.kv_cache
        self.kv_bytes_lost += kv.cpu_bytes + kv.gpu_bytes
        store = kv.block_store
        if store is not None:
            self.blocks_lost += store.num_blocks
        dropped = core.crash(event.time)
        if self.telemetry is not None:
            self.telemetry.record_fault(
                shard, "crash", event.time, dropped=len(dropped)
            )
        for hook in self.on_crash_drops:
            hook(shard, dropped)
        for serving_request in dropped:
            self._maybe_retry(serving_request, event.time, "crash")
        return ()

    def _on_recover(self, event: FaultEvent):
        shard = event.shard
        ready_time = event.time + event.duration
        self._states[shard] = "loading"
        self._recover_eta[shard] = ready_time
        for view in self._ready_views:
            view[shard] = ready_time
        if self.telemetry is not None:
            self.telemetry.record_fault(
                shard, "recover", event.time, ready_at=ready_time
            )
        loop = self.loop
        assert loop is not None  # attach() scheduled this handler
        if event.duration > 0:
            loop.schedule(ready_time, lambda: self._on_ready(shard, ready_time))
            return ()
        return self._on_ready(shard, ready_time)

    def _on_ready(self, shard: int, now: float):
        core = self.cores[shard]
        self._states[shard] = "ready"
        self._unavailable.discard(shard)
        self._recover_eta.pop(shard, None)
        self.recoveries += 1
        core.down = False
        core.recover_pending = False
        # The reloaded model serves no earlier than its ready instant —
        # the mid-stream counterpart of DeviceSpec.ready_at at startup.
        core.now = max(core.now, now)
        down_since = self._down_since.pop(shard, now)
        self.unavailability_s += now - down_since
        if self.telemetry is not None:
            self.telemetry.record_unavailability(shard, down_since, now)
        return (shard,)

    def _on_straggle(self, event: FaultEvent):
        shard = event.shard
        core = self.cores[shard]
        core.perf_penalty *= event.factor
        if self.telemetry is not None:
            self.telemetry.record_fault(
                shard, "straggle", event.time, factor=event.factor
            )
        loop = self.loop
        assert loop is not None

        def clear():
            core.perf_penalty /= event.factor
            if core.perf_penalty == 1.0 or abs(core.perf_penalty - 1.0) < 1e-12:
                core.perf_penalty = 1.0
            return (shard,)

        loop.schedule(event.time + event.duration, clear)
        return (shard,)

    def _on_link_degrade(self, event: FaultEvent):
        self.link_penalty *= event.factor
        if self.telemetry is not None:
            self.telemetry.record_fault(
                None, "link-degrade", event.time, factor=event.factor
            )
        loop = self.loop
        assert loop is not None

        def clear():
            self.link_penalty /= event.factor
            if abs(self.link_penalty - 1.0) < 1e-12:
                self.link_penalty = 1.0
            return ()

        loop.schedule(event.time + event.duration, clear)
        return ()

    # ------------------------------------------------------------------
    # Request resilience
    # ------------------------------------------------------------------
    def handle_failure(
        self, serving_request: ServingRequest, now: float, code: str
    ) -> None:
        """A core's ``on_fail`` sink: retry the drop if policy allows."""
        self._maybe_retry(serving_request, now, code)

    def _maybe_retry(
        self, serving_request: ServingRequest, now: float, code: str
    ) -> None:
        policy = self.resilience
        if (
            policy is None
            or code not in policy.retry_on
            or serving_request.attempt >= policy.max_retries
        ):
            return
        attempt = serving_request.attempt + 1
        retry_at = now + policy.backoff(serving_request.attempt)
        retry = ServingRequest(
            request=serving_request.request,
            arrival_time=retry_at,
            attempt=attempt,
        )
        self.retries += 1
        if self.telemetry is not None:
            self.telemetry.count("requests.retried")
        if self._record_sink is not None:
            self._record_sink(retry)
        loop = self.loop
        if loop is None:
            raise SimulationError(
                "retry scheduled before the injector was attached to a loop"
            )

        def inject():
            route = self._route
            assert route is not None  # set_route() runs before the loop
            shard = route(retry, self.cores)
            if self.telemetry is not None:
                self.telemetry.record_route(retry, shard, retry_at)
            self.cores[shard].offer(retry)
            return (shard,)

        loop.schedule(retry_at, inject)
