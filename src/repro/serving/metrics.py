"""Per-request latency metrics, percentiles and SLO-goodput.

Online serving is judged on latency *distributions*, not the single batch
throughput number of the offline harness:

* **TTFT** — time to first token (arrival to end of prefill), the metric
  interactive users feel;
* **TPOT** — time per output token over the decode phase, the streaming
  smoothness metric;
* **E2E latency** — arrival to final token;
* **SLO-goodput** — completed requests per second that met *both* the TTFT
  and TPOT SLOs: the quantity a capacity planner actually provisions for,
  since tokens delivered late count for nothing.

Percentiles use linear interpolation (numpy's default) so reports are
deterministic and comparable across runs.

Aggregation runs in one of two modes (:class:`ReportBuilder`):

* ``store_samples=True`` — every latency sample is kept and percentiles
  are exact (``numpy.percentile``); this is the historical path and the
  one regression tests pin bit-for-bit;
* ``store_samples=False`` — the streaming mode: each latency metric feeds
  P² quantile sketches (:class:`repro.obs.P2Quantile`, O(1) memory per
  metric) and running sums, so million-request streams aggregate with
  flat memory.  Estimates are exact below five samples and within the
  tested P² tolerance beyond.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.obs.metrics import P2Quantile
from repro.serving.queue import OUTCOME_CODES, RequestState, ServingRequest
from repro.utils.validation import require_positive

#: Percentiles reported for each latency metric.
REPORT_PERCENTILES: tuple[int, ...] = (50, 95, 99)


_RAISE = object()


def percentile(
    values: Sequence[float], q: float, default: float = _RAISE
) -> float:
    """The ``q``-th percentile of ``values`` by linear interpolation.

    An empty sample has no percentile: it raises :class:`ValueError` unless
    an explicit ``default`` is supplied.  (The old behaviour of silently
    returning ``0.0`` made an empty run's p99 indistinguishable from a
    genuinely instant one — callers that want a sentinel must now say so.)
    """
    if not values:
        if default is _RAISE:
            raise ValueError(
                f"percentile(q={q}) of an empty sample is undefined; "
                "pass default= to choose a sentinel"
            )
        return default
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class SLO:
    """A latency service-level objective, in simulated seconds."""

    ttft: float
    tpot: float

    def __post_init__(self) -> None:
        require_positive("ttft", self.ttft)
        require_positive("tpot", self.tpot)

    def is_met(self, serving_request: ServingRequest) -> bool:
        """Whether a finished request met both latency targets."""
        ttft = serving_request.ttft
        tpot = serving_request.tpot
        if ttft is None or tpot is None:
            return False
        return ttft <= self.ttft and tpot <= self.tpot

    def scaled(self, factor: float) -> "SLO":
        """A copy with both targets multiplied by ``factor``."""
        require_positive("factor", factor)
        return SLO(ttft=self.ttft * factor, tpot=self.tpot * factor)


@dataclass(frozen=True)
class ServingReport:
    """Aggregate metrics for one serving run."""

    num_offered: int
    num_completed: int
    num_rejected: int
    makespan: float
    tokens_generated: int
    ttft: dict[int, float]
    tpot: dict[int, float]
    e2e: dict[int, float]
    mean_ttft: float
    mean_tpot: float
    slo_met: int
    goodput: float
    #: Prefix-cache statistics (all zero when the cache is off or cold).
    cache_hits: int = 0
    hit_rate: float = 0.0
    cached_token_fraction: float = 0.0
    mean_ttft_hit: float = 0.0
    mean_ttft_miss: float = 0.0
    #: Rejections by canonical outcome code (``queue-full``, ``crash``,
    #: ``timeout``, ``shed``, ...) — the per-class breakdown of
    #: ``num_rejected``, so drops never vanish into one opaque total.
    outcomes: dict[str, int] = field(default_factory=dict)
    #: Offered requests that were resilience-layer re-submissions
    #: (``attempt > 0``); 0 on every run without retries.
    num_retries: int = 0

    @property
    def completion_rate(self) -> float:
        """Fraction of offered requests that completed."""
        if self.num_offered == 0:
            return 0.0
        return self.num_completed / self.num_offered

    @property
    def token_throughput(self) -> float:
        """Generated tokens per second over the whole run."""
        if self.makespan <= 0:
            return 0.0
        return self.tokens_generated / self.makespan

    @property
    def request_throughput(self) -> float:
        """Completed requests per second over the whole run."""
        if self.makespan <= 0:
            return 0.0
        return self.num_completed / self.makespan

    @property
    def goodput_fraction(self) -> float:
        """Fraction of *offered* requests that completed within the SLO.

        Rejected and SLO-violating requests both count against this, so it
        is the end-user success probability under the offered load.
        """
        if self.num_offered == 0:
            return 0.0
        return self.slo_met / self.num_offered

    def as_row(self) -> dict[str, object]:
        """Flat dictionary for the table renderer."""
        row: dict[str, object] = {
            "offered": self.num_offered,
            "completed": self.num_completed,
            "rejected": self.num_rejected,
            "makespan_s": self.makespan,
            "token_throughput": self.token_throughput,
            "ttft_p50": self.ttft[50],
            "ttft_p95": self.ttft[95],
            "ttft_p99": self.ttft[99],
            "tpot_p50": self.tpot[50],
            "tpot_p95": self.tpot[95],
            "tpot_p99": self.tpot[99],
            "e2e_p50": self.e2e[50],
            "e2e_p95": self.e2e[95],
            "e2e_p99": self.e2e[99],
            "mean_ttft": self.mean_ttft,
            "mean_tpot": self.mean_tpot,
            "slo_met": self.slo_met,
            "goodput": self.goodput,
            "goodput_fraction": self.goodput_fraction,
            "hit_rate": self.hit_rate,
            "cached_token_fraction": self.cached_token_fraction,
        }
        row["retries"] = self.num_retries
        for code in OUTCOME_CODES:
            row[f"drop_{code.replace('-', '_')}"] = self.outcomes.get(code, 0)
        return row


class ReportBuilder:
    """Incremental :class:`ServingReport` aggregation over request records.

    ``store_samples=True`` keeps every latency sample and computes exact
    ``numpy.percentile`` / ``numpy.mean`` values — byte-identical to the
    historical :func:`summarize` (which now delegates here).

    ``store_samples=False`` is the streaming mode: O(1) memory regardless
    of stream length.  Percentiles come from P² sketches (exact below five
    samples, within tested tolerance beyond) and means from running sums
    (which can differ from numpy's pairwise summation in the last few
    ulps — acceptable only in this mode).
    """

    _LATENCIES = ("ttft", "tpot", "e2e")

    def __init__(self, slo: SLO, *, store_samples: bool = False) -> None:
        self.slo = slo
        self.store_samples = store_samples
        self.num_offered = 0
        self.num_completed = 0
        self.num_rejected = 0
        self.tokens_generated = 0
        self.slo_met = 0
        self.cache_hits = 0
        self.prompt_tokens = 0
        self.cached_tokens = 0
        self.outcomes: dict[str, int] = {}
        self.num_retries = 0
        if store_samples:
            self._samples: dict[str, list[float]] = {
                name: [] for name in self._LATENCIES
            }
            self._hit_ttfts: list[float] = []
            self._miss_ttfts: list[float] = []
        else:
            self._sketches: dict[str, dict[int, P2Quantile]] = {
                name: {q: P2Quantile(q / 100.0) for q in REPORT_PERCENTILES}
                for name in self._LATENCIES
            }
            self._sums: dict[str, float] = {
                "ttft": 0.0, "tpot": 0.0, "hit_ttft": 0.0, "miss_ttft": 0.0
            }
            self._counts: dict[str, int] = {
                "ttft": 0, "tpot": 0, "hit_ttft": 0, "miss_ttft": 0
            }
            # Hot-path view of the sketches (tuple iteration beats dict
            # .values() at ~10k observations/s per shard).
            self._sketch_tuples: dict[str, tuple[P2Quantile, ...]] = {
                name: tuple(sketches.values())
                for name, sketches in self._sketches.items()
            }

    def observe(self, sr: ServingRequest) -> None:
        """Fold one terminal (or still-live, at stream end) request in."""
        self.num_offered += 1
        if sr.attempt:
            self.num_retries += 1
        state = sr.state
        if state is RequestState.REJECTED:
            self.num_rejected += 1
            code = sr.outcome_code or "other"
            self.outcomes[code] = self.outcomes.get(code, 0) + 1
            return
        if state is not RequestState.FINISHED:
            return
        self.num_completed += 1
        self.tokens_generated += sr.tokens_decoded
        if self.slo.is_met(sr):
            self.slo_met += 1
        self.prompt_tokens += sr.request.effective_input_len
        self.cached_tokens += sr.tokens_cached
        hit = sr.is_cache_hit
        if hit:
            self.cache_hits += 1
        ttft = sr.ttft
        tpot = sr.tpot
        e2e = sr.e2e_latency
        if self.store_samples:
            if ttft is not None:
                self._samples["ttft"].append(ttft)
                (self._hit_ttfts if hit else self._miss_ttfts).append(ttft)
            if tpot is not None:
                self._samples["tpot"].append(tpot)
            if e2e is not None:
                self._samples["e2e"].append(e2e)
        else:
            if ttft is not None:
                for sketch in self._sketch_tuples["ttft"]:
                    sketch.add(ttft)
                self._sums["ttft"] += ttft
                self._counts["ttft"] += 1
                key = "hit_ttft" if hit else "miss_ttft"
                self._sums[key] += ttft
                self._counts[key] += 1
            if tpot is not None:
                for sketch in self._sketch_tuples["tpot"]:
                    sketch.add(tpot)
                self._sums["tpot"] += tpot
                self._counts["tpot"] += 1
            if e2e is not None:
                for sketch in self._sketch_tuples["e2e"]:
                    sketch.add(e2e)

    def observe_many(self, serving_requests: Iterable[ServingRequest]) -> None:
        """Fold a batch of terminal requests in (one retirement's worth).

        Identical aggregate state to calling :meth:`observe` per request in
        the same order: each P² sketch sees its own metric's values in
        batch order, and the running float sums accumulate left-to-right —
        only the per-request call and dict-lookup overhead is amortised.
        """
        if self.store_samples:
            for serving_request in serving_requests:
                self.observe(serving_request)
            return
        ttfts: list[float] = []
        tpots: list[float] = []
        e2es: list[float] = []
        sums = self._sums
        counts = self._counts
        for sr in serving_requests:
            self.num_offered += 1
            if sr.attempt:
                self.num_retries += 1
            state = sr.state
            if state is RequestState.REJECTED:
                self.num_rejected += 1
                code = sr.outcome_code or "other"
                self.outcomes[code] = self.outcomes.get(code, 0) + 1
                continue
            if state is not RequestState.FINISHED:
                continue
            self.num_completed += 1
            self.tokens_generated += sr.tokens_decoded
            if self.slo.is_met(sr):
                self.slo_met += 1
            self.prompt_tokens += sr.request.effective_input_len
            self.cached_tokens += sr.tokens_cached
            hit = sr.is_cache_hit
            if hit:
                self.cache_hits += 1
            ttft = sr.ttft
            tpot = sr.tpot
            e2e = sr.e2e_latency
            if ttft is not None:
                ttfts.append(ttft)
                sums["ttft"] += ttft
                counts["ttft"] += 1
                key = "hit_ttft" if hit else "miss_ttft"
                sums[key] += ttft
                counts[key] += 1
            if tpot is not None:
                tpots.append(tpot)
                sums["tpot"] += tpot
                counts["tpot"] += 1
            if e2e is not None:
                e2es.append(e2e)
        if ttfts:
            for sketch in self._sketch_tuples["ttft"]:
                sketch.add_many(ttfts)
        if tpots:
            for sketch in self._sketch_tuples["tpot"]:
                sketch.add_many(tpots)
        if e2es:
            for sketch in self._sketch_tuples["e2e"]:
                sketch.add_many(e2es)

    def _percentiles(self, name: str) -> dict[int, float]:
        # A run that completed nothing reports 0.0 percentiles (the
        # historical sentinel), chosen explicitly here.
        if self.store_samples:
            values = self._samples[name]
            return {
                q: percentile(values, q, default=0.0)
                for q in REPORT_PERCENTILES
            }
        out: dict[int, float] = {}
        for q, sketch in self._sketches[name].items():
            value = sketch.value()
            out[q] = 0.0 if math.isnan(value) else float(value)
        return out

    def _mean(self, key: str) -> float:
        if self.store_samples:
            values = {
                "ttft": self._samples["ttft"],
                "tpot": self._samples["tpot"],
                "hit_ttft": self._hit_ttfts,
                "miss_ttft": self._miss_ttfts,
            }[key]
            return float(np.mean(values)) if values else 0.0
        count = self._counts[key]
        return self._sums[key] / count if count else 0.0

    def build(self, makespan: float) -> ServingReport:
        """Freeze the aggregates into a :class:`ServingReport`."""
        return ServingReport(
            num_offered=self.num_offered,
            num_completed=self.num_completed,
            num_rejected=self.num_rejected,
            makespan=makespan,
            tokens_generated=self.tokens_generated,
            ttft=self._percentiles("ttft"),
            tpot=self._percentiles("tpot"),
            e2e=self._percentiles("e2e"),
            mean_ttft=self._mean("ttft"),
            mean_tpot=self._mean("tpot"),
            slo_met=self.slo_met,
            goodput=self.slo_met / makespan if makespan > 0 else 0.0,
            cache_hits=self.cache_hits,
            hit_rate=(
                self.cache_hits / self.num_completed
                if self.num_completed else 0.0
            ),
            cached_token_fraction=(
                self.cached_tokens / self.prompt_tokens
                if self.prompt_tokens > 0 else 0.0
            ),
            mean_ttft_hit=self._mean("hit_ttft"),
            mean_ttft_miss=self._mean("miss_ttft"),
            outcomes=dict(self.outcomes),
            num_retries=self.num_retries,
        )


def summarize(
    requests: Iterable[ServingRequest],
    makespan: float,
    slo: SLO,
) -> ServingReport:
    """Aggregate per-request records into a :class:`ServingReport`.

    Exact (stored-sample) aggregation; for streams too large to hold,
    feed a streaming :class:`ReportBuilder` instead.
    """
    builder = ReportBuilder(slo, store_samples=True)
    for sr in requests:
        builder.observe(sr)
    return builder.build(makespan)
