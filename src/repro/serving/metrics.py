"""Per-request latency metrics, percentiles and SLO-goodput.

Online serving is judged on latency *distributions*, not the single batch
throughput number of the offline harness:

* **TTFT** — time to first token (arrival to end of prefill), the metric
  interactive users feel;
* **TPOT** — time per output token over the decode phase, the streaming
  smoothness metric;
* **E2E latency** — arrival to final token;
* **SLO-goodput** — completed requests per second that met *both* the TTFT
  and TPOT SLOs: the quantity a capacity planner actually provisions for,
  since tokens delivered late count for nothing.

Percentiles use linear interpolation (numpy's default) so reports are
deterministic and comparable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.serving.queue import RequestState, ServingRequest
from repro.utils.validation import require_positive

#: Percentiles reported for each latency metric.
REPORT_PERCENTILES: tuple[int, ...] = (50, 95, 99)


_RAISE = object()


def percentile(
    values: Sequence[float], q: float, default: float = _RAISE
) -> float:
    """The ``q``-th percentile of ``values`` by linear interpolation.

    An empty sample has no percentile: it raises :class:`ValueError` unless
    an explicit ``default`` is supplied.  (The old behaviour of silently
    returning ``0.0`` made an empty run's p99 indistinguishable from a
    genuinely instant one — callers that want a sentinel must now say so.)
    """
    if not values:
        if default is _RAISE:
            raise ValueError(
                f"percentile(q={q}) of an empty sample is undefined; "
                "pass default= to choose a sentinel"
            )
        return default
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class SLO:
    """A latency service-level objective, in simulated seconds."""

    ttft: float
    tpot: float

    def __post_init__(self) -> None:
        require_positive("ttft", self.ttft)
        require_positive("tpot", self.tpot)

    def is_met(self, serving_request: ServingRequest) -> bool:
        """Whether a finished request met both latency targets."""
        ttft = serving_request.ttft
        tpot = serving_request.tpot
        if ttft is None or tpot is None:
            return False
        return ttft <= self.ttft and tpot <= self.tpot

    def scaled(self, factor: float) -> "SLO":
        """A copy with both targets multiplied by ``factor``."""
        require_positive("factor", factor)
        return SLO(ttft=self.ttft * factor, tpot=self.tpot * factor)


@dataclass(frozen=True)
class ServingReport:
    """Aggregate metrics for one serving run."""

    num_offered: int
    num_completed: int
    num_rejected: int
    makespan: float
    tokens_generated: int
    ttft: dict[int, float]
    tpot: dict[int, float]
    e2e: dict[int, float]
    mean_ttft: float
    mean_tpot: float
    slo_met: int
    goodput: float
    #: Prefix-cache statistics (all zero when the cache is off or cold).
    cache_hits: int = 0
    hit_rate: float = 0.0
    cached_token_fraction: float = 0.0
    mean_ttft_hit: float = 0.0
    mean_ttft_miss: float = 0.0

    @property
    def completion_rate(self) -> float:
        """Fraction of offered requests that completed."""
        if self.num_offered == 0:
            return 0.0
        return self.num_completed / self.num_offered

    @property
    def token_throughput(self) -> float:
        """Generated tokens per second over the whole run."""
        if self.makespan <= 0:
            return 0.0
        return self.tokens_generated / self.makespan

    @property
    def request_throughput(self) -> float:
        """Completed requests per second over the whole run."""
        if self.makespan <= 0:
            return 0.0
        return self.num_completed / self.makespan

    @property
    def goodput_fraction(self) -> float:
        """Fraction of *offered* requests that completed within the SLO.

        Rejected and SLO-violating requests both count against this, so it
        is the end-user success probability under the offered load.
        """
        if self.num_offered == 0:
            return 0.0
        return self.slo_met / self.num_offered

    def as_row(self) -> dict[str, object]:
        """Flat dictionary for the table renderer."""
        return {
            "offered": self.num_offered,
            "completed": self.num_completed,
            "rejected": self.num_rejected,
            "makespan_s": self.makespan,
            "token_throughput": self.token_throughput,
            "ttft_p50": self.ttft[50],
            "ttft_p95": self.ttft[95],
            "ttft_p99": self.ttft[99],
            "tpot_p50": self.tpot[50],
            "tpot_p95": self.tpot[95],
            "tpot_p99": self.tpot[99],
            "e2e_p50": self.e2e[50],
            "e2e_p95": self.e2e[95],
            "e2e_p99": self.e2e[99],
            "mean_ttft": self.mean_ttft,
            "mean_tpot": self.mean_tpot,
            "slo_met": self.slo_met,
            "goodput": self.goodput,
            "goodput_fraction": self.goodput_fraction,
            "hit_rate": self.hit_rate,
            "cached_token_fraction": self.cached_token_fraction,
        }


def summarize(
    requests: Iterable[ServingRequest],
    makespan: float,
    slo: SLO,
) -> ServingReport:
    """Aggregate per-request records into a :class:`ServingReport`."""
    requests = list(requests)
    finished = [sr for sr in requests if sr.state is RequestState.FINISHED]
    rejected = [sr for sr in requests if sr.state is RequestState.REJECTED]

    ttfts = [sr.ttft for sr in finished if sr.ttft is not None]
    tpots = [sr.tpot for sr in finished if sr.tpot is not None]
    e2es = [sr.e2e_latency for sr in finished if sr.e2e_latency is not None]
    slo_met = sum(1 for sr in finished if slo.is_met(sr))
    tokens = sum(sr.tokens_decoded for sr in finished)

    hits = [sr for sr in finished if sr.is_cache_hit]
    misses = [sr for sr in finished if not sr.is_cache_hit]
    hit_ttfts = [sr.ttft for sr in hits if sr.ttft is not None]
    miss_ttfts = [sr.ttft for sr in misses if sr.ttft is not None]
    prompt_tokens = sum(sr.request.effective_input_len for sr in finished)
    cached_tokens = sum(sr.tokens_cached for sr in finished)

    return ServingReport(
        num_offered=len(requests),
        num_completed=len(finished),
        num_rejected=len(rejected),
        makespan=makespan,
        tokens_generated=tokens,
        # A run that completed nothing reports 0.0 percentiles (the
        # historical sentinel), chosen explicitly here.
        ttft={q: percentile(ttfts, q, default=0.0) for q in REPORT_PERCENTILES},
        tpot={q: percentile(tpots, q, default=0.0) for q in REPORT_PERCENTILES},
        e2e={q: percentile(e2es, q, default=0.0) for q in REPORT_PERCENTILES},
        mean_ttft=float(np.mean(ttfts)) if ttfts else 0.0,
        mean_tpot=float(np.mean(tpots)) if tpots else 0.0,
        slo_met=slo_met,
        goodput=slo_met / makespan if makespan > 0 else 0.0,
        cache_hits=len(hits),
        hit_rate=len(hits) / len(finished) if finished else 0.0,
        cached_token_fraction=(
            cached_tokens / prompt_tokens if prompt_tokens > 0 else 0.0
        ),
        mean_ttft_hit=float(np.mean(hit_ttfts)) if hit_ttfts else 0.0,
        mean_ttft_miss=float(np.mean(miss_ttfts)) if miss_ttfts else 0.0,
    )
