"""Request lifecycle state and the waiting queue of the serving system.

A :class:`ServingRequest` tracks one request from arrival to completion and
records the timestamps the latency metrics are computed from.  The
:class:`RequestQueue` holds admitted-but-not-yet-prefilled requests with a
bounded depth (arrivals that find the queue full are dropped, which is what
bounds tail latency under overload) and a pluggable ordering:

* ``"fcfs"`` — strict arrival order;
* ``"sjf"`` — shortest prompt first (cheapest prefill first, a classic
  latency-versus-fairness trade).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass

from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int
from repro.workloads.request import Request


class RequestState(enum.Enum):
    """Where a request is in its serving lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    REJECTED = "rejected"


#: Canonical terminal outcome codes for non-completed requests.  Every
#: rejection carries exactly one of these so reports can account for each
#: drop class separately (queue overflow vs crash vs deadline vs shed ...).
OUTCOME_CODES: tuple[str, ...] = (
    "queue-full",
    "oversized",
    "migration-capacity",
    "crash",
    "timeout",
    "shed",
    "unavailable",
    "other",
)

#: Human-readable reject reasons -> canonical outcome codes (legacy call
#: sites pass only a reason string; new ones pass ``code=`` explicitly).
_REASON_CODES = {
    "queue full": "queue-full",
    "migration target over capacity": "migration-capacity",
}


def outcome_code_for(reason: str) -> str:
    """Map a reject reason string onto its canonical outcome code."""
    code = _REASON_CODES.get(reason)
    if code is not None:
        return code
    if reason.startswith("prompt") or "exceed" in reason or "capacity" in reason:
        return "oversized"
    return "other"


@dataclass
class ServingRequest:
    """One request's serving lifecycle and timestamps.

    ``tokens_decoded`` counts generated tokens; prefill emits the first
    token, so a request finishes after ``generation_len - 1`` further decode
    steps.  All times are simulated seconds since the stream started.

    While a request sits in an engine's running set, ``tokens_decoded``
    can be backed by the engine's shared decode-epoch counter (see
    :meth:`attach_decode_epoch`): the engine then advances *one* integer
    per decode step instead of touching every running request, and this
    request's count reads as ``epoch + offset``.  Detached requests (the
    default) store the plain integer, so standalone use is unchanged.
    """

    request: Request
    arrival_time: float
    state: RequestState = RequestState.QUEUED
    admit_time: float | None = None
    first_token_time: float | None = None
    finish_time: float | None = None
    tokens_decoded: int = 0
    tokens_prefilled: int = 0
    tokens_cached: int = 0
    reject_reason: str | None = None
    shard_id: int | None = None
    #: Retry generation: 0 for the original submission, 1+ for re-entries
    #: injected by the resilience layer (same underlying ``Request``, so
    #: session identity and the prefix hash chain are preserved).
    attempt: int = 0
    #: Canonical terminal outcome code for rejected requests (see
    #: :data:`OUTCOME_CODES`); ``None`` while live and for completions.
    outcome_code: str | None = None

    # Class-level defaults so the ``tokens_decoded`` property works during
    # ``__init__`` and on detached requests (not dataclass fields).
    _epoch_box = None
    _epoch_offset = 0

    def attach_decode_epoch(self, box: list[int]) -> None:
        """Back ``tokens_decoded`` by a shared decode-epoch counter."""
        self._epoch_offset = self.__dict__["tokens_decoded"] - box[0]
        self._epoch_box = box

    def detach_decode_epoch(self) -> None:
        """Materialise the epoch-backed count back into plain storage."""
        box = self._epoch_box
        if box is not None:
            self.__dict__["tokens_decoded"] = box[0] + self._epoch_offset
            self._epoch_box = None

    @property
    def request_id(self) -> int:
        """The underlying request's id (also the KV-cache sequence id)."""
        return self.request.request_id

    @property
    def context_len(self) -> int:
        """Current KV context length: prompt plus decoded tokens."""
        return self.request.effective_input_len + self.tokens_decoded

    @property
    def is_finished(self) -> bool:
        """Whether every requested token has been generated."""
        return self.tokens_decoded >= self.request.generation_len

    @property
    def prefill_remaining(self) -> int:
        """Prompt tokens not yet prefilled (drives chunked prefill).

        Admission counts prefix-cache hits as already prefilled
        (``tokens_cached``), so a hit shortens both whole-prompt and chunked
        prefill schedules.
        """
        return self.request.effective_input_len - self.tokens_prefilled

    @property
    def is_cache_hit(self) -> bool:
        """Whether admission reused any cached prefix blocks."""
        return self.tokens_cached > 0

    @property
    def is_prefill_complete(self) -> bool:
        """Whether the whole prompt has been processed."""
        return self.prefill_remaining <= 0

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def mark_running(self, now: float) -> None:
        """Admit the request into the running batch (prefill about to start)."""
        self.state = RequestState.RUNNING
        self.admit_time = now

    def mark_first_token(self, now: float) -> None:
        """Record the end of prefill, which emits the first token."""
        self.first_token_time = now
        self.tokens_decoded = 1
        self.tokens_prefilled = self.request.effective_input_len

    def mark_finished(self, now: float) -> None:
        """Record completion."""
        self.state = RequestState.FINISHED
        self.finish_time = now

    def mark_rejected(self, now: float, reason: str, code: str | None = None) -> None:
        """Record a drop (queue overflow, admission rejection, crash, ...).

        ``code`` pins the canonical outcome code; legacy call sites that
        pass only a reason string get it derived via
        :func:`outcome_code_for`.
        """
        self.state = RequestState.REJECTED
        self.finish_time = now
        self.reject_reason = reason
        self.outcome_code = code if code is not None else outcome_code_for(reason)

    # ------------------------------------------------------------------
    # Latency metrics
    # ------------------------------------------------------------------
    @property
    def ttft(self) -> float | None:
        """Time to first token: arrival to end of the prefill step."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def tpot(self) -> float | None:
        """Time per output token over the decode phase (None until finished)."""
        if self.finish_time is None or self.first_token_time is None:
            return None
        if self.state is not RequestState.FINISHED:
            return None
        decode_tokens = self.request.generation_len - 1
        if decode_tokens <= 0:
            return 0.0
        return (self.finish_time - self.first_token_time) / decode_tokens

    @property
    def e2e_latency(self) -> float | None:
        """Arrival to completion (None until finished)."""
        if self.finish_time is None or self.state is not RequestState.FINISHED:
            return None
        return self.finish_time - self.arrival_time


def _tokens_decoded_get(self: ServingRequest) -> int:
    box = self._epoch_box
    if box is not None:
        return box[0] + self._epoch_offset
    return self.__dict__["tokens_decoded"]


def _tokens_decoded_set(self: ServingRequest, value: int) -> None:
    box = self._epoch_box
    if box is not None:
        self._epoch_offset = value - box[0]
    else:
        self.__dict__["tokens_decoded"] = value


# Installed post-class so the dataclass machinery still treats
# ``tokens_decoded`` as an ordinary default-0 field.
ServingRequest.tokens_decoded = property(  # type: ignore[assignment]
    _tokens_decoded_get, _tokens_decoded_set
)


#: Queue orderings: name -> sort key over a ServingRequest.
QUEUE_ORDERINGS = {
    "fcfs": lambda sr: (sr.arrival_time,),
    "sjf": lambda sr: (sr.request.effective_input_len, sr.arrival_time),
}


class RequestQueue:
    """Bounded waiting queue with a pluggable priority ordering."""

    def __init__(self, ordering: str = "fcfs", max_depth: int | None = None) -> None:
        if ordering not in QUEUE_ORDERINGS:
            known = ", ".join(sorted(QUEUE_ORDERINGS))
            raise ConfigurationError(
                f"unknown queue ordering {ordering!r}; known: {known}"
            )
        if max_depth is not None:
            require_positive_int("max_depth", max_depth)
        self.ordering = ordering
        self.max_depth = max_depth
        self._key = QUEUE_ORDERINGS[ordering]
        self._tiebreak = itertools.count()
        self._heap: list[tuple[tuple, int, ServingRequest]] = []

    @property
    def is_full(self) -> bool:
        """Whether a new arrival would overflow the queue."""
        return self.max_depth is not None and len(self._heap) >= self.max_depth

    def push(self, serving_request: ServingRequest) -> bool:
        """Enqueue a request; returns False (a drop) when the queue is full."""
        if self.is_full:
            return False
        heapq.heappush(
            self._heap,
            (self._key(serving_request), next(self._tiebreak), serving_request),
        )
        return True

    def peek(self) -> ServingRequest | None:
        """The next request to be served, without removing it."""
        return self._heap[0][2] if self._heap else None

    def pop(self) -> ServingRequest:
        """Remove and return the next request to be served."""
        if not self._heap:
            raise ConfigurationError("pop from an empty request queue")
        return heapq.heappop(self._heap)[2]

    def requeue(self, serving_request: ServingRequest) -> None:
        """Return a popped request to the queue (e.g. admission deferred it).

        Re-pushes under the same ordering key; the fresh tiebreak only
        matters for exact ties, which FCFS arrival times never produce.
        """
        heapq.heappush(
            self._heap,
            (self._key(serving_request), next(self._tiebreak), serving_request),
        )

    def drain(self) -> list[ServingRequest]:
        """Remove and return every queued request in serving order.

        Used by crash teardown: a dead shard's waiting queue empties in one
        sweep so each request gets exactly one terminal record.
        """
        drained = [entry[2] for entry in sorted(self._heap)]
        self._heap.clear()
        return drained

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
