"""Shard router: assigns arriving requests to per-shard queues.

Data-parallel serving runs one engine (an :class:`~repro.serving.server.EngineCore`)
per shard, each with its own queue, admission controller and KV cache.  The
router is the only component that sees every arrival, and its policy decides
how evenly — and how cache-affinely — load spreads:

* ``"round-robin"`` — cycle through shards; oblivious but perfectly fair in
  request count;
* ``"least-loaded"`` — send each arrival to the shard with the fewest
  outstanding requests (queued + prefilling + running), the classic
  join-the-shortest-queue policy that absorbs bursts best;
* ``"session-affinity"`` — hash the request's session key so a session's
  requests always land on the same shard (the prerequisite for per-shard
  prefix/KV reuse), falling back to the request id for sessionless traffic;
* ``"cache-aware"`` — send the arrival to the shard whose prefix cache
  holds the longest match for its prompt, breaking ties (and handling cold
  prompts) by least-loaded.  Where session affinity *hopes* the KV is
  still warm, cache-aware routing *measures* it.

Routing is deterministic: the same arrival stream, shard loads and cache
states produce the same assignment.
"""

from __future__ import annotations

from typing import Sequence

from repro.serving.queue import ServingRequest
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int

ROUTER_POLICIES: tuple[str, ...] = (
    "round-robin",
    "least-loaded",
    "session-affinity",
    "cache-aware",
)

#: Knuth's multiplicative constant: spreads consecutive session keys across
#: shards instead of striping them (which would alias with round-robin).
_HASH_MULTIPLIER = 2654435761
_HASH_MODULUS = 2**32


class ShardRouter:
    """Deterministic request-to-shard assignment under a routing policy."""

    def __init__(self, num_shards: int, policy: str = "round-robin") -> None:
        require_positive_int("num_shards", num_shards)
        if policy not in ROUTER_POLICIES:
            known = ", ".join(ROUTER_POLICIES)
            raise ConfigurationError(
                f"unknown router policy {policy!r}; known: {known}"
            )
        self.num_shards = num_shards
        self.policy = policy
        self._next = 0
        self.assignments = [0] * num_shards
        self.cache_routed = 0

    def _least_loaded(self, loads: Sequence[int]) -> int:
        return min(range(self.num_shards), key=lambda s: (loads[s], s))

    def route(
        self,
        serving_request: ServingRequest,
        loads: Sequence[int],
        prefix_lens: Sequence[int] | None = None,
    ) -> int:
        """Pick the shard for one arrival given current per-shard loads.

        ``prefix_lens`` (cache-aware policy only) carries each shard's
        longest cached-prefix match for this request's prompt, in tokens.
        """
        if len(loads) != self.num_shards:
            raise ConfigurationError(
                f"expected {self.num_shards} shard loads, got {len(loads)}"
            )
        if self.policy == "round-robin":
            shard = self._next % self.num_shards
            self._next += 1
        elif self.policy == "least-loaded":
            shard = self._least_loaded(loads)
        elif self.policy == "cache-aware":
            if prefix_lens is not None and len(prefix_lens) != self.num_shards:
                raise ConfigurationError(
                    f"expected {self.num_shards} prefix lengths, "
                    f"got {len(prefix_lens)}"
                )
            if prefix_lens is not None and max(prefix_lens) > 0:
                best = max(prefix_lens)
                # Ties between equally warm shards break by load, then id.
                shard = min(
                    (s for s in range(self.num_shards) if prefix_lens[s] == best),
                    key=lambda s: (loads[s], s),
                )
                self.cache_routed += 1
            else:
                shard = self._least_loaded(loads)
        else:  # session-affinity
            key = serving_request.request.session_key
            # Multiplicative hashing: the *high* bits of the product carry
            # the mixing (the low bits merely echo the key's parity, which
            # the session/sessionless tag bit pins).
            mixed = (key * _HASH_MULTIPLIER) % _HASH_MODULUS
            shard = (mixed >> 16) % self.num_shards
        self.assignments[shard] += 1
        return shard
