"""Shard router: assigns arriving requests to per-shard queues.

Data-parallel serving runs one engine (an :class:`~repro.serving.server.EngineCore`)
per shard, each with its own queue, admission controller and KV cache.  The
router is the only component that sees every arrival, and its policy decides
how evenly — and how cache-affinely — load spreads:

* ``"round-robin"`` — cycle through shards; oblivious but perfectly fair in
  request count;
* ``"least-loaded"`` — send each arrival to the shard with the fewest
  outstanding requests (queued + prefilling + running), the classic
  join-the-shortest-queue policy that absorbs bursts best;
* ``"session-affinity"`` — hash the request's session key so a session's
  requests always land on the same shard (the prerequisite for per-shard
  prefix/KV reuse), falling back to the request id for sessionless traffic;
* ``"cache-aware"`` — send the arrival to the shard whose prefix cache
  holds the longest match for its prompt, breaking ties (and handling cold
  prompts) by least-loaded.  Where session affinity *hopes* the KV is
  still warm, cache-aware routing *measures* it.

Routing is deterministic: the same arrival stream, shard loads and cache
states produce the same assignment.
"""

from __future__ import annotations

from typing import Sequence

from repro.serving.queue import ServingRequest
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int

ROUTER_POLICIES: tuple[str, ...] = (
    "round-robin",
    "least-loaded",
    "session-affinity",
    "cache-aware",
)

#: Knuth's multiplicative constant: spreads consecutive session keys across
#: shards instead of striping them (which would alias with round-robin).
_HASH_MULTIPLIER = 2654435761
_HASH_MODULUS = 2**32


class ShardRouter:
    """Deterministic request-to-shard assignment under a routing policy."""

    def __init__(self, num_shards: int, policy: str = "round-robin") -> None:
        require_positive_int("num_shards", num_shards)
        if policy not in ROUTER_POLICIES:
            known = ", ".join(ROUTER_POLICIES)
            raise ConfigurationError(
                f"unknown router policy {policy!r}; known: {known}"
            )
        self.num_shards = num_shards
        self.policy = policy
        self._next = 0
        self.assignments = [0] * num_shards
        self.cache_routed = 0

    def _least_loaded(self, loads: Sequence[int]) -> int:
        return min(range(self.num_shards), key=lambda s: (loads[s], s))

    def route(
        self,
        serving_request: ServingRequest,
        loads: Sequence[int],
        prefix_lens: Sequence[int] | None = None,
    ) -> int:
        """Pick the shard for one arrival given current per-shard loads.

        ``prefix_lens`` (cache-aware policy only) carries each shard's
        longest cached-prefix match for this request's prompt, in tokens.
        """
        if len(loads) != self.num_shards:
            raise ConfigurationError(
                f"expected {self.num_shards} shard loads, got {len(loads)}"
            )
        if self.policy == "round-robin":
            shard = self._next % self.num_shards
            self._next += 1
        elif self.policy == "least-loaded":
            shard = self._least_loaded(loads)
        elif self.policy == "cache-aware":
            if prefix_lens is not None and len(prefix_lens) != self.num_shards:
                raise ConfigurationError(
                    f"expected {self.num_shards} prefix lengths, "
                    f"got {len(prefix_lens)}"
                )
            if prefix_lens is not None and max(prefix_lens) > 0:
                best = max(prefix_lens)
                # Ties between equally warm shards break by load, then id.
                shard = min(
                    (s for s in range(self.num_shards) if prefix_lens[s] == best),
                    key=lambda s: (loads[s], s),
                )
                self.cache_routed += 1
            else:
                shard = self._least_loaded(loads)
        else:  # session-affinity
            key = serving_request.request.session_key
            # Multiplicative hashing: the *high* bits of the product carry
            # the mixing (the low bits merely echo the key's parity, which
            # the session/sessionless tag bit pins).
            mixed = (key * _HASH_MULTIPLIER) % _HASH_MODULUS
            shard = (mixed >> 16) % self.num_shards
        self.assignments[shard] += 1
        return shard


class PhaseRouter:
    """Capacity- and phase-aware routing for a disaggregated cluster.

    Prefill and decode shards answer different questions, so they get
    different signals:

    * **prefills** go to the prefill shard that will *start* the prompt
      soonest: outstanding prefill tokens plus the new prompt, divided by
      the shard's measured prefill speed — so a fast device absorbs
      proportionally more tokens than a slow one, and a monster prompt
      does not shadow a short one behind it;
    * **decodes** (migration targets) go to the decode shard with the most
      KV headroom — decode capacity is memory, not request count: a shard
      holding a few very long sessions is as full as one holding many
      short ones.

    Shards whose device is still loading the model (``ready_at`` in the
    future) are skipped while any already-ready shard exists; a fully cold
    pool falls back to the earliest-ready shard so startup traffic queues
    where it will be served first.
    """

    def __init__(
        self,
        prefill_shards: Sequence[int],
        decode_shards: Sequence[int],
        prefill_speeds: Sequence[float],
        ready_at: Sequence[float] | None = None,
    ) -> None:
        if not prefill_shards or not decode_shards:
            raise ConfigurationError(
                "disaggregated routing needs at least one prefill and one "
                "decode shard"
            )
        self.prefill_shards = list(prefill_shards)
        self.decode_shards = list(decode_shards)
        #: Relative prefill throughput per shard id (tokens/second at the
        #: reference prompt length); only prefill shards need entries.
        self.prefill_speeds = list(prefill_speeds)
        self.ready_at = list(ready_at) if ready_at is not None else None
        #: Prompt tokens routed to but not yet handed off by each shard.
        self.outstanding_tokens = {shard: 0 for shard in self.prefill_shards}
        self.assignments: dict[int, int] = {
            shard: 0 for shard in (*self.prefill_shards, *self.decode_shards)
        }

    def _eligible(self, shards: Sequence[int], now: float) -> list[int]:
        if self.ready_at is None:
            return list(shards)
        ready = [s for s in shards if self.ready_at[s] <= now]
        if ready:
            return ready
        # Cold pool: queue on whichever shard will come up first.
        return [min(shards, key=lambda s: (self.ready_at[s], s))]

    def route_prefill(
        self,
        serving_request: ServingRequest,
        loads: Sequence[int],
    ) -> int:
        """Pick the prefill shard that will finish this prompt soonest."""
        prompt = serving_request.request.effective_input_len
        now = serving_request.arrival_time
        shard = min(
            self._eligible(self.prefill_shards, now),
            key=lambda s: (
                (self.outstanding_tokens[s] + prompt) / self.prefill_speeds[s],
                loads[s],
                s,
            ),
        )
        self.outstanding_tokens[shard] += prompt
        self.assignments[shard] += 1
        return shard

    def complete_prefill(self, shard: int, tokens: int) -> None:
        """Retire a handed-off (or finished) prompt's routed tokens."""
        self.outstanding_tokens[shard] -= tokens

    def route_decode(
        self,
        headrooms: Sequence[int],
        loads: Sequence[int],
        now: float,
    ) -> int:
        """Pick the decode shard with the most KV headroom (migration target).

        ``headrooms[s]`` is shard ``s``'s
        :meth:`~repro.serving.admission.AdmissionController.kv_headroom_tokens`;
        ties break by outstanding load, then shard id.
        """
        shard = min(
            self._eligible(self.decode_shards, now),
            key=lambda s: (-headrooms[s], loads[s], s),
        )
        self.assignments[shard] += 1
        return shard
