"""Iteration-level continuous-batching scheduler.

Instead of forming one static batch and running it to completion (the
offline regime of the paper's evaluation), the scheduler re-decides what
the engine does at *every* engine step, in the style of Orca/vLLM
iteration-level scheduling:

* finished requests retire and free their KV reservation immediately;
* queued requests are admitted (KV- and slot-gated by the
  :class:`~repro.serving.admission.AdmissionController`) and prefilled in
  chunks between decode iterations;
* the running set is re-partitioned into balanced micro-batches each decode
  step with :func:`repro.workloads.batching.batch_requests` (Algorithm 2),
  so the paper's batching machinery is reused verbatim on a changing
  population.

Three scheduling policies trade TTFT against TPOT:

* ``"fcfs"`` — serve strictly in arrival order; prefill at most one
  micro-batch of new requests between decode steps;
* ``"prefill-first"`` — prefill every admissible queued request before the
  next decode step (minimises TTFT, interrupts decode the most);
* ``"decode-first"`` — only prefill when the running set has drained below
  one micro-batch (protects TPOT, lets the queue grow).

Orthogonally, ``chunk_tokens`` enables **chunked prefill**: at most that
many prompt tokens are processed per engine step, long prompts are split
across several steps, and — whenever requests are decoding — the chunk
rides along with the decode iteration as a ``"mixed"`` step instead of
interrupting it.  The mixed step piggybacks the chunk's prompt compute on
the decode step's weight-streaming pass (the same layer weights serve
both), so long prefills stop inflating TPOT on loaded shards.

``overlap=True`` generalises the mixed step from a chunked-prefill special
case into the steady state: the engine runs a *decode stream* and a
*prefill stream* that advance concurrently and serialize only on the
shared weight-streaming pass, so whole-prompt prefills also ride decode
iterations instead of stalling them.  With ``overlap=False`` (the default)
the scheduler emits exactly the serialized timeline it always has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.policy import Policy
from repro.serving.admission import AdmissionController
from repro.serving.queue import RequestQueue, ServingRequest
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int
from repro.workloads.batching import batch_requests
from repro.workloads.request import Batch

SCHEDULING_POLICIES: tuple[str, ...] = ("fcfs", "prefill-first", "decode-first")


@dataclass(frozen=True)
class SchedulerAction:
    """What the engine should do next.

    ``kind`` is ``"prefill"`` (run the chunk's prefill; the chunk has
    already passed admission and holds its KV reservations), ``"decode"``
    (one decode iteration over the running set), ``"mixed"`` (chunked
    prefill only: one decode iteration carrying a prompt chunk) or
    ``"idle"`` (nothing runnable; advance the clock to the next arrival).
    """

    kind: str
    chunk: list[ServingRequest] = field(default_factory=list)
    rejected: list[ServingRequest] = field(default_factory=list)


class ContinuousBatchingScheduler:
    """Decides, per engine iteration, between prefill, decode and idle.

    ``chunk_tokens`` caps the prompt tokens one prefill step may process
    (chunked prefill); ``None`` keeps whole-prompt prefills.
    """

    def __init__(
        self,
        policy: Policy,
        admission: AdmissionController,
        scheduling: str = "fcfs",
        chunk_tokens: int | None = None,
        overlap: bool = False,
    ) -> None:
        if scheduling not in SCHEDULING_POLICIES:
            known = ", ".join(SCHEDULING_POLICIES)
            raise ConfigurationError(
                f"unknown scheduling policy {scheduling!r}; known: {known}"
            )
        if chunk_tokens is not None:
            require_positive_int("chunk_tokens", chunk_tokens)
        self.policy = policy
        self.admission = admission
        self.scheduling = scheduling
        self.chunk_tokens = chunk_tokens
        self.overlap = overlap

    # ------------------------------------------------------------------
    # Per-iteration decision
    # ------------------------------------------------------------------
    def _prefill_chunk_limit(self, num_running: int) -> int:
        """How many new requests one prefill step may take on."""
        headroom = self.policy.batch_size - num_running
        if self.scheduling == "prefill-first":
            return headroom
        # FCFS and decode-first prefill at most one micro-batch at a time so
        # decode iterations are interrupted for a bounded period.
        return min(headroom, self.policy.micro_batch_size)

    def _wants_prefill(self, num_running: int, queue: RequestQueue) -> bool:
        """Whether this policy would prefill now rather than decode."""
        if not queue or num_running >= self.policy.batch_size:
            return False
        if self.scheduling == "decode-first":
            # Only backfill once the running set is thinner than one
            # micro-batch (or the engine is empty).
            return num_running < self.policy.micro_batch_size
        return True

    def next_action(
        self,
        num_running: int,
        queue: RequestQueue,
        prefilling: Sequence[ServingRequest] = (),
    ) -> SchedulerAction:
        """Pick the engine's next step and pop/admit the prefill chunk.

        Requests returned in ``chunk`` hold KV reservations; requests in
        ``rejected`` can never run (their end-of-generation KV footprint
        exceeds the budget even on an empty engine) and must be dropped by
        the caller.  ``prefilling`` carries the engine's partially-prefilled
        requests under chunked prefill; they re-enter the next prefill chunk
        ahead of new admissions.
        """
        rejected: list[ServingRequest] = []
        chunk: list[ServingRequest] = list(prefilling)
        occupied = num_running + len(chunk)
        if self._wants_prefill(occupied, queue):
            limit = self._prefill_chunk_limit(occupied)
            budget = None
            if self.chunk_tokens is not None:
                budget = self.chunk_tokens - sum(
                    sr.prefill_remaining for sr in chunk
                )
            admitted = 0
            while queue and admitted < limit:
                if budget is not None and budget <= 0 and chunk:
                    break
                decision = self.admission.check(queue.peek())
                if decision.admitted:
                    candidate = queue.pop()
                    # Nothing can change admission state between the check
                    # above and this reservation; skip the re-check.
                    self.admission.admit_checked(candidate)
                    chunk.append(candidate)
                    admitted += 1
                    if budget is not None:
                        # Charge only the tokens the chunk will actually
                        # process: prefix-cache hits were marked prefilled
                        # at admission, so their cached tokens are skipped
                        # at prefill and must not consume chunk budget.
                        budget -= candidate.prefill_remaining
                    continue
                if self.admission.live_requests == 0 and not chunk:
                    # Even an empty engine cannot hold this request: it is
                    # oversized for the hardware, not merely unlucky.  The
                    # failing admit() records the drop in the controller's
                    # rejection counters.
                    oversized = queue.pop()
                    self.admission.admit(oversized)
                    oversized.reject_reason = decision.reason
                    rejected.append(oversized)
                    continue
                # Head-of-line request must wait for capacity to free up.
                break
        if chunk:
            if num_running > 0 and (self.chunk_tokens is not None or self.overlap):
                # The chunk rides the decode iteration: its prompt compute
                # overlaps the step's weight-streaming pass instead of
                # stalling every decoding request.  Chunked prefill always
                # overlaps this way; ``overlap`` extends it to whole-prompt
                # prefills (the overlapped prefill/decode streams).
                return SchedulerAction(kind="mixed", chunk=chunk, rejected=rejected)
            return SchedulerAction(kind="prefill", chunk=chunk, rejected=rejected)
        if num_running > 0:
            return SchedulerAction(kind="decode", rejected=rejected)
        return SchedulerAction(kind="idle", rejected=rejected)

    # ------------------------------------------------------------------
    # Micro-batch formation (Algorithm 2 on the live population)
    # ------------------------------------------------------------------
    def form_micro_batches(self, running: list[ServingRequest]) -> Batch:
        """Re-partition the running set into balanced micro-batches.

        Admission already guarantees the KV budget, so Algorithm 2 runs with
        an unlimited cache budget here — it only balances token counts
        across ``ceil(n / μ)`` micro-batches.  (The partition is O(n log n)
        per step with n capped at the policy batch size — negligible next
        to the step-cost evaluation.)
        """
        if not running:
            return Batch()
        mu = min(self.policy.micro_batch_size, len(running))
        num_micro_batches = -(-len(running) // mu)
        result = batch_requests(
            [sr.request for sr in running],
            num_micro_batches=num_micro_batches,
            micro_batch_size=mu,
            generation_len=max(sr.request.generation_len for sr in running),
        )
        return result.batch

    def binding_context_len(
        self, batch: Batch, running: list[ServingRequest]
    ) -> float:
        """Context length of the micro-batch that gates the decode pipeline.

        Each decode step processes every micro-batch in turn, and the
        per-layer pipeline is paced by its slowest micro-batch, so the step
        is costed at the largest mean context across the partition rather
        than the global mean.
        """
        context_by_id = {sr.request_id: sr.context_len for sr in running}
        return max(
            sum(context_by_id[req.request_id] for req in micro_batch)
            / micro_batch.size
            for micro_batch in batch
            if micro_batch.size > 0
        )
