"""The online serving facade: any offloading system under live load.

:class:`ServingSystem` wraps an existing :mod:`repro.systems` backend
(MoE-Lightning, FlexGen, DeepSpeed — anything implementing
:class:`~repro.systems.base.OffloadingSystem`) and drives it through a
simulated wall clock fed by an arrival process.  Each engine iteration the
continuous-batching scheduler picks prefill, decode or idle; the step's
duration comes from the backend's own cost machinery, so the three systems
become comparable *under load* with the same models that rank them on
static batches:

* the default :class:`EngineStepModel` evaluates the backend's analytical
  HRM performance model per step (fast enough for load sweeps over
  thousands of steps);
* ``use_simulator=True`` instead samples step times from the backend's
  discrete-event pipeline schedule (CGOPipe / S3 / S4), memoised over
  (batch-size, context) buckets, trading speed for schedule-level fidelity.

Determinism: given the same backend, policy, arrival process and seed, a
run reproduces identical per-request timestamps and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.policy import Policy
from repro.serving.admission import AdmissionController
from repro.serving.arrivals import ArrivalProcess, TimedRequest
from repro.serving.metrics import SLO, ServingReport, summarize
from repro.serving.queue import RequestQueue, ServingRequest
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.systems.base import OffloadingSystem
from repro.utils.errors import SimulationError
from repro.utils.validation import require_positive, require_positive_int
from repro.workloads.spec import WorkloadSpec


class EngineStepModel:
    """Memoised per-step latency oracle for one backend + policy.

    Prefill chunks are costed on a workload spec rebuilt from the chunk's
    actual prompt lengths (so padded backends pay the chunk maximum, exactly
    as they would pad); decode steps are costed at the running set's size
    and mean context length, bucketed so the memo table stays small.
    """

    def __init__(
        self,
        backend: OffloadingSystem,
        workload: WorkloadSpec,
        policy: Policy,
        use_simulator: bool = False,
        ctx_bucket: int = 32,
    ) -> None:
        require_positive_int("ctx_bucket", ctx_bucket)
        self.backend = backend
        self.workload = workload
        self.policy = policy
        self.use_simulator = use_simulator
        self.ctx_bucket = ctx_bucket
        self._decode_cache: dict[tuple[int, int], float] = {}
        self._prefill_cache: dict[tuple[int, int, int], float] = {}
        self._performance = backend.performance_model(workload)

    def _bucket_ctx(self, context_len: float) -> int:
        buckets = max(1, round(context_len / self.ctx_bucket))
        return buckets * self.ctx_bucket

    def _sized_policy(self, num_requests: int) -> Policy:
        return self.policy.with_batch_size(num_requests)

    def decode_step_time(self, num_running: int, mean_context: float) -> float:
        """Latency of one decode iteration over ``num_running`` requests."""
        require_positive_int("num_running", num_running)
        require_positive("mean_context", mean_context)
        ctx = self._bucket_ctx(mean_context)
        if self.use_simulator:
            # Bucket the batch size to whole micro-batches so the schedule
            # simulator runs once per (shape, context) rather than per step.
            mu = min(self.policy.micro_batch_size, num_running)
            batch = min(self.policy.batch_size, -(-num_running // mu) * mu)
        else:
            batch = num_running
        key = (batch, ctx)
        if key not in self._decode_cache:
            sized = self._sized_policy(batch)
            if self.use_simulator:
                schedule = self.backend.make_schedule(sized)
                step_time = schedule.step_timing(sized, ctx).step_time
            else:
                step_time = self._performance.decode_step_latency(sized, ctx)
            self._decode_cache[key] = step_time
        return self._decode_cache[key]

    def prefill_time(self, chunk: list[ServingRequest]) -> float:
        """Latency of prefilling ``chunk`` (which also emits its first tokens)."""
        if not chunk:
            raise SimulationError("cannot cost an empty prefill chunk")
        lengths = [sr.request.effective_input_len for sr in chunk]
        # Cost at the bucketed lengths that form the memo key (as the decode
        # path does), so a chunk's charge never depends on which chunk
        # populated the cache slot first.
        avg = self._bucket_ctx(sum(lengths) / len(lengths))
        longest = max(self._bucket_ctx(max(lengths)), avg)
        key = (len(chunk), avg, longest)
        if key not in self._prefill_cache:
            chunk_spec = replace(
                self.workload, avg_prompt_len=avg, max_prompt_len=longest
            )
            performance = self.backend.performance_model(chunk_spec)
            sized = self._sized_policy(len(chunk))
            self._prefill_cache[key] = performance.prefill_time(sized)
        return self._prefill_cache[key]


def default_slo(
    backend: OffloadingSystem,
    workload: WorkloadSpec,
    policy: Policy,
    ttft_factor: float = 5.0,
    tpot_factor: float = 2.5,
) -> SLO:
    """An SLO anchored to the backend's *unloaded* latencies.

    TTFT target: ``ttft_factor`` times the prefill latency of one full
    micro-batch (headroom for queueing); TPOT target: ``tpot_factor`` times
    the mid-generation decode step latency at the policy's full batch size.
    The TPOT headroom must absorb the prefill interruptions a decoding
    request sees from later arrivals (each one a full weight-streaming
    pass on offloading systems), so the SLO binds under load rather than in
    the unloaded regime.  Compare systems under a *shared* SLO by computing
    it once from a reference backend and passing it to every
    :class:`ServingSystem`.
    """
    performance = backend.performance_model(workload)
    prefill_ref = performance.prefill_time(
        policy.with_batch_size(policy.micro_batch_size)
    )
    mid_context = workload.effective_prompt_len(backend.padded) + max(
        1, workload.generation_len // 2
    )
    decode_ref = performance.decode_step_latency(policy, mid_context)
    return SLO(ttft=ttft_factor * prefill_ref, tpot=tpot_factor * decode_ref)


@dataclass(frozen=True)
class EngineStep:
    """One engine iteration in the serving timeline."""

    kind: str
    start: float
    duration: float
    num_requests: int
    num_micro_batches: int

    @property
    def end(self) -> float:
        """Completion time of the iteration."""
        return self.start + self.duration


@dataclass(frozen=True)
class ServingResult:
    """Everything one serving run produced."""

    system: str
    workload: str
    scheduling: str
    policy: Policy
    slo: SLO
    requests: list[ServingRequest]
    steps: list[EngineStep]
    makespan: float
    report: ServingReport
    admission_stats: dict[str, int] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        """Flat dictionary for the table renderer."""
        row: dict[str, object] = {
            "system": self.system,
            "workload": self.workload,
            "scheduling": self.scheduling,
            "batch_size": self.policy.batch_size,
            "micro_batch_size": self.policy.micro_batch_size,
        }
        row.update(self.report.as_row())
        return row


class ServingSystem:
    """Continuous-batching serving simulator over an offloading backend."""

    def __init__(
        self,
        backend: OffloadingSystem,
        workload: WorkloadSpec,
        policy: Policy | None = None,
        scheduling: str = "fcfs",
        queue_ordering: str = "fcfs",
        max_queue_depth: int | None = None,
        slo: SLO | None = None,
        use_simulator: bool = False,
        ctx_bucket: int = 32,
        block_tokens: int = 16,
    ) -> None:
        self.backend = backend
        self.workload = workload
        self.policy = policy or backend.select_policy(workload)
        self.scheduling = scheduling
        self.queue_ordering = queue_ordering
        self.max_queue_depth = max_queue_depth
        self.slo = slo or default_slo(backend, workload, self.policy)
        self.block_tokens = block_tokens
        self.step_model = EngineStepModel(
            backend,
            workload,
            self.policy,
            use_simulator=use_simulator,
            ctx_bucket=ctx_bucket,
        )

    def _as_served(self, request):
        """Apply the backend's padding discipline to an arriving request.

        Padding-based systems (FlexGen, MoE-Lightning(p)) store and compute
        over the workload's maximum prompt length for every request, so the
        padded length must drive KV admission and decode context — exactly
        as the offline memory/performance models charge it.
        """
        if not self.backend.padded:
            return request
        return request.padded_to(
            max(self.workload.max_prompt_len, request.input_len)
        )

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------
    def run(
        self,
        arrivals: ArrivalProcess | list[TimedRequest],
        count: int | None = None,
        seed: int = 0,
    ) -> ServingResult:
        """Serve a request stream to completion and return the result.

        ``arrivals`` is either an :class:`ArrivalProcess` (materialised with
        ``count`` and ``seed``) or an explicit pre-built stream.
        """
        if isinstance(arrivals, ArrivalProcess):
            stream = arrivals.generate(self.workload, count=count, seed=seed)
        else:
            stream = sorted(arrivals, key=lambda timed: timed.arrival_time)
        records = [
            ServingRequest(
                request=self._as_served(timed.request),
                arrival_time=timed.arrival_time,
            )
            for timed in stream
        ]

        admission = AdmissionController(
            model=self.backend.model,
            hardware=self.backend.hardware,
            workload=self.workload,
            policy=self.policy,
            padded=self.backend.padded,
            block_tokens=self.block_tokens,
        )
        scheduler = ContinuousBatchingScheduler(
            policy=self.policy, admission=admission, scheduling=self.scheduling
        )
        queue = RequestQueue(
            ordering=self.queue_ordering, max_depth=self.max_queue_depth
        )

        running: list[ServingRequest] = []
        steps: list[EngineStep] = []
        dropped_queue_full = 0
        now = 0.0
        next_arrival = 0

        while next_arrival < len(records) or queue or running:
            # Ingest every arrival up to the current simulated time.
            while (
                next_arrival < len(records)
                and records[next_arrival].arrival_time <= now
            ):
                serving_request = records[next_arrival]
                next_arrival += 1
                if not queue.push(serving_request):
                    serving_request.mark_rejected(
                        serving_request.arrival_time, "queue full"
                    )
                    dropped_queue_full += 1

            action = scheduler.next_action(len(running), queue)
            for oversized in action.rejected:
                oversized.mark_rejected(
                    now, oversized.reject_reason or "oversized request"
                )

            if action.kind == "idle":
                if next_arrival < len(records):
                    now = max(now, records[next_arrival].arrival_time)
                    continue
                if queue or running:
                    raise SimulationError(
                        "serving loop stalled with work outstanding"
                    )
                break

            if action.kind == "prefill":
                for serving_request in action.chunk:
                    serving_request.mark_running(now)
                duration = self.step_model.prefill_time(action.chunk)
                start, now = now, now + duration
                for serving_request in action.chunk:
                    serving_request.mark_first_token(now)
                    running.append(serving_request)
                num_requests = len(action.chunk)
                mu = min(self.policy.micro_batch_size, num_requests)
                num_micro_batches = -(-num_requests // mu)
            else:  # decode
                batch = scheduler.form_micro_batches(running)
                binding_context = scheduler.binding_context_len(batch, running)
                duration = self.step_model.decode_step_time(
                    len(running), binding_context
                )
                start, now = now, now + duration
                for serving_request in running:
                    serving_request.tokens_decoded += 1
                num_requests = len(running)
                num_micro_batches = batch.num_micro_batches

            steps.append(
                EngineStep(
                    kind=action.kind,
                    start=start,
                    duration=duration,
                    num_requests=num_requests,
                    num_micro_batches=num_micro_batches,
                )
            )

            # Retire finished requests and free their KV reservations.
            still_running: list[ServingRequest] = []
            for serving_request in running:
                if serving_request.is_finished:
                    serving_request.mark_finished(now)
                    admission.release(serving_request)
                else:
                    still_running.append(serving_request)
            running = still_running

        report = summarize(records, makespan=now, slo=self.slo)
        return ServingResult(
            system=self.backend.name,
            workload=self.workload.name,
            scheduling=self.scheduling,
            policy=self.policy,
            slo=self.slo,
            requests=records,
            steps=steps,
            makespan=now,
            report=report,
            admission_stats={
                "admitted": admission.admitted_count,
                "rejected_kv": admission.rejected_kv_count,
                "rejected_slots": admission.rejected_slots_count,
                "dropped_queue_full": dropped_queue_full,
            },
        )
