"""The online serving facade: any offloading system under live load.

:class:`ServingSystem` wraps an existing :mod:`repro.systems` backend
(MoE-Lightning, FlexGen, DeepSpeed — anything implementing
:class:`~repro.systems.base.OffloadingSystem`) and drives it through a
simulated wall clock fed by an arrival process.  Each engine iteration the
continuous-batching scheduler picks prefill, decode or idle; the step's
duration comes from the backend's own cost machinery, so the three systems
become comparable *under load* with the same models that rank them on
static batches:

* the default :class:`EngineStepModel` evaluates the backend's analytical
  HRM performance model per step (fast enough for load sweeps over
  thousands of steps);
* ``use_simulator=True`` instead samples step times from the backend's
  discrete-event pipeline schedule (CGOPipe / S3 / S4), memoised over
  (batch-size, context) buckets, trading speed for schedule-level fidelity.

Determinism: given the same backend, policy, arrival process and seed, a
run reproduces identical per-request timestamps and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.core.policy import Policy
from repro.serving.admission import AdmissionController
from repro.serving.arrivals import ArrivalProcess, TimedRequest
from repro.serving.metrics import SLO, ReportBuilder, ServingReport, summarize
from repro.serving.queue import RequestQueue, RequestState, ServingRequest
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.systems.base import OffloadingSystem
from repro.utils.errors import ConfigurationError, SimulationError
from repro.utils.validation import require_positive, require_positive_int
from repro.workloads.spec import WorkloadSpec

#: Phase roles an engine core can serve (mirrors the cluster layer's
#: ``DEVICE_ROLES``; kept local so serving stays importable without it).
ENGINE_ROLES = ("unified", "prefill", "decode")


class EngineStepModel:
    """Memoised per-step latency oracle for one backend + policy.

    Prefill chunks are costed on a workload spec rebuilt from the chunk's
    actual prompt lengths (so padded backends pay the chunk maximum, exactly
    as they would pad); decode steps are costed at the running set's size
    and mean context length, bucketed so the memo table stays small.
    """

    def __init__(
        self,
        backend: OffloadingSystem,
        workload: WorkloadSpec,
        policy: Policy,
        use_simulator: bool = False,
        ctx_bucket: int = 32,
    ) -> None:
        require_positive_int("ctx_bucket", ctx_bucket)
        self.backend = backend
        self.workload = workload
        self.policy = policy
        self.use_simulator = use_simulator
        self.ctx_bucket = ctx_bucket
        self._decode_cache: dict[tuple[int, int], float] = {}
        self._prefill_cache: dict[tuple[int, int, int], float] = {}
        self._performance = backend.performance_model(workload)

    def _bucket_ctx(self, context_len: float) -> int:
        buckets = max(1, round(context_len / self.ctx_bucket))
        return buckets * self.ctx_bucket

    def _sized_policy(self, num_requests: int) -> Policy:
        return self.policy.with_batch_size(num_requests)

    def decode_step_time(self, num_running: int, mean_context: float) -> float:
        """Latency of one decode iteration over ``num_running`` requests."""
        require_positive_int("num_running", num_running)
        require_positive("mean_context", mean_context)
        ctx = self._bucket_ctx(mean_context)
        if self.use_simulator:
            # Bucket the batch size to whole micro-batches so the schedule
            # simulator runs once per (shape, context) rather than per step.
            mu = min(self.policy.micro_batch_size, num_running)
            batch = min(self.policy.batch_size, -(-num_running // mu) * mu)
        else:
            batch = num_running
        key = (batch, ctx)
        if key not in self._decode_cache:
            sized = self._sized_policy(batch)
            if self.use_simulator:
                schedule = self.backend.make_schedule(sized)
                step_time = schedule.step_timing(sized, ctx).step_time
            else:
                step_time = self._performance.decode_step_latency(sized, ctx)
            self._decode_cache[key] = step_time
        return self._decode_cache[key]

    def prefill_time(self, chunk: list[ServingRequest]) -> float:
        """Latency of prefilling ``chunk`` (which also emits its first tokens).

        Each request is costed at its *remaining* prompt tokens: prefix-cache
        hits were marked prefilled at admission, so cached tokens are skipped
        rather than recomputed.  With the cache off every request's remaining
        length equals its full effective length.
        """
        if not chunk:
            raise SimulationError("cannot cost an empty prefill chunk")
        lengths = [max(1, sr.prefill_remaining) for sr in chunk]
        # Cost at the bucketed lengths that form the memo key (as the decode
        # path does), so a chunk's charge never depends on which chunk
        # populated the cache slot first.
        avg = self._bucket_ctx(sum(lengths) / len(lengths))
        longest = max(self._bucket_ctx(max(lengths)), avg)
        return self._prefill_time_at(len(chunk), avg, longest)

    def chunked_prefill_time(self, num_requests: int, tokens: int) -> float:
        """Latency of one chunked-prefill step processing ``tokens`` tokens.

        The chunk is costed as ``num_requests`` rows of the chunk's mean
        token count — the same bucketed memoisation as whole-prompt
        prefills, so a token budget maps to a bounded, stable step time.
        """
        require_positive_int("num_requests", num_requests)
        require_positive_int("tokens", tokens)
        avg = self._bucket_ctx(tokens / num_requests)
        return self._prefill_time_at(num_requests, avg, avg)

    def _prefill_time_at(self, num_requests: int, avg: int, longest: int) -> float:
        key = (num_requests, avg, longest)
        if key not in self._prefill_cache:
            chunk_spec = replace(
                self.workload, avg_prompt_len=avg, max_prompt_len=longest
            )
            performance = self.backend.performance_model(chunk_spec)
            sized = self._sized_policy(num_requests)
            self._prefill_cache[key] = performance.prefill_time(sized)
        return self._prefill_cache[key]


def default_slo(
    backend: OffloadingSystem,
    workload: WorkloadSpec,
    policy: Policy,
    ttft_factor: float = 5.0,
    tpot_factor: float = 2.5,
) -> SLO:
    """An SLO anchored to the backend's *unloaded* latencies.

    TTFT target: ``ttft_factor`` times the prefill latency of one full
    micro-batch (headroom for queueing); TPOT target: ``tpot_factor`` times
    the mid-generation decode step latency at the policy's full batch size.
    The TPOT headroom must absorb the prefill interruptions a decoding
    request sees from later arrivals (each one a full weight-streaming
    pass on offloading systems), so the SLO binds under load rather than in
    the unloaded regime.  Compare systems under a *shared* SLO by computing
    it once from a reference backend and passing it to every
    :class:`ServingSystem`.
    """
    performance = backend.performance_model(workload)
    prefill_ref = performance.prefill_time(
        policy.with_batch_size(policy.micro_batch_size)
    )
    mid_context = workload.effective_prompt_len(backend.padded) + max(
        1, workload.generation_len // 2
    )
    decode_ref = performance.decode_step_latency(policy, mid_context)
    return SLO(ttft=ttft_factor * prefill_ref, tpot=tpot_factor * decode_ref)


@dataclass(frozen=True)
class EngineStep:
    """One engine iteration in the serving timeline.

    ``decode_time`` and ``prefill_time`` are the two streams' shares of the
    step: pure steps put their whole duration on one stream; ``"mixed"``
    steps carry both halves on the shared weight-streaming pass, so the
    step lasts as long as the slower half and the faster half rides along
    for free (``overlapped_time``).
    """

    kind: str
    start: float
    duration: float
    num_requests: int
    num_micro_batches: int
    decode_time: float = 0.0
    prefill_time: float = 0.0

    @property
    def end(self) -> float:
        """Completion time of the iteration."""
        return self.start + self.duration

    @property
    def overlapped_time(self) -> float:
        """Time both streams spent executing concurrently in this step."""
        return max(0.0, self.decode_time + self.prefill_time - self.duration)


def decode_stream_busy(steps: Sequence[EngineStep]) -> float:
    """Total decode-stream execution time across ``steps``."""
    return sum(step.decode_time for step in steps)


def prefill_stream_busy(steps: Sequence[EngineStep]) -> float:
    """Total prefill-stream execution time across ``steps``."""
    return sum(step.prefill_time for step in steps)


def overlap_fraction(steps: Sequence[EngineStep]) -> float:
    """Fraction of total step time with both streams executing."""
    busy = sum(step.duration for step in steps)
    if busy <= 0:
        return 0.0
    return sum(step.overlapped_time for step in steps) / busy


@dataclass
class _InFlightStep:
    """A launched-but-not-yet-completed engine step (event-granular mode).

    :meth:`EngineCore.begin_step` decides the action, prices it into
    ``step`` and records the launch state here;
    :meth:`EngineCore.complete_step` applies the end-of-step effects at
    the completion instant and appends ``step`` to the timeline verbatim.
    Between the two, arrivals may be offered to the core's queue but its
    running/prefilling sets are frozen.
    """

    step: EngineStep
    chunk: list[ServingRequest]
    #: Whether this step decodes the running set.  Between begin and
    #: complete the running set is frozen (only the queue can mutate), so
    #: a flag replaces the per-step ``list(self.running)`` copy the old
    #: code kept — the completion applies decode effects to ``running``
    #: itself, which is bit-for-bit the same population.
    decoded_running: bool
    first_token_at: float

    @property
    def completion(self) -> float:
        return self.step.end


class EngineCore:
    """One engine's continuous-batching state machine (a single shard).

    :class:`ServingSystem` drives exactly one core; the sharded serving
    system drives one per shard through the timestamp-ordered event queue
    of :mod:`repro.serving.event_loop`.  The core owns its shard's queue,
    admission controller, scheduler and running/prefilling sets.

    Stepping is *event-granular*: :meth:`begin_step` decides and launches
    the next engine iteration (returning its completion time) and
    :meth:`complete_step` applies its effects, so an event loop can
    interleave other shards' events — and arrival ingestion — between the
    two.  The synchronous :meth:`run_step` (begin + complete back to back)
    remains the single-engine fast path and is bit-for-bit the historical
    timeline.

    ``overlap=True`` runs a decode stream and a prefill stream
    concurrently: whole-prompt prefills ride decode iterations as
    ``"mixed"`` steps (serializing only on the shared weight-streaming
    pass) instead of stalling them.  ``overlap=False`` reproduces the
    serialized timeline exactly.
    """

    def __init__(
        self,
        backend: OffloadingSystem,
        workload: WorkloadSpec,
        policy: Policy,
        step_model: EngineStepModel,
        scheduling: str = "fcfs",
        queue_ordering: str = "fcfs",
        max_queue_depth: int | None = None,
        block_tokens: int = 16,
        chunk_prefill_tokens: int | None = None,
        shard_id: int | None = None,
        prefix_cache: bool = False,
        overlap: bool = False,
        role: str = "unified",
        session_ttl: float | None = None,
        telemetry=None,
        record_steps: bool = True,
        on_finish=None,
        on_reject=None,
        on_finish_batch=None,
        resilience=None,
        slo=None,
    ) -> None:
        if role not in ENGINE_ROLES:
            raise ConfigurationError(
                f"unknown engine role {role!r}; choose from {ENGINE_ROLES}"
            )
        if session_ttl is not None and session_ttl <= 0:
            raise ConfigurationError(
                f"session_ttl must be > 0 seconds, got {session_ttl}"
            )
        self.policy = policy
        self.step_model = step_model
        self.chunk_prefill_tokens = chunk_prefill_tokens
        self.shard_id = shard_id
        self.prefix_cache = prefix_cache
        self.overlap = overlap
        #: Phase specialisation: a ``prefill`` core never decodes — finished
        #: prompts leave through ``on_handoff`` — and a ``decode`` core never
        #: prefills — it only receives migrated requests via
        #: :meth:`accept_migrated`.  ``unified`` is the historical behaviour.
        self.role = role
        self.session_ttl = session_ttl
        #: Optional :class:`repro.obs.Telemetry`.  Every emission below sits
        #: behind ``if self.telemetry is not None`` and never mutates serving
        #: state, so a run without it is bit-for-bit the historical timeline.
        self.telemetry = telemetry
        self.admission = AdmissionController(
            model=backend.model,
            hardware=backend.hardware,
            workload=workload,
            policy=policy,
            padded=backend.padded,
            block_tokens=block_tokens,
            prefix_cache=prefix_cache,
            telemetry=telemetry,
            # A prefill specialist holds a request's KV only until the
            # migration lands, so it reserves the prompt — not the
            # end-of-generation size the decode side must guarantee.
            reserve_output_tokens=(role != "prefill"),
        )
        self.scheduler = ContinuousBatchingScheduler(
            policy=policy,
            admission=self.admission,
            scheduling=scheduling,
            chunk_tokens=chunk_prefill_tokens,
            overlap=overlap,
        )
        self.queue = RequestQueue(ordering=queue_ordering, max_depth=max_queue_depth)
        self.running: list[ServingRequest] = []
        self.prefilling: list[ServingRequest] = []
        #: ``record_steps=False`` is the streaming mode: the per-step busy
        #: accumulators below replace the step list, so million-step runs
        #: hold O(1) state.  Timelines are identical either way — the
        #: accumulators add the same floats in the same order the list
        #: properties would.
        self.record_steps = record_steps
        self.steps: list[EngineStep] = []
        self.now = 0.0
        self.dropped_queue_full = 0
        self._in_flight: _InFlightStep | None = None
        #: Sinks for terminal requests (streaming report aggregation): each
        #: is called exactly once per request, at its terminal instant.
        #: ``on_finish_batch`` (if set) replaces ``on_finish`` with one call
        #: per retirement batch, in the same per-request order.
        self.on_finish = on_finish
        self.on_reject = on_reject
        self.on_finish_batch = on_finish_batch
        #: Disaggregation seams.  ``on_handoff(core, requests)`` fires when a
        #: prefill core completes prompts that must migrate; ``_pending_joins``
        #: stages migrated requests on a decode core until the next step
        #: boundary at which admission accepts them.  Both stay empty/None on
        #: unified cores, so the hot path pays one truthiness test.
        self.on_handoff = None
        self._pending_joins: list[ServingRequest] = []
        self.prefills_completed = 0
        self.migrated_in = 0
        self.migrated_out = 0
        self.migration_rejected = 0
        #: TTL eviction: the store only exists in the prefix-cache regime;
        #: without one (or without a TTL) the hook below is never entered.
        self._ttl_store = (
            self.admission.kv_cache.block_store
            if session_ttl is not None
            else None
        )
        # O(1) counters mirroring what a scan over records/steps would
        # compute (asserted equal at tier 1).
        self.offered_count = 0
        self.completed_count = 0
        self.rejected_count = 0
        self.tokens_generated_total = 0
        self.num_steps = 0
        self._busy_time = 0.0
        self._decode_busy = 0.0
        self._prefill_busy = 0.0
        self._overlapped = 0.0
        # Incremental load counter (= load()) published to an optional
        # shared board so the router never polls every core per arrival.
        self._load = 0
        self._load_board: list[int] | None = None
        # O(1) decode accounting: one shared epoch counter advances per
        # decode step instead of a scan over the running set.  Running
        # requests read ``tokens_decoded`` as ``epoch + offset`` (attached
        # at join, materialised at retire), and each joiner is bucketed by
        # the epoch at which it will finish, so retirement pops a dict key
        # instead of scanning.
        self._decode_epochs = [0]
        self._finish_buckets: dict[int, list[ServingRequest]] = {}
        # Decode-shape memo: the running set's micro-batch partition is a
        # pure function of its membership (static request lengths), so it
        # is rebuilt only when membership changes (version bump).  Between
        # rebuilds each group's integer context sum advances by its size
        # per decode epoch — applied lazily and vectorised from the epoch
        # delta, so repeated decode steps of an unchanged mega-batch reprice
        # from the memo table with no per-group Python loop.
        self._running_version = 0
        self._partition_version = -1
        self._partition_groups: list[list[ServingRequest]] = []
        self._partition_base: np.ndarray | None = None
        self._partition_sizes: np.ndarray | None = None
        self._partition_epoch = 0
        self._partition_micro = 0
        # ---- Fault tolerance (inert unless a FaultInjector drives them) ----
        #: Request-level :class:`~repro.serving.faults.ResiliencePolicy`
        #: (deadline timeouts and admission shedding run on-core; retries
        #: are the injector's job through ``on_fail``).
        self.resilience = resilience
        #: Whether the shard is crashed (or reloading): it begins no steps
        #: and — unless recovery is pending — rejects offers at the door.
        self.down = False
        #: Bumped once per :meth:`crash`; a step-completion event stamped
        #: with an older epoch is stale and must not be applied.
        self.crash_epoch = 0
        #: True between a crash and the shard's scheduled recovery: offers
        #: queue (they will be served post-reload) instead of rejecting.
        self.recover_pending = False
        #: Straggler slowdown factor (>= 1); every step priced while it is
        #: not 1.0 stretches by it.  Fault-free runs never touch it.
        self.perf_penalty = 1.0
        #: Failure sink ``(serving_request, now, code)`` — the injector's
        #: retry hook for timeout/unavailable/migration-loss drops.
        self.on_fail = None
        self.crash_dropped = 0
        self.timeout_dropped = 0
        self.shed_dropped = 0
        self.unavailable_dropped = 0
        self._deadline = resilience.deadline if resilience is not None else None
        # Predictive shedding: one queued request's expected service time,
        # priced once (its share of a full micro-batch prefill pass).  The
        # memo call happens only with shedding on, so runs without it never
        # touch the step model here.
        self._shed_ttft: float | None = None
        self._shed_unit = 0.0
        if resilience is not None and resilience.shed:
            if slo is None:
                raise ConfigurationError(
                    "admission shedding needs an SLO to predict against"
                )
            self._shed_ttft = slo.ttft * resilience.shed_ttft_factor
            mu = policy.micro_batch_size
            prompt = max(1, workload.effective_prompt_len(backend.padded))
            self._shed_unit = (
                step_model.chunked_prefill_time(mu, mu * prompt) / mu
            )

    # ------------------------------------------------------------------
    # External interface (arrival ingestion and clock control)
    # ------------------------------------------------------------------
    def attach_load_board(self, board: list[int]) -> None:
        """Publish this core's load counter into a shared per-shard board.

        ``board[shard_id]`` is kept equal to :meth:`load` across every
        mutation, so a router reads N loads in O(N) list accesses with no
        per-core calls (and no scans at all for the chosen shard).
        """
        if self.shard_id is None:
            raise SimulationError(
                "attach_load_board requires a shard_id-bearing core"
            )
        self._load_board = board
        board[self.shard_id] = self._load

    def _bump_load(self, delta: int) -> None:
        self._load += delta
        if self._load_board is not None:
            self._load_board[self.shard_id] = self._load

    def offer(self, serving_request: ServingRequest) -> bool:
        """Ingest one arrival; returns False when the core drops it.

        Drops happen at the door for three reasons, each with its own
        outcome code: the queue is full (``queue-full``), the shard is
        dead with no recovery scheduled (``unavailable``), or predictive
        shedding judges the request's SLO already doomed under current
        load (``shed``).  A down shard *with* recovery pending queues the
        request — it will be served after the reload.
        """
        if self.shard_id is not None:
            serving_request.shard_id = self.shard_id
        self.offered_count += 1
        now = serving_request.arrival_time
        if self.down and not self.recover_pending:
            serving_request.mark_rejected(
                now, "shard unavailable", code="unavailable"
            )
            self.unavailable_dropped += 1
            self.rejected_count += 1
            if self.telemetry is not None:
                self.telemetry.record_reject(
                    serving_request, now, "shard unavailable"
                )
            if self.on_reject is not None:
                self.on_reject(serving_request)
            if self.on_fail is not None:
                self.on_fail(serving_request, now, "unavailable")
            return False
        if (
            self._shed_ttft is not None
            and self.load() * self._shed_unit > self._shed_ttft
        ):
            # Predictive admission: the queue ahead already implies a TTFT
            # past the shed threshold, so admitting would burn capacity on
            # a request that cannot meet its SLO.  Sheds never retry — the
            # signal is "the cluster is saturated", not "try again".
            serving_request.mark_rejected(
                now, "predicted wait exceeds SLO", code="shed"
            )
            self.shed_dropped += 1
            self.rejected_count += 1
            if self.telemetry is not None:
                self.telemetry.record_reject(
                    serving_request, now, "predicted wait exceeds SLO"
                )
            if self.on_reject is not None:
                self.on_reject(serving_request)
            return False
        was_idle = not self.has_work()
        if not self.queue.push(serving_request):
            serving_request.mark_rejected(
                serving_request.arrival_time, "queue full", code="queue-full"
            )
            self.dropped_queue_full += 1
            self.rejected_count += 1
            if self.telemetry is not None:
                self.telemetry.record_reject(
                    serving_request, serving_request.arrival_time, "queue full"
                )
            if self.on_reject is not None:
                self.on_reject(serving_request)
            return False
        self._bump_load(1)
        if was_idle:
            # An idle engine's clock catches up to the arrival; a busy one
            # leaves the request to wait for the current step to finish.
            # The catch-up happens only after a successful push, so a
            # queue-full drop leaves the clock untouched.
            self.now = max(self.now, serving_request.arrival_time)
        return True

    def has_work(self) -> bool:
        """Whether any request is queued, prefilling or decoding here."""
        return (
            self._in_flight is not None
            or bool(self.queue)
            or bool(self.running)
            or bool(self.prefilling)
            or bool(self._pending_joins)
        )

    def load(self) -> int:
        """Outstanding requests on this shard (routing signal)."""
        return (
            len(self.queue)
            + len(self.running)
            + len(self.prefilling)
            + len(self._pending_joins)
        )

    # ------------------------------------------------------------------
    # Disaggregated prefill/decode seams
    # ------------------------------------------------------------------
    def accept_migrated(self, serving_request: ServingRequest) -> None:
        """Receive a request whose prefill-side KV transfer just landed.

        The request is staged and joins the running set at this core's
        next step boundary, once admission accepts its end-of-generation
        KV reservation (registration walks the prompt's hash chain, so
        blocks already cached here are shared, not duplicated).  TTFT was
        stamped by the prefill shard; the decode clock only governs TPOT.
        """
        if self.role != "decode":
            raise SimulationError(
                "accept_migrated requires a decode-role core"
            )
        self._pending_joins.append(serving_request)
        self._bump_load(1)

    def release_migrated(self, serving_request: ServingRequest) -> None:
        """Free the source-side KV of a handed-off request post-transfer.

        Called on the *prefill* core when the migration lands on its
        target: hashed prompt blocks drop to the cache (still matchable by
        future prompts), private tails free outright.
        """
        self.admission.release(serving_request)

    def _flush_joins(self) -> None:
        """Admit staged migrations into the running set (step boundary).

        Requests the admission controller cannot fit yet stay staged while
        this core still has running work to retire (capacity frees as it
        does); a request that cannot fit even on an otherwise-empty core
        is rejected — waiting could never help it.
        """
        still: list[ServingRequest] = []
        joined = False
        epoch = self._decode_epochs[0]
        for serving_request in self._pending_joins:
            decision = self.admission.check(serving_request)
            if decision.admitted:
                self.admission.admit_checked(serving_request)
                serving_request.shard_id = self.shard_id
                self.migrated_in += 1
                serving_request.attach_decode_epoch(self._decode_epochs)
                finish_epoch = (
                    epoch + serving_request.request.generation_len - 1
                )
                self._finish_buckets.setdefault(finish_epoch, []).append(
                    serving_request
                )
                self.running.append(serving_request)
                joined = True
            elif self.running or joined:
                still.append(serving_request)
            else:
                serving_request.mark_rejected(
                    self.now,
                    "migration target over capacity",
                    code="migration-capacity",
                )
                self.rejected_count += 1
                self.migration_rejected += 1
                if self.telemetry is not None:
                    self.telemetry.record_reject(
                        serving_request, self.now, "migration target over capacity"
                    )
                if self.on_reject is not None:
                    self.on_reject(serving_request)
                self._bump_load(-1)
        self._pending_joins = still
        if joined:
            self._running_version += 1

    @property
    def step_in_flight(self) -> bool:
        """Whether a begun step is awaiting its completion event."""
        return self._in_flight is not None

    @property
    def busy_time(self) -> float:
        """Total simulated time this engine spent executing steps.

        Accumulated step by step in completion order — the identical
        float-addition sequence ``sum(step.duration for step in steps)``
        performs, so the value is bit-for-bit the historical one while
        costing O(1) per query (and surviving ``record_steps=False``).
        """
        return self._busy_time

    @property
    def decode_stream_busy(self) -> float:
        """Total time the decode stream spent executing."""
        return self._decode_busy

    @property
    def prefill_stream_busy(self) -> float:
        """Total time the prefill stream spent executing."""
        return self._prefill_busy

    @property
    def overlapped_time(self) -> float:
        """Total time both streams executed concurrently (mixed steps)."""
        return self._overlapped

    @property
    def overlap_fraction(self) -> float:
        """Fraction of this engine's busy time spent with overlapped streams."""
        if self._busy_time <= 0:
            return 0.0
        return self._overlapped / self._busy_time

    def advance_to(self, time: float) -> None:
        """Run engine steps until the clock reaches ``time`` or work runs out."""
        while self.now < time and self.has_work():
            if self.run_step() == "idle":
                break

    def drain(self) -> None:
        """Run the engine until every outstanding request retires."""
        while self.has_work():
            if self.run_step() == "idle":
                raise SimulationError(
                    "serving engine stalled with work outstanding"
                )

    # ------------------------------------------------------------------
    # One engine iteration (event-granular: begin / complete)
    # ------------------------------------------------------------------
    def run_step(self) -> str:
        """Execute the scheduler's next action; returns the action kind."""
        if self.begin_step() is None:
            return "idle"
        return self.complete_step()

    def begin_step(self) -> float | None:
        """Decide and launch the next engine step; returns its completion time.

        Returns ``None`` when the scheduler has nothing runnable (idle);
        otherwise the step is in flight until :meth:`complete_step` is
        called at the returned instant.  Start-of-step effects (admission,
        ``mark_running``, prompt-token consumption) are applied here, at
        the step's start time; everything stamped at the completion instant
        waits for :meth:`complete_step`.
        """
        if self._in_flight is not None:
            raise SimulationError("engine step already in flight")
        if self._deadline is not None:
            self._expire_deadline()
        if self._pending_joins:
            # Migrated requests join at step boundaries (decode role only);
            # unified cores never stage any, so this is one falsy test.
            self._flush_joins()
        # The chunk the scheduler returns is the carried-over prefilling set
        # followed by this step's new admissions; remember the boundary
        # before next_action mutates anything so the admit instants below
        # cover exactly the newly admitted tail.
        n_carried = len(self.prefilling)
        action = self.scheduler.next_action(
            len(self.running), self.queue, self.prefilling
        )
        for oversized in action.rejected:
            oversized.mark_rejected(
                self.now,
                oversized.reject_reason or "oversized request",
                code="oversized",
            )
            self.rejected_count += 1
            if self.telemetry is not None:
                self.telemetry.record_reject(
                    oversized, self.now, oversized.reject_reason or "oversized"
                )
            if self.on_reject is not None:
                self.on_reject(oversized)
        if action.rejected:
            # Oversized drops left the queue without entering the chunk.
            self._bump_load(-len(action.rejected))
        if self.telemetry is not None:
            for admitted in action.chunk[n_carried:]:
                self.telemetry.record_admit(admitted, self.now)
        if action.kind == "idle":
            return None
        if action.kind == "prefill":
            self._in_flight = self._begin_prefill(action.chunk)
        elif action.kind == "mixed":
            self._in_flight = self._begin_mixed(action.chunk)
        else:
            self._in_flight = self._begin_decode()
        # The chunk's members leave the queue at begin time; carrying them
        # in ``prefilling`` keeps has_work()/load() honest mid-flight.
        self.prefilling = list(self._in_flight.chunk)
        return self._in_flight.completion

    def _expire_deadline(self) -> None:
        """Drop queued requests whose deadline has already passed.

        Checked head-first at each step boundary: under FCFS ordering the
        head is the oldest waiter, so the sweep is exact; under SJF it
        catches the expired head but may leave older long prompts deeper
        in the heap until they surface.  Expired requests carry the
        ``timeout`` outcome code and flow through ``on_fail`` so the
        resilience layer can retry them elsewhere.
        """
        deadline = self._deadline
        while True:
            head = self.queue.peek()
            if head is None or self.now - head.arrival_time <= deadline:
                break
            self.queue.pop()
            head.mark_rejected(
                self.now, "deadline exceeded in queue", code="timeout"
            )
            self.timeout_dropped += 1
            self.rejected_count += 1
            self._bump_load(-1)
            if self.telemetry is not None:
                self.telemetry.record_reject(
                    head, self.now, "deadline exceeded in queue"
                )
                self.telemetry.count("requests.timeout")
            if self.on_reject is not None:
                self.on_reject(head)
            if self.on_fail is not None:
                self.on_fail(head, self.now, "timeout")

    def crash(self, now: float) -> list[ServingRequest]:
        """Tear down this shard at ``now``; returns every dropped request.

        Crash semantics, in order: the in-flight step dies with the device
        (its already-queued completion event is invalidated by the crash
        epoch bump); every queued, prefilling, running and staged request
        gets exactly one terminal record with the ``crash`` outcome code;
        every KV reservation — including prompt KV a prefill core was
        holding for not-yet-landed migrations — is released and the
        shard's prefix cache is purged, so the block store returns to zero
        resident bytes with no negative refcounts and no dangling
        ``prefix_index`` entries.  The core is then ``down``: it begins no
        steps until a recovery event clears the flag.

        Retries are the caller's job (the injector re-injects the returned
        list per its policy); ``on_fail`` is *not* invoked here to keep
        the retry decision in one place.
        """
        self.now = max(self.now, now)
        self._in_flight = None
        dropped: list[ServingRequest] = []
        dropped.extend(self.queue.drain())
        dropped.extend(self.prefilling)
        self.prefilling = []
        for serving_request in self.running:
            serving_request.detach_decode_epoch()
        dropped.extend(self.running)
        self.running = []
        dropped.extend(self._pending_joins)
        self._pending_joins = []
        for serving_request in dropped:
            serving_request.mark_rejected(self.now, "shard crash", code="crash")
            self.rejected_count += 1
            self.crash_dropped += 1
            if self.telemetry is not None:
                self.telemetry.record_reject(
                    serving_request, self.now, "shard crash"
                )
            if self.on_reject is not None:
                self.on_reject(serving_request)
        self.admission.kv_cache.release_all()
        store = self.admission.kv_cache.block_store
        if store is not None:
            store.drop_all_cached()
        self._finish_buckets.clear()
        self._running_version += 1
        self._bump_load(-self._load)
        self.crash_epoch += 1
        self.down = True
        return dropped

    def fail_migrated(
        self, serving_request: ServingRequest, now: float
    ) -> None:
        """Terminal-mark an in-flight migration lost to a mid-transfer crash.

        Between handoff and landing a migrating request sits on *no*
        core's sets, so a crash of its source or target orphans it; the
        landing callback reports the loss here, on the source core, which
        keeps the cluster-total ``offered == completed + rejected``
        invariant intact.
        """
        serving_request.mark_rejected(
            now, "migration lost to crash", code="crash"
        )
        self.rejected_count += 1
        self.crash_dropped += 1
        if self.telemetry is not None:
            self.telemetry.record_reject(
                serving_request, now, "migration lost to crash"
            )
        if self.on_reject is not None:
            self.on_reject(serving_request)
        if self.on_fail is not None:
            self.on_fail(serving_request, now, "crash")

    def complete_step(self) -> str:
        """Apply the in-flight step's effects at its completion instant."""
        in_flight = self._in_flight
        if in_flight is None:
            raise SimulationError("no engine step in flight to complete")
        self._in_flight = None
        self.now = in_flight.completion
        if self._ttl_store is not None:
            # Blocks cached during this completion stamp the current instant
            # as their idleness start; expiry itself runs post-retirement.
            self._ttl_store.clock_time = self.now
        if in_flight.decoded_running:
            # O(1): every attached running request reads one more decoded
            # token through the shared epoch; the partition memo derives
            # its context sums from the same epoch delta.
            self._decode_epochs[0] += 1
        if in_flight.chunk:
            self._finish_chunk(in_flight.chunk, in_flight.first_token_at)
        step = in_flight.step
        self.num_steps += 1
        self._busy_time += step.duration
        self._decode_busy += step.decode_time
        self._prefill_busy += step.prefill_time
        self._overlapped += step.overlapped_time
        if self.record_steps:
            self.steps.append(step)
        if self.telemetry is not None:
            self.telemetry.record_step(self.shard_id, step)
        self._retire_finished()
        if self._ttl_store is not None:
            self._ttl_store.expire_idle(self.now - self.session_ttl)
        return step.kind

    def _begin_prefill(self, chunk: list[ServingRequest]) -> _InFlightStep:
        if self.chunk_prefill_tokens is None:
            for serving_request in chunk:
                serving_request.mark_running(self.now)
            duration = self.step_model.prefill_time(chunk)
            if self.perf_penalty != 1.0:
                duration *= self.perf_penalty
            # The whole prompt is processed this step; consuming it now
            # lets completion route every request through _finish_chunk.
            for serving_request in chunk:
                serving_request.tokens_prefilled = (
                    serving_request.request.effective_input_len
                )
            num_requests = len(chunk)
            mu = min(self.policy.micro_batch_size, num_requests)
            step = EngineStep(
                kind="prefill",
                start=self.now,
                duration=duration,
                num_requests=num_requests,
                num_micro_batches=-(-num_requests // mu),
                decode_time=0.0,
                prefill_time=duration,
            )
            return _InFlightStep(
                step=step,
                chunk=chunk,
                decoded_running=False,
                first_token_at=step.end,
            )

        # Chunked prefill with nothing decoding: a standalone chunk step.
        num_worked, tokens_processed = self._consume_chunk_budget(chunk)
        duration = self.step_model.chunked_prefill_time(
            max(1, num_worked), max(1, tokens_processed)
        )
        if self.perf_penalty != 1.0:
            duration *= self.perf_penalty
        mu = min(self.policy.micro_batch_size, max(1, num_worked))
        step = EngineStep(
            kind="prefill",
            start=self.now,
            duration=duration,
            num_requests=num_worked,
            num_micro_batches=-(-max(1, num_worked) // mu),
            decode_time=0.0,
            prefill_time=duration,
        )
        return _InFlightStep(
            step=step,
            chunk=chunk,
            decoded_running=False,
            first_token_at=step.end,
        )

    def _begin_mixed(self, chunk: list[ServingRequest]) -> _InFlightStep:
        """One decode iteration carrying prefill work on the same pass.

        The chunk's prompt compute shares the step's layer-by-layer weight
        stream with the decode pass (what the GPU would otherwise idle
        through on weight-transfer-bound steps), so the step lasts as long
        as the *slower* of the two halves rather than their sum.  Under
        chunked prefill the chunk is a token budget; with ``overlap`` and
        no chunking it is the whole-prompt prefill of the admitted chunk.
        """
        num_micro_batches, binding_context = self._decode_shape()
        decode_time = self.step_model.decode_step_time(
            len(self.running), binding_context
        )
        if self.chunk_prefill_tokens is None:
            # Whole-prompt prefill riding the decode stream (overlap mode):
            # price it before consuming the prompts it will process.
            chunk_time = self.step_model.prefill_time(chunk)
            num_worked, _ = self._consume_chunk_budget(chunk)
        else:
            num_worked, tokens_processed = self._consume_chunk_budget(chunk)
            chunk_time = self.step_model.chunked_prefill_time(
                max(1, num_worked), max(1, tokens_processed)
            )
        if self.perf_penalty != 1.0:
            # A straggling device slows both streams: they share the same
            # degraded weight-streaming bandwidth.
            decode_time *= self.perf_penalty
            chunk_time *= self.perf_penalty
        duration = max(decode_time, chunk_time)
        # Count each request exactly once: the decode half works the
        # requests running at step start, the prefill half the chunk's
        # worked prompts.  (Prompts that finish prefilling this step join
        # the running set only at completion, so they are not decoding.)
        num_requests = len(self.running) + num_worked
        # The prefill half completes when its stream does: with overlap on
        # that is ``chunk_time`` into the step; the serialized timeline
        # stamps first tokens at the end of the whole step, as it always
        # has.
        first_token_at = (
            self.now + chunk_time if self.overlap else self.now + duration
        )
        step = EngineStep(
            kind="mixed",
            start=self.now,
            duration=duration,
            num_requests=num_requests,
            num_micro_batches=num_micro_batches,
            decode_time=decode_time,
            prefill_time=chunk_time,
        )
        return _InFlightStep(
            step=step,
            chunk=chunk,
            decoded_running=True,
            first_token_at=first_token_at,
        )

    def _begin_decode(self) -> _InFlightStep:
        num_micro_batches, binding_context = self._decode_shape()
        duration = self.step_model.decode_step_time(
            len(self.running), binding_context
        )
        if self.perf_penalty != 1.0:
            duration *= self.perf_penalty
        step = EngineStep(
            kind="decode",
            start=self.now,
            duration=duration,
            num_requests=len(self.running),
            num_micro_batches=num_micro_batches,
            decode_time=duration,
            prefill_time=0.0,
        )
        return _InFlightStep(
            step=step,
            chunk=[],
            decoded_running=True,
            first_token_at=step.end,
        )

    def _decode_shape(self) -> tuple[int, float]:
        """Micro-batch count and binding context of the running set.

        The partition produced by ``form_micro_batches`` depends only on
        the running set's membership (static request lengths), so it is
        memoised on ``_running_version`` and only rebuilt when requests
        join or retire.  Between rebuilds the cached integer context sums
        advance by one token per group member per decode step (exact —
        context lengths are ints), so the binding context here is
        bit-for-bit what a fresh ``binding_context_len`` scan would give.
        """
        if self._partition_version != self._running_version:
            batch = self.scheduler.form_micro_batches(self.running)
            by_id = {sr.request_id: sr for sr in self.running}
            self._partition_groups = [
                [by_id[request.request_id] for request in micro_batch]
                for micro_batch in batch
                if micro_batch.size > 0
            ]
            self._partition_base = np.array(
                [
                    sum(sr.context_len for sr in group)
                    for group in self._partition_groups
                ],
                dtype=np.int64,
            )
            self._partition_sizes = np.array(
                [len(group) for group in self._partition_groups],
                dtype=np.int64,
            )
            self._partition_epoch = self._decode_epochs[0]
            self._partition_micro = batch.num_micro_batches
            self._partition_version = self._running_version
        # Each member gains one context token per decode epoch, so the
        # group sums at the current epoch are base + size * delta — exact
        # integer arithmetic, and int64/int64 division is bit-for-bit the
        # Python int/int float the per-request scan used to produce.
        delta = self._decode_epochs[0] - self._partition_epoch
        sums = self._partition_base
        if delta:
            sums = sums + self._partition_sizes * delta
        binding_context = float((sums / self._partition_sizes).max())
        return self._partition_micro, binding_context

    def _consume_chunk_budget(
        self, chunk: list[ServingRequest]
    ) -> tuple[int, int]:
        """Spend the chunk token budget across the chunk's prompts.

        A ``None`` budget (overlap mode without chunked prefill) processes
        every remaining prompt token in the chunk.
        """
        budget = self.chunk_prefill_tokens
        tokens_processed = 0
        num_worked = 0
        for serving_request in chunk:
            if budget is not None and budget <= 0:
                break
            if serving_request.state is RequestState.QUEUED:
                serving_request.mark_running(self.now)
            take = serving_request.prefill_remaining
            if budget is not None:
                take = min(take, budget)
            if take <= 0:
                continue
            serving_request.tokens_prefilled += take
            if budget is not None:
                budget -= take
            tokens_processed += take
            num_worked += 1
        return num_worked, tokens_processed

    def _finish_chunk(
        self, chunk: list[ServingRequest], first_token_at: float
    ) -> None:
        """Retire completed prompts into the running set; keep the rest."""
        if self.role == "prefill":
            self._finish_chunk_prefill(chunk, first_token_at)
            return
        still_prefilling: list[ServingRequest] = []
        joined = False
        epoch = self._decode_epochs[0]
        for serving_request in chunk:
            if serving_request.is_prefill_complete:
                serving_request.mark_first_token(first_token_at)
                serving_request.attach_decode_epoch(self._decode_epochs)
                # Prefill emitted token 1, so the request finishes after
                # generation_len - 1 further decode epochs; bucketing it by
                # that epoch makes retirement a dict pop, not a scan.
                finish_epoch = (
                    epoch + serving_request.request.generation_len - 1
                )
                self._finish_buckets.setdefault(finish_epoch, []).append(
                    serving_request
                )
                self.running.append(serving_request)
                joined = True
            else:
                still_prefilling.append(serving_request)
        self.prefilling = still_prefilling
        if joined:
            self._running_version += 1

    def _finish_chunk_prefill(
        self, chunk: list[ServingRequest], first_token_at: float
    ) -> None:
        """Prefill-role completion: emit the first token, then hand off.

        A completed prompt's first token comes out of the prefill pass
        itself (the DistServe handoff point), so TTFT is stamped here; the
        request then leaves this shard through ``on_handoff`` — its KV
        stays reserved until :meth:`release_migrated` confirms the
        transfer landed.  Single-token requests are already complete and
        finish locally; nothing of theirs is worth migrating.
        """
        still_prefilling: list[ServingRequest] = []
        handoffs: list[ServingRequest] = []
        done: list[ServingRequest] = []
        for serving_request in chunk:
            if serving_request.is_prefill_complete:
                serving_request.mark_first_token(first_token_at)
                if serving_request.request.generation_len <= 1:
                    done.append(serving_request)
                else:
                    handoffs.append(serving_request)
            else:
                still_prefilling.append(serving_request)
        self.prefilling = still_prefilling
        if done:
            for serving_request in done:
                serving_request.mark_finished(self.now)
                self.admission.release(serving_request)
                self.completed_count += 1
                self.tokens_generated_total += serving_request.tokens_decoded
                if self.telemetry is not None:
                    self.telemetry.record_finish(serving_request)
                if self.on_finish is not None:
                    self.on_finish(serving_request)
            if self.on_finish_batch is not None:
                self.on_finish_batch(done)
            self._bump_load(-len(done))
        if handoffs:
            self.prefills_completed += len(handoffs)
            self.migrated_out += len(handoffs)
            self._bump_load(-len(handoffs))
            if self.on_handoff is None:
                raise SimulationError(
                    "prefill core completed prompts with no handoff sink"
                )
            self.on_handoff(self, handoffs)

    def _retire_finished(self) -> None:
        # Requests are bucketed at join time by the decode epoch at which
        # they finish, so a step that retires nothing costs one dict probe
        # and steps that do retire touch only the finished requests (plus
        # one compaction of the survivors).  Bucket order is join order is
        # running-list order, so mark/release/observe sequencing — and with
        # it LRU recency, eviction and the timeline — is bit-for-bit the
        # old scan's.
        finished = self._finish_buckets.pop(self._decode_epochs[0], None)
        if not finished:
            return
        for serving_request in finished:
            serving_request.detach_decode_epoch()
            serving_request.mark_finished(self.now)
            self.admission.release(serving_request)
            self.completed_count += 1
            self.tokens_generated_total += serving_request.tokens_decoded
            if self.telemetry is not None:
                self.telemetry.record_finish(serving_request)
            if self.on_finish is not None:
                self.on_finish(serving_request)
        if self.on_finish_batch is not None:
            self.on_finish_batch(finished)
        running = self.running
        if len(finished) == len(running):
            running.clear()
        else:
            drop = set(map(id, finished))
            running[:] = [
                serving_request
                for serving_request in running
                if id(serving_request) not in drop
            ]
        self._running_version += 1
        self._bump_load(-len(finished))

    def admission_stats(self) -> dict[str, int]:
        """Drop/admit counters in the report's canonical key order.

        Extra keys appear only for the features that can produce them
        (TTL eviction, migration), so runs without those are dict-identical
        to the historical report.
        """
        stats = {
            "admitted": self.admission.admitted_count,
            "rejected_kv": self.admission.rejected_kv_count,
            "rejected_slots": self.admission.rejected_slots_count,
            "dropped_queue_full": self.dropped_queue_full,
            "cache_hits": self.admission.cache_hit_count,
            "cached_tokens": self.admission.cached_tokens_total,
        }
        if self._ttl_store is not None:
            stats["ttl_evictions"] = self._ttl_store.ttl_evictions
        if self.role != "unified":
            stats["migrated_in"] = self.migrated_in
            stats["migrated_out"] = self.migrated_out
            stats["migration_rejected"] = self.migration_rejected
        if self.crash_epoch > 0 or self.resilience is not None:
            stats["crash_dropped"] = self.crash_dropped
            stats["timeout_dropped"] = self.timeout_dropped
            stats["shed_dropped"] = self.shed_dropped
            stats["unavailable_dropped"] = self.unavailable_dropped
        return stats


@dataclass(frozen=True)
class ServingResult:
    """Everything one serving run produced."""

    system: str
    workload: str
    scheduling: str
    policy: Policy
    slo: SLO
    requests: list[ServingRequest]
    steps: list[EngineStep]
    makespan: float
    report: ServingReport
    admission_stats: dict[str, int] = field(default_factory=dict)
    #: Busy totals carried from the engine's O(1) accumulators, so results
    #: survive ``record_steps=False`` runs (empty ``steps``) with the same
    #: values a scan over the step list would produce.
    busy_s: float | None = None
    decode_busy_total: float | None = None
    prefill_busy_total: float | None = None
    overlapped_total: float | None = None

    @property
    def decode_stream_busy(self) -> float:
        """Total decode-stream execution time across the run's steps."""
        if self.decode_busy_total is not None:
            return self.decode_busy_total
        return decode_stream_busy(self.steps)

    @property
    def prefill_stream_busy(self) -> float:
        """Total prefill-stream execution time across the run's steps."""
        if self.prefill_busy_total is not None:
            return self.prefill_busy_total
        return prefill_stream_busy(self.steps)

    @property
    def overlap_fraction(self) -> float:
        """Fraction of engine busy time with both streams executing."""
        if self.busy_s is not None and self.overlapped_total is not None:
            if self.busy_s <= 0:
                return 0.0
            return self.overlapped_total / self.busy_s
        return overlap_fraction(self.steps)

    def as_row(self) -> dict[str, object]:
        """Flat dictionary for the table renderer."""
        row: dict[str, object] = {
            "system": self.system,
            "workload": self.workload,
            "scheduling": self.scheduling,
            "batch_size": self.policy.batch_size,
            "micro_batch_size": self.policy.micro_batch_size,
        }
        row.update(self.report.as_row())
        row["overlap_fraction"] = self.overlap_fraction
        row["decode_busy_s"] = self.decode_stream_busy
        row["prefill_busy_s"] = self.prefill_stream_busy
        return row


class ServingSystem:
    """Continuous-batching serving simulator over an offloading backend."""

    def __init__(
        self,
        backend: OffloadingSystem,
        workload: WorkloadSpec,
        policy: Policy | None = None,
        scheduling: str = "fcfs",
        queue_ordering: str = "fcfs",
        max_queue_depth: int | None = None,
        slo: SLO | None = None,
        use_simulator: bool = False,
        ctx_bucket: int = 32,
        block_tokens: int = 16,
        chunk_prefill_tokens: int | None = None,
        prefix_cache: bool = False,
        overlap: bool = False,
        session_ttl: float | None = None,
        store_samples: bool = True,
    ) -> None:
        self.backend = backend
        self.workload = workload
        self.policy = policy or backend.select_policy(workload)
        self.scheduling = scheduling
        self.queue_ordering = queue_ordering
        self.max_queue_depth = max_queue_depth
        self.slo = slo or default_slo(backend, workload, self.policy)
        self.block_tokens = block_tokens
        self.chunk_prefill_tokens = chunk_prefill_tokens
        self.prefix_cache = prefix_cache
        self.overlap = overlap
        if session_ttl is not None and not prefix_cache:
            raise ConfigurationError(
                "session_ttl requires prefix_cache=True: without the shared "
                "block store there are no idle cached sessions to expire"
            )
        self.session_ttl = session_ttl
        #: ``store_samples=False`` switches the report to streaming P²
        #: aggregation and drops the per-step timeline from the result —
        #: the per-request timestamps themselves stay bit-for-bit the
        #: stored-sample run's.
        self.store_samples = store_samples
        self.step_model = EngineStepModel(
            backend,
            workload,
            self.policy,
            use_simulator=use_simulator,
            ctx_bucket=ctx_bucket,
        )

    def _as_served(self, request):
        """Apply the backend's padding discipline to an arriving request.

        Padding-based systems (FlexGen, MoE-Lightning(p)) store and compute
        over the workload's maximum prompt length for every request, so the
        padded length must drive KV admission and decode context — exactly
        as the offline memory/performance models charge it.
        """
        if not self.backend.padded:
            return request
        return request.padded_to(
            max(self.workload.max_prompt_len, request.input_len)
        )

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------
    def run(
        self,
        arrivals: ArrivalProcess | list[TimedRequest],
        count: int | None = None,
        seed: int = 0,
        telemetry=None,
    ) -> ServingResult:
        """Serve a request stream to completion and return the result.

        ``arrivals`` is either an :class:`ArrivalProcess` (materialised with
        ``count`` and ``seed``) or an explicit pre-built stream.
        ``telemetry`` optionally attaches a fresh :class:`repro.obs.Telemetry`
        for this run (recorders accumulate, so pass one per run); without it
        the loop takes its historical code path and the result is bit-for-bit
        identical.
        """
        if isinstance(arrivals, ArrivalProcess):
            stream = arrivals.generate(self.workload, count=count, seed=seed)
        else:
            stream = sorted(arrivals, key=lambda timed: timed.arrival_time)
        records = [
            ServingRequest(
                request=self._as_served(timed.request),
                arrival_time=timed.arrival_time,
            )
            for timed in stream
        ]

        builder: ReportBuilder | None = None
        if not self.store_samples:
            builder = ReportBuilder(self.slo, store_samples=False)
        core = EngineCore(
            backend=self.backend,
            workload=self.workload,
            policy=self.policy,
            step_model=self.step_model,
            scheduling=self.scheduling,
            queue_ordering=self.queue_ordering,
            max_queue_depth=self.max_queue_depth,
            block_tokens=self.block_tokens,
            chunk_prefill_tokens=self.chunk_prefill_tokens,
            prefix_cache=self.prefix_cache,
            overlap=self.overlap,
            session_ttl=self.session_ttl,
            telemetry=telemetry,
            record_steps=self.store_samples,
            on_reject=builder.observe if builder is not None else None,
            on_finish_batch=builder.observe_many if builder is not None else None,
        )
        next_arrival = 0
        while next_arrival < len(records) or core.has_work():
            # Sample interval boundaries crossed since the last event with
            # the pre-arrival state (state is constant between events).
            if telemetry is not None:
                telemetry.sample(core.now, (core,))
            # Ingest every arrival up to the current simulated time.
            while (
                next_arrival < len(records)
                and records[next_arrival].arrival_time <= core.now
            ):
                core.offer(records[next_arrival])
                next_arrival += 1

            # begin_step + complete_step is exactly run_step; splitting the
            # pair here lets the sampler observe the pre-completion state at
            # boundaries inside the step.
            completion = core.begin_step()
            if completion is None:
                if next_arrival < len(records):
                    core.now = max(
                        core.now, records[next_arrival].arrival_time
                    )
                    continue
                if core.has_work():
                    raise SimulationError(
                        "serving loop stalled with work outstanding"
                    )
                break
            if telemetry is not None:
                telemetry.sample(completion, (core,))
            core.complete_step()

        if telemetry is not None:
            telemetry.finish_run(core.now, (core,))
        if builder is not None:
            report = builder.build(core.now)
        else:
            report = summarize(records, makespan=core.now, slo=self.slo)
        return ServingResult(
            system=self.backend.name,
            workload=self.workload.name,
            scheduling=self.scheduling,
            policy=self.policy,
            slo=self.slo,
            requests=records,
            steps=core.steps,
            makespan=core.now,
            report=report,
            admission_stats=core.admission_stats(),
            busy_s=core.busy_time,
            decode_busy_total=core.decode_stream_busy,
            prefill_busy_total=core.prefill_stream_busy,
            overlapped_total=core.overlapped_time,
        )
