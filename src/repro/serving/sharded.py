"""Sharded online serving: N data-parallel engines behind a router.

:class:`ShardedServingSystem` is the scale-out counterpart of
:class:`~repro.serving.server.ServingSystem`: ``num_shards`` replicas of one
offloading backend — each an independent :class:`~repro.serving.server.EngineCore`
with its own queue, admission controller and KV cache — serve a single
arrival stream split by a :class:`~repro.serving.router.ShardRouter`.

The run loop is the timestamp-ordered event queue of
:mod:`repro.serving.event_loop`: arrivals and per-shard step completions
interleave in true global time order, so routing decisions, admissions and
retirements happen exactly when they would on a live cluster — the router
never observes a shard clock that overshot the arrival instant.  (The
original time-sliced multiplexer survives as :meth:`run_time_sliced`, a
reference implementation for equivalence regression tests.)

Shards correspond to the devices of a
:class:`~repro.cluster.spec.ClusterSpec` (scale-out semantics: each shard
owns its node), and the result reports per-shard utilization and
prefill/decode stream occupancy alongside the aggregate latency/goodput
metrics, so imbalance — the router's failure mode — is directly visible.

Determinism matches the single-engine system: same backend, arrival
process, router policy and seed give identical per-request timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.cluster.spec import ClusterSpec, ethernet_100g
from repro.core.policy import Policy
from repro.serving.arrivals import ArrivalProcess, TimedRequest
from repro.serving.event_loop import ServingEventLoop
from repro.serving.faults import FaultInjector, FaultSchedule, ResiliencePolicy
from repro.serving.metrics import SLO, ReportBuilder, ServingReport, summarize
from repro.serving.queue import ServingRequest
from repro.serving.router import PhaseRouter, ShardRouter
from repro.serving.server import EngineCore, EngineStepModel, default_slo
from repro.systems.base import OffloadingSystem
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class ShardStats:
    """One shard's share of a sharded serving run."""

    shard_id: int
    offered: int
    completed: int
    rejected: int
    tokens_generated: int
    busy_time: float
    utilization: float
    decode_stream_busy: float = 0.0
    prefill_stream_busy: float = 0.0
    overlap_fraction: float = 0.0
    #: Engine steps this shard executed (simperf's event count alongside
    #: arrivals); 0 only on an idle shard.
    num_steps: int = 0
    #: Phase role this shard served (``unified`` outside disaggregation)
    #: and its KV-migration traffic (0/0 on unified shards).
    role: str = "unified"
    migrated_in: int = 0
    migrated_out: int = 0

    def as_row(self) -> dict[str, object]:
        """Flat dictionary for the table renderer."""
        return {
            "shard": self.shard_id,
            "role": self.role,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "tokens": self.tokens_generated,
            "busy_s": self.busy_time,
            "utilization": self.utilization,
            "decode_busy_s": self.decode_stream_busy,
            "prefill_busy_s": self.prefill_stream_busy,
            "overlap_fraction": self.overlap_fraction,
            "num_steps": self.num_steps,
            "migrated_in": self.migrated_in,
            "migrated_out": self.migrated_out,
        }


@dataclass(frozen=True)
class ShardedServingResult:
    """Aggregate and per-shard outcome of one sharded serving run."""

    system: str
    workload: str
    scheduling: str
    router: str
    num_shards: int
    policy: Policy
    slo: SLO
    requests: list[ServingRequest]
    makespan: float
    report: ServingReport
    shard_stats: list[ShardStats]
    admission_stats: dict[str, int] = field(default_factory=dict)
    #: Injected-fault counters (crashes, recoveries, retries, KV lost,
    #: unavailability seconds); empty on every fault-free run.
    fault_stats: dict[str, float] = field(default_factory=dict)

    @property
    def shard_utilizations(self) -> list[float]:
        """Per-shard busy fractions over the run's makespan."""
        return [stats.utilization for stats in self.shard_stats]

    @property
    def overlap_fraction(self) -> float:
        """Cluster-wide fraction of busy time with both streams executing.

        The busy-time-weighted mean of the per-shard fractions, which are
        accumulated per step (a pure step contributes exactly zero, with
        no float residue from regrouped stream sums).
        """
        busy = sum(stats.busy_time for stats in self.shard_stats)
        if busy <= 0:
            return 0.0
        overlapped = sum(
            stats.overlap_fraction * stats.busy_time for stats in self.shard_stats
        )
        return overlapped / busy

    def as_row(self) -> dict[str, object]:
        """Flat dictionary for the table renderer."""
        utils = self.shard_utilizations
        row: dict[str, object] = {
            "system": self.system,
            "workload": self.workload,
            "scheduling": self.scheduling,
            "router": self.router,
            "num_shards": self.num_shards,
            "batch_size": self.policy.batch_size,
        }
        row.update(self.report.as_row())
        row["shard_util_mean"] = sum(utils) / len(utils) if utils else 0.0
        row["shard_util_min"] = min(utils) if utils else 0.0
        row["shard_util"] = "/".join(f"{u:.2f}" for u in utils)
        row["overlap_fraction"] = self.overlap_fraction
        row["decode_busy_s"] = sum(s.decode_stream_busy for s in self.shard_stats)
        row["prefill_busy_s"] = sum(s.prefill_stream_busy for s in self.shard_stats)
        # Fault counters render on every row (zeros on fault-free runs) so
        # chaos-sweep tables stay rectangular across scenarios.
        faults = self.fault_stats
        row["crashes"] = int(faults.get("crashes", 0))
        row["recoveries"] = int(faults.get("recoveries", 0))
        row["unavailability_s"] = faults.get("unavailability_s", 0.0)
        row["kv_bytes_lost"] = faults.get("kv_bytes_lost", 0.0)
        return row


class ShardedServingSystem:
    """Routed serving over N shards (round-robin / least-loaded /
    session-affinity / cache-aware), optionally with per-shard prefix
    caches."""

    def __init__(
        self,
        backend: OffloadingSystem,
        workload,
        num_shards: int | None = None,
        cluster: ClusterSpec | None = None,
        router: str = "round-robin",
        policy: Policy | None = None,
        scheduling: str = "fcfs",
        queue_ordering: str = "fcfs",
        max_queue_depth: int | None = None,
        slo: SLO | None = None,
        use_simulator: bool = False,
        ctx_bucket: int = 32,
        block_tokens: int = 16,
        chunk_prefill_tokens: int | None = None,
        prefix_cache: bool = False,
        overlap: bool = False,
        store_samples: bool = True,
        incremental_routing: bool = True,
        disaggregated: bool = False,
        prefill_shards: int | None = None,
        session_ttl: float | None = None,
        faults: FaultSchedule | None = None,
        resilience: ResiliencePolicy | None = None,
    ) -> None:
        if num_shards is None:
            if cluster is None:
                raise ConfigurationError(
                    "either num_shards or a cluster must be provided"
                )
            num_shards = cluster.num_devices
        elif cluster is not None and cluster.num_devices != num_shards:
            raise ConfigurationError(
                f"num_shards ({num_shards}) does not match the cluster's "
                f"device count ({cluster.num_devices})"
            )
        require_positive_int("num_shards", num_shards)
        self.backend = backend
        self.workload = workload
        self.num_shards = num_shards
        if cluster is None and backend.hardware.tp_size == 1:
            # Describe the default deployment: one backend node per shard.
            # Multi-GPU backend nodes stay cluster-less here — each shard is
            # simply a replica of that aggregate node.
            cluster = ClusterSpec.scale_out(backend.hardware, num_shards)
        self.cluster = cluster
        self.router_policy = router
        self.policy = policy or backend.select_policy(workload)
        self.scheduling = scheduling
        self.queue_ordering = queue_ordering
        self.max_queue_depth = max_queue_depth
        self.slo = slo or default_slo(backend, workload, self.policy)
        self.block_tokens = block_tokens
        self.chunk_prefill_tokens = chunk_prefill_tokens
        if router == "cache-aware" and not prefix_cache:
            raise ConfigurationError(
                "cache-aware routing requires prefix_cache=True: without the "
                "shared block store there is no per-shard prefix state to "
                "route on"
            )
        self.prefix_cache = prefix_cache
        self.overlap = overlap
        if session_ttl is not None and not prefix_cache:
            raise ConfigurationError(
                "session_ttl requires prefix_cache=True: without the shared "
                "block store there are no idle cached sessions to expire"
            )
        self.session_ttl = session_ttl
        #: Chaos layer: a seeded :class:`FaultSchedule` of crash/recover/
        #: straggle/link events and a request-level
        #: :class:`ResiliencePolicy` (deadline, retries, shedding).  Both
        #: ``None`` (the default) leaves the run on the historical
        #: fault-free code path; an *empty* schedule attaches an injector
        #: whose every hook is inert, reproducing the same timeline
        #: bit-for-bit (asserted at tier 1).
        self.faults = faults
        self.resilience = resilience
        if faults is not None:
            bad = [s for s in faults.shards() if not 0 <= s < num_shards]
            if bad:
                raise ConfigurationError(
                    f"fault schedule targets shards {bad} outside the "
                    f"{num_shards}-shard cluster"
                )
        # ------------------------------------------------------------------
        # Phase roles: explicit device roles on the cluster win; otherwise
        # ``disaggregated=True`` splits the shard range into a prefill pool
        # followed by a decode pool.
        # ------------------------------------------------------------------
        if self.cluster is not None and self.cluster.is_disaggregated:
            disaggregated = True
        self.disaggregated = disaggregated
        if not disaggregated and prefill_shards is not None:
            raise ConfigurationError(
                "prefill_shards requires disaggregated=True"
            )
        if disaggregated:
            if num_shards < 2:
                raise ConfigurationError(
                    "disaggregated serving needs at least 2 shards (one "
                    "prefill, one decode)"
                )
            if self.cluster is not None and self.cluster.is_disaggregated:
                if prefill_shards is not None:
                    raise ConfigurationError(
                        "prefill_shards conflicts with a cluster that "
                        "already assigns device roles"
                    )
                self.shard_roles = [
                    self.cluster.device(i).role for i in range(num_shards)
                ]
            else:
                n_prefill = (
                    prefill_shards
                    if prefill_shards is not None
                    else max(1, num_shards // 2)
                )
                if not 0 < n_prefill < num_shards:
                    raise ConfigurationError(
                        f"prefill_shards must leave at least one decode "
                        f"shard: got {n_prefill} of {num_shards}"
                    )
                self.shard_roles = ["prefill"] * n_prefill + ["decode"] * (
                    num_shards - n_prefill
                )
        else:
            self.shard_roles = ["unified"] * num_shards
        #: ``store_samples=False`` switches :meth:`run` to the streaming
        #: hot path: lazy arrivals, no per-step records, P^2 sketch report.
        #: The serving timeline is identical either way; only report
        #: percentiles may differ (within P^2 tolerance).
        self.store_samples = store_samples
        #: ``incremental_routing=False`` keeps the original per-arrival
        #: polling closure (the regression reference for the O(1) router
        #: state below).
        self.incremental_routing = incremental_routing
        # One step model shared by every shard: the replicas are identical,
        # so the (batch, context) -> latency memo is shard-agnostic.
        self.step_model = EngineStepModel(
            backend,
            workload,
            self.policy,
            use_simulator=use_simulator,
            ctx_bucket=ctx_bucket,
        )
        # A device-bearing cluster prices each shard against its own node:
        # per-shard backends (same system, that device's hardware) feed both
        # the shard's step model and its admission budgets.  Clusters without
        # explicit devices keep the single shared model above — the
        # bit-for-bit-preserved historical path.
        self._shard_backends: list[OffloadingSystem] | None = None
        self._shard_step_models: list[EngineStepModel] | None = None
        self._ready_at = [0.0] * num_shards
        if self.cluster is not None and self.cluster.devices:
            self._shard_backends = []
            self._shard_step_models = []
            for i in range(num_shards):
                device = self.cluster.device(i)
                shard_backend = backend.with_hardware(device.node)
                self._shard_backends.append(shard_backend)
                self._shard_step_models.append(
                    EngineStepModel(
                        shard_backend,
                        workload,
                        self.policy,
                        use_simulator=use_simulator,
                        ctx_bucket=ctx_bucket,
                    )
                )
                self._ready_at[i] = (
                    device.ready_at if device.serves else float("inf")
                )
        # Validate the router policy eagerly so configuration errors
        # surface at construction, not mid-run.
        ShardRouter(num_shards, router)

    def _as_served(self, request):
        """Apply the backend's padding discipline (as the single engine does)."""
        if not self.backend.padded:
            return request
        return request.padded_to(
            max(self.workload.max_prompt_len, request.input_len)
        )

    def _make_cores(
        self,
        telemetry=None,
        record_steps: bool = True,
        on_finish: Callable[[ServingRequest], None] | None = None,
        on_reject: Callable[[ServingRequest], None] | None = None,
        on_finish_batch: Callable[[list[ServingRequest]], None] | None = None,
    ) -> list[EngineCore]:
        cores = []
        for shard_id in range(self.num_shards):
            backend = (
                self._shard_backends[shard_id]
                if self._shard_backends is not None
                else self.backend
            )
            step_model = (
                self._shard_step_models[shard_id]
                if self._shard_step_models is not None
                else self.step_model
            )
            core = EngineCore(
                backend=backend,
                workload=self.workload,
                policy=self.policy,
                step_model=step_model,
                scheduling=self.scheduling,
                queue_ordering=self.queue_ordering,
                max_queue_depth=self.max_queue_depth,
                block_tokens=self.block_tokens,
                chunk_prefill_tokens=self.chunk_prefill_tokens,
                shard_id=shard_id,
                prefix_cache=self.prefix_cache,
                overlap=self.overlap,
                role=self.shard_roles[shard_id],
                session_ttl=self.session_ttl,
                telemetry=telemetry,
                record_steps=record_steps,
                on_finish=on_finish,
                on_reject=on_reject,
                on_finish_batch=on_finish_batch,
                resilience=self.resilience,
                slo=self.slo,
            )
            ready_at = self._ready_at[shard_id]
            if 0.0 < ready_at < float("inf"):
                # A loading device's clock starts where its weight stream
                # ends: its first step cannot begin before the model is
                # resident (arrivals queue against that clock).
                core.now = ready_at
            cores.append(core)
        return cores

    def _make_injector(
        self, cores: list[EngineCore], telemetry=None
    ) -> FaultInjector | None:
        """One fresh injector per run, or ``None`` on the fault-free path.

        Constructed when either chaos input is present: a schedule (even an
        empty one — the determinism contract is tested through exactly this
        path) or a resilience policy (whose retries need the injector's
        re-injection machinery even with no faults scheduled).
        """
        if self.faults is None and self.resilience is None:
            return None
        schedule = self.faults if self.faults is not None else FaultSchedule.empty()
        return FaultInjector(
            cores, schedule, resilience=self.resilience, telemetry=telemetry
        )

    # ------------------------------------------------------------------
    # The sharded serving loop
    # ------------------------------------------------------------------
    def _materialize(
        self,
        arrivals: ArrivalProcess | list[TimedRequest],
        count: int | None,
        seed: int,
    ) -> list[ServingRequest]:
        if isinstance(arrivals, ArrivalProcess):
            stream = arrivals.generate(self.workload, count=count, seed=seed)
        else:
            stream = sorted(arrivals, key=lambda timed: timed.arrival_time)
        return [
            ServingRequest(
                request=self._as_served(timed.request),
                arrival_time=timed.arrival_time,
            )
            for timed in stream
        ]

    def _route_fn(self, router: ShardRouter):
        """Polling routing callback: loads (and cache matches) are scanned
        across every shard per arrival.

        The reference implementation for :meth:`_incremental_route_fn` —
        O(shards) (O(shards x prompt) when cache-aware) per arrival, kept
        for :meth:`run_time_sliced` and the router regression tests.
        """

        def route(serving_request: ServingRequest, cores) -> int:
            loads = [core.load() for core in cores]
            prefix_lens = None
            if self.router_policy == "cache-aware":
                # The router measures each shard's actual cached-prefix
                # match at the arrival instant — the live counterpart of
                # session affinity's static hash.
                prefix_lens = [
                    core.admission.match_prefix(serving_request.request)
                    for core in cores
                ]
            return router.route(serving_request, loads, prefix_lens)

        return route

    def _incremental_route_fn(self, router: ShardRouter, cores: list[EngineCore]):
        """O(1)-state routing: cores publish load deltas to a shared board.

        Instead of polling ``core.load()`` across every shard per arrival,
        each core pushes its +1/-1 load changes into one shared list as
        they happen (see ``EngineCore.attach_load_board``), so the router
        just reads it.  Cache-aware routing reads the prompt's columnar
        hash chain (precomputed by the workload generator) and walks each
        shard's content index directly — for the shards that do not hold
        the session's prefix that is a single dict probe, and no per-shard
        re-hashing or method dispatch happens anywhere.  Routing decisions
        are identical to the polling closure: the board always equals
        ``[core.load() for core in cores]`` and the per-index walk counts
        exactly the blocks :meth:`SharedBlockStore.match_prefix_hashes`
        would return.
        """
        board = [0] * len(cores)
        for core in cores:
            core.attach_load_board(board)
        if self.router_policy != "cache-aware":

            def route(serving_request: ServingRequest, cores) -> int:
                return router.route(serving_request, board, None)

            return route

        stores = [core.admission.kv_cache.block_store for core in cores]
        indexes = [
            store.prefix_index if store is not None else {} for store in stores
        ]
        block_tokens = self.block_tokens

        def route(serving_request: ServingRequest, cores) -> int:
            request = serving_request.request
            hashes = request.block_hash_chain(block_tokens)
            if not hashes:
                prefix_lens = [0] * len(board)
            else:
                # The match is capped one token short of the full prompt
                # (prefill must compute at least one token), so only the
                # first ``(input_len - 1) // block_tokens`` blocks can
                # ever match regardless of the chain's length.
                max_blocks = (request.input_len - 1) // block_tokens
                probe = hashes[:max_blocks] if len(hashes) > max_blocks else hashes
                prefix_lens = []
                append = prefix_lens.append
                for index in indexes:
                    depth = 0
                    for block_hash in probe:
                        if block_hash in index:
                            depth += 1
                        else:
                            break
                    append(depth * block_tokens)
            return router.route(serving_request, board, prefix_lens)

        return route

    def run(
        self,
        arrivals: ArrivalProcess | list[TimedRequest],
        count: int | None = None,
        seed: int = 0,
        telemetry=None,
    ) -> ShardedServingResult:
        """Serve one request stream across every shard to completion.

        Event-driven: a central timestamp-ordered queue interleaves
        arrivals with per-shard step completions, so the router observes
        every shard's true outstanding load at the arrival instant and
        admissions/retirements apply in global time order.  ``telemetry``
        optionally attaches a fresh :class:`repro.obs.Telemetry` for this
        run; disabled, the run is bit-for-bit the historical timeline.
        """
        if self.disaggregated:
            return self._run_disagg(arrivals, count, seed, telemetry)
        router = ShardRouter(self.num_shards, self.router_policy)
        builder: ReportBuilder | None = None
        if self.store_samples:
            records = self._materialize(arrivals, count, seed)
            cores = self._make_cores(telemetry=telemetry)
        else:
            # Streaming mode: no per-step records, no retained requests.
            # Terminal requests flow straight into the sketch-backed
            # report builder and are then garbage — peak memory is the
            # live working set, independent of stream length.
            records = []
            builder = ReportBuilder(self.slo, store_samples=False)
            cores = self._make_cores(
                telemetry=telemetry,
                record_steps=False,
                on_reject=builder.observe,
                on_finish_batch=builder.observe_many,
            )
        if self.incremental_routing:
            route = self._incremental_route_fn(router, cores)
        else:
            route = self._route_fn(router)
        injector = self._make_injector(cores, telemetry)
        if injector is not None:
            # Dead/loading shards leave the routable set; drops flow into
            # the retry machinery; retries re-route through the same
            # (avoidance-wrapped) policy.
            route = injector.wrap_route(route)
            injector.set_route(route)
            for core in cores:
                core.on_fail = injector.handle_failure
        loop = ServingEventLoop(cores, route, telemetry=telemetry)
        if injector is not None:
            injector.attach(
                loop,
                record_sink=records.append if builder is None else None,
            )
        if builder is None:
            makespan = loop.run(records)
            report = summarize(records, makespan=makespan, slo=self.slo)
        else:
            makespan = loop.run_stream(self._stream_records(arrivals, count, seed))
            report = builder.build(makespan)
        return self._finalize(records, cores, makespan, report, injector=injector)

    def _run_disagg(
        self,
        arrivals: ArrivalProcess | list[TimedRequest],
        count: int | None,
        seed: int,
        telemetry=None,
    ) -> ShardedServingResult:
        """Disaggregated run: prefill pool -> priced KV transfer -> decode pool.

        Arrivals route to the prefill shard that will start them soonest
        (outstanding prompt tokens over measured prefill speed); a completed
        prompt's KV migrates to the decode shard with the most headroom as a
        scheduled transfer event priced on the cluster link, with blocks the
        target already caches deduplicated out of the transfer.
        """
        builder: ReportBuilder | None = None
        if self.store_samples:
            records = self._materialize(arrivals, count, seed)
            cores = self._make_cores(telemetry=telemetry)
        else:
            records = []
            builder = ReportBuilder(self.slo, store_samples=False)
            cores = self._make_cores(
                telemetry=telemetry,
                record_steps=False,
                on_reject=builder.observe,
                on_finish_batch=builder.observe_many,
            )
        controller = _DisaggController(self, cores)
        injector = self._make_injector(cores, telemetry)
        route = controller.route
        if injector is not None:
            # The phase router's own readiness filter does the avoidance:
            # the injector flips ``ready_at[shard]`` to +inf on crash and
            # to the reload-complete instant on recovery, and both
            # route_prefill and route_decode already skip not-yet-ready
            # shards.  No wrapper needed — a wrapper's least-loaded
            # fallback could cross the phase boundary.
            injector.add_ready_view(controller.router.ready_at)
            injector.on_crash_drops.append(controller.on_crash_drops)
            injector.set_route(route)
            controller.injector = injector
            for core in cores:
                core.on_fail = injector.handle_failure
        loop = ServingEventLoop(cores, route, telemetry=telemetry)
        controller.attach(loop)
        if injector is not None:
            injector.attach(
                loop,
                record_sink=records.append if builder is None else None,
            )
        if builder is None:
            makespan = loop.run(records)
            report = summarize(records, makespan=makespan, slo=self.slo)
        else:
            makespan = loop.run_stream(self._stream_records(arrivals, count, seed))
            report = builder.build(makespan)
        return self._finalize(
            records,
            cores,
            makespan,
            report,
            router_name="phase-aware",
            injector=injector,
        )

    def _stream_records(
        self,
        arrivals: ArrivalProcess | list[TimedRequest],
        count: int | None,
        seed: int,
    ) -> Iterator[ServingRequest]:
        """Lazy counterpart of :meth:`_materialize` for :meth:`run_stream`.

        Prompt content identity is only attached when a prefix cache will
        consume it — and then as columnar block-hash chains at this
        system's block size, so even the cache-aware path materialises no
        token ids; otherwise the columnar generators keep per-request cost
        to one small object.
        """
        if isinstance(arrivals, ArrivalProcess):
            stream = arrivals.generate_lazy(
                self.workload,
                count=count,
                seed=seed,
                token_ids=self.prefix_cache,
                prefix_block_tokens=self.block_tokens,
            )
        else:
            stream = iter(sorted(arrivals, key=lambda timed: timed.arrival_time))
        for timed in stream:
            yield ServingRequest(
                request=self._as_served(timed.request),
                arrival_time=timed.arrival_time,
            )

    def run_time_sliced(
        self,
        arrivals: ArrivalProcess | list[TimedRequest],
        count: int | None = None,
        seed: int = 0,
    ) -> ShardedServingResult:
        """The original time-sliced multiplexer (reference implementation).

        Before each arrival is routed, every shard's engine runs forward to
        the arrival time — O(arrivals x shards), and a step started before
        the arrival runs to completion, so the shard clock can overshoot
        the instant the router is deciding at.  Retained for equivalence
        regression tests: with load-independent routing (round-robin,
        session-affinity) :meth:`run` reproduces this timeline bit-for-bit.
        """
        if self.disaggregated:
            raise ConfigurationError(
                "run_time_sliced does not support disaggregated serving: "
                "KV-transfer landings are scheduled events, which only the "
                "event loop orders correctly"
            )
        if self.faults is not None or self.resilience is not None:
            raise ConfigurationError(
                "run_time_sliced does not support fault injection or "
                "resilience: fault and retry events are scheduled on the "
                "event loop, which only run() drives"
            )
        records = self._materialize(arrivals, count, seed)
        router = ShardRouter(self.num_shards, self.router_policy)
        cores = self._make_cores()
        route = self._route_fn(router)
        for serving_request in records:
            for core in cores:
                core.advance_to(serving_request.arrival_time)
            shard = route(serving_request, cores)
            cores[shard].offer(serving_request)
        for core in cores:
            core.drain()
        makespan = max((core.now for core in cores), default=0.0)
        report = summarize(records, makespan=makespan, slo=self.slo)
        return self._finalize(records, cores, makespan, report)

    def _finalize(
        self,
        records: list[ServingRequest],
        cores: list[EngineCore],
        makespan: float,
        report: ServingReport,
        router_name: str | None = None,
        injector: FaultInjector | None = None,
    ) -> ShardedServingResult:
        # Per-shard stats come from the cores' O(1) counters rather than a
        # scan over the request records: every offered request is terminal
        # by run end and its shard_id was fixed at offer time, so the
        # counter totals equal the old per-record tallies exactly — and
        # they exist even in streaming mode, where no records are kept.
        shard_stats = []
        for core in cores:
            shard_stats.append(
                ShardStats(
                    shard_id=core.shard_id,
                    offered=core.offered_count,
                    completed=core.completed_count,
                    rejected=core.rejected_count,
                    tokens_generated=core.tokens_generated_total,
                    busy_time=core.busy_time,
                    utilization=(
                        core.busy_time / makespan if makespan > 0 else 0.0
                    ),
                    decode_stream_busy=core.decode_stream_busy,
                    prefill_stream_busy=core.prefill_stream_busy,
                    overlap_fraction=core.overlap_fraction,
                    num_steps=core.num_steps,
                    role=core.role,
                    migrated_in=core.migrated_in,
                    migrated_out=core.migrated_out,
                )
            )
        totals: dict[str, int] = {}
        for core in cores:
            for key, value in core.admission_stats().items():
                totals[key] = totals.get(key, 0) + value
        return ShardedServingResult(
            system=self.backend.name,
            workload=self.workload.name,
            scheduling=self.scheduling,
            router=router_name or self.router_policy,
            num_shards=self.num_shards,
            policy=self.policy,
            slo=self.slo,
            requests=records,
            makespan=makespan,
            report=report,
            shard_stats=shard_stats,
            admission_stats=totals,
            fault_stats=injector.stats() if injector is not None else {},
        )


class _DisaggController:
    """Wires a prefill pool to a decode pool through priced KV transfers.

    One controller per disaggregated run.  It owns the
    :class:`~repro.serving.router.PhaseRouter` (arrivals -> prefill shard,
    handoffs -> decode shard), installs itself as every prefill core's
    ``on_handoff`` sink, and turns each handoff into a scheduled event on
    the serving loop at ``now + link.latency + bytes / link.bandwidth``.
    Prompt blocks the target's prefix cache already holds are deduplicated
    out of the transfer: matched blocks re-register against the target's
    existing hash-chain entries and move zero bytes.

    The source's KV reservation is held until the transfer lands (the
    blocks are being read in flight), then released — hashed prompt blocks
    drop into the source's prefix cache, private tails free outright.
    """

    def __init__(
        self, system: ShardedServingSystem, cores: list[EngineCore]
    ) -> None:
        self.cores = cores
        self.loop: ServingEventLoop | None = None
        roles = system.shard_roles
        self.prefill_ids = [i for i, r in enumerate(roles) if r == "prefill"]
        self.decode_ids = [i for i, r in enumerate(roles) if r == "decode"]
        # Measured prefill speed per shard: tokens/second pricing one
        # reference prompt through that shard's own step model, so a fast
        # device's pool absorbs proportionally more prompt tokens.
        ref_tokens = max(1, system.workload.max_prompt_len)
        speeds = [1.0] * len(cores)
        for i in self.prefill_ids:
            speeds[i] = ref_tokens / cores[i].step_model.chunked_prefill_time(
                1, ref_tokens
            )
        self.router = PhaseRouter(
            self.prefill_ids,
            self.decode_ids,
            speeds,
            ready_at=system._ready_at,
        )
        self.board = [0] * len(cores)
        for core in cores:
            core.attach_load_board(self.board)
        for i in self.prefill_ids:
            cores[i].on_handoff = self.handoff
        link = (
            system.cluster.link if system.cluster is not None else ethernet_100g()
        )
        self._link_latency = link.latency
        self._link_bandwidth = link.bandwidth
        self.transfers = 0
        self.transfer_bytes = 0.0
        #: Set by the run when chaos is on: supplies the live link-penalty
        #: factor for transfer pricing and the crash epochs that tell a
        #: landing its source or target died mid-flight.
        self.injector = None
        self.transfers_lost = 0

    def attach(self, loop: ServingEventLoop) -> None:
        self.loop = loop

    def on_crash_drops(self, shard: int, dropped: list[ServingRequest]) -> None:
        """Unwind router accounting for a crashed shard's dropped requests.

        Prompts routed to a prefill shard hold their token count in the
        :class:`~repro.serving.router.PhaseRouter`'s ``outstanding_tokens``
        until handoff retires it; a crash drops them without ever handing
        off, so the count is retired here — otherwise the shard would look
        permanently loaded after it recovers.  Decode-shard drops hold no
        router state (their prompts were retired at handoff).
        """
        if shard not in self.router.outstanding_tokens:
            return
        for serving_request in dropped:
            self.router.complete_prefill(
                shard, serving_request.request.effective_input_len
            )

    def route(self, serving_request: ServingRequest, cores) -> int:
        """The event loop's RouteFn: every arrival is a prefill."""
        return self.router.route_prefill(serving_request, self.board)

    def handoff(
        self, source: EngineCore, requests: list[ServingRequest]
    ) -> None:
        """Migrate finished prompts off a prefill core (completion instant)."""
        loop = self.loop
        assert loop is not None  # attach() runs before any step begins
        now = source.now
        headrooms = [0] * len(self.cores)
        for shard in self.decode_ids:
            headrooms[shard] = self.cores[shard].admission.kv_headroom_tokens()
        for serving_request in requests:
            request = serving_request.request
            self.router.complete_prefill(
                source.shard_id, request.effective_input_len
            )
            target_id = self.router.route_decode(headrooms, self.board, now)
            target = self.cores[target_id]
            # Blocks the target already caches transfer nothing: its
            # registration re-acquires the resident hash-chain entries.
            matched = target.admission.match_prefix(request)
            move_tokens = max(0, request.effective_input_len - matched)
            num_bytes = target.admission.kv_cache.bytes_for_tokens(move_tokens)
            delay = self._link_latency + num_bytes / self._link_bandwidth
            if self.injector is not None and self.injector.link_penalty != 1.0:
                # A degraded cluster link stretches the whole transfer
                # (latency and bandwidth share the impaired fabric).
                delay *= self.injector.link_penalty
            self.transfers += 1
            self.transfer_bytes += num_bytes
            # Same-batch handoffs see the reservation they just implied, so
            # a burst spreads across targets instead of piling onto one.
            headrooms[target_id] -= (
                request.effective_input_len + request.generation_len
            )
            loop.schedule(
                now + delay,
                self._landing(serving_request, source, target, now + delay),
            )

    def _landing(
        self,
        serving_request: ServingRequest,
        source: EngineCore,
        target: EngineCore,
        land_time: float,
    ):
        # Crash epochs captured at launch: a bump before landing means the
        # shard died while the blocks were in flight.
        source_epoch = source.crash_epoch
        target_epoch = target.crash_epoch

        def land() -> tuple[int, ...]:
            if source.crash_epoch != source_epoch:
                # The source died mid-transfer: the blocks being read died
                # with it, and crash teardown already released its whole
                # KV residency — the held reservation included — so no
                # release happens here (releasing again would double-free).
                self.transfers_lost += 1
                source.fail_migrated(serving_request, land_time)
                return ()
            if target.crash_epoch != target_epoch or target.down:
                # The target became unavailable before the transfer landed
                # (crashed, or crashed and is still reloading): the
                # transfer aborts and the source's held reservation is
                # released exactly once, here — hashed prompt blocks drop
                # into the source's prefix cache, private tails free.
                self.transfers_lost += 1
                source.release_migrated(serving_request)
                source.fail_migrated(serving_request, land_time)
                return (source.shard_id,)
            # Accept on the target before releasing the source: mid-flight
            # the blocks exist on both ends, never neither.
            target.accept_migrated(serving_request)
            source.release_migrated(serving_request)
            return (source.shard_id, target.shard_id)

        return land
