"""End-to-end inference systems built on the schedules and the optimizer.

Each system couples a policy-selection strategy with a decode schedule and a
prefill model, and reports the paper's metric — generation throughput =
generated tokens / (prefill time + decode time) — for a workload:

* :class:`MoELightningSystem` — HRM-driven policy search + CGOPipe
  (``padded=True`` gives the MoE-Lightning(p) variant used for
  like-for-like comparisons against FlexGen).
* :class:`FlexGenSystem` — request padding, GPU attention with KV swapping
  (or synchronous CPU attention for FlexGen(c)), monolithic weight
  transfers, and either FlexGen's own conservative policy heuristic or a
  policy produced by our optimizer (the Table 5 ablation).
* :class:`DeepSpeedZeroSystem` — ZeRO-Inference-style layer streaming with
  whole-batch kernels and a GPU-resident KV cache.
"""

from repro.systems.base import OffloadingSystem, SystemResult
from repro.systems.moe_lightning import MoELightningSystem
from repro.systems.flexgen_system import FlexGenSystem
from repro.systems.deepspeed_system import DeepSpeedZeroSystem

SYSTEM_REGISTRY = {
    "moe-lightning": MoELightningSystem,
    "flexgen": FlexGenSystem,
    "deepspeed": DeepSpeedZeroSystem,
}

__all__ = [
    "OffloadingSystem",
    "SystemResult",
    "MoELightningSystem",
    "FlexGenSystem",
    "DeepSpeedZeroSystem",
    "SYSTEM_REGISTRY",
]
