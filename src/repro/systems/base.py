"""Common machinery for end-to-end offloading inference systems."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.cluster.partition import PartitionPlan
from repro.cluster.spec import ClusterSpec
from repro.core.memory_model import MemoryModel, PartitionedMemoryModel
from repro.core.performance_model import (
    EfficiencyModel,
    PartitionedPerformanceModel,
    PerformanceModel,
)
from repro.core.policy import Policy
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.schedules.base import PipelineSchedule, StepTiming
from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class SystemResult:
    """End-to-end result of running one workload on one system."""

    system: str
    model: str
    hardware: str
    workload: str
    policy: Policy
    prefill_time: float
    decode_time: float
    tokens_generated: int
    padded: bool
    step_timing: StepTiming | None = None
    num_shards: int = 1

    @property
    def total_time(self) -> float:
        """Prefill plus decode time for one full batch."""
        return self.prefill_time + self.decode_time

    @property
    def generation_throughput(self) -> float:
        """Generated tokens per second including prefill (the paper's metric)."""
        if self.total_time <= 0:
            return 0.0
        return self.tokens_generated / self.total_time

    @property
    def decode_throughput(self) -> float:
        """Generated tokens per second over decode time only."""
        if self.decode_time <= 0:
            return 0.0
        return self.tokens_generated / self.decode_time

    def as_row(self) -> dict[str, object]:
        """Flat dictionary used by experiment report tables."""
        return {
            "system": self.system,
            "model": self.model,
            "hardware": self.hardware,
            "workload": self.workload,
            "num_shards": self.num_shards,
            "throughput": self.generation_throughput,
            "decode_throughput": self.decode_throughput,
            "prefill_time": self.prefill_time,
            "decode_time": self.decode_time,
            "batch_size": self.policy.batch_size,
            "micro_batch_size": self.policy.micro_batch_size,
            "weights_gpu_ratio": self.policy.weights_gpu_ratio,
            "kv_cache_gpu_ratio": self.policy.kv_cache_gpu_ratio,
            "attention_on_gpu": self.policy.attention_on_gpu,
        }


class OffloadingSystem(abc.ABC):
    """Base class: policy selection + prefill model + decode schedule."""

    #: Registry / report name; subclasses override.
    name: str = "base"
    #: Whether the system pads every request to the batch's maximum prompt.
    padded: bool = True

    def __init__(
        self,
        model: ModelConfig,
        hardware: HardwareSpec | None = None,
        efficiency: EfficiencyModel | None = None,
        max_sim_layers: int | None = 8,
        decode_samples: int = 3,
        cluster: ClusterSpec | None = None,
        partition: PartitionPlan | None = None,
    ) -> None:
        """Build a system on one node or on a cluster of devices.

        The single-``hardware`` form is unchanged and remains the default.
        Passing a ``cluster`` instead switches the system onto the
        shard-aware path: ``hardware`` defaults to the cluster's aggregate
        view, ``partition`` to full tensor parallelism across the devices,
        and the memory / performance models to their partitioned variants.
        A 1-device cluster is exactly equivalent to passing its node as
        ``hardware``.
        """
        require_positive_int("decode_samples", decode_samples)
        if partition is not None:
            if cluster is not None and partition.cluster != cluster:
                raise ConfigurationError(
                    "partition.cluster does not match the cluster argument"
                )
            cluster = partition.cluster
        elif cluster is not None and not cluster.is_trivial:
            partition = PartitionPlan(cluster=cluster, tp_size=cluster.num_devices)
        if hardware is None:
            if cluster is None:
                raise ConfigurationError(
                    "either hardware or cluster must be provided"
                )
            hardware = cluster.aggregate_hardware()
        if partition is not None and partition.is_trivial:
            partition = None
        if partition is not None:
            partition.validate_model(model)
        self.model = model
        self.hardware = hardware
        self.cluster = cluster
        self.partition = partition
        self.efficiency = efficiency or EfficiencyModel()
        self.max_sim_layers = max_sim_layers
        self.decode_samples = decode_samples

    @property
    def num_shards(self) -> int:
        """Number of model shards this system executes across."""
        return self.partition.num_shards if self.partition is not None else 1

    # ------------------------------------------------------------------
    # Per-device rebinding (heterogeneous serving shards)
    # ------------------------------------------------------------------
    def _clone_kwargs(self) -> dict:
        """Subclass-specific constructor kwargs preserved by :meth:`with_hardware`."""
        return {}

    def with_hardware(self, hardware: HardwareSpec) -> "OffloadingSystem":
        """The same system re-priced on a different (single) device.

        Heterogeneous serving builds one backend per shard so each
        :class:`~repro.serving.server.EngineCore` prices steps and KV
        budgets against its *own* device's roofline and memory, not one
        shared profile.  Cluster/partition context is intentionally
        dropped: the result describes exactly one device.
        """
        return type(self)(
            self.model,
            hardware,
            efficiency=self.efficiency,
            max_sim_layers=self.max_sim_layers,
            decode_samples=self.decode_samples,
            **self._clone_kwargs(),
        )

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def select_policy(self, workload: WorkloadSpec) -> Policy:
        """Choose the policy this system would run ``workload`` with."""

    @abc.abstractmethod
    def make_schedule(self, policy: Policy) -> PipelineSchedule:
        """Instantiate the decode schedule used for ``policy``."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def performance_model(self, workload: WorkloadSpec) -> PerformanceModel:
        """The analytical model used for prefill and sanity estimates.

        Partitioned systems get the cluster-aware variant, which adds the
        partition plan's collective-communication costs to the roofline.
        """
        if self.partition is not None:
            return PartitionedPerformanceModel(
                model=self.model,
                hardware=self.hardware,
                workload=workload,
                efficiency=self.efficiency,
                padded=self.padded,
                plan=self.partition,
            )
        return PerformanceModel(
            model=self.model,
            hardware=self.hardware,
            workload=workload,
            efficiency=self.efficiency,
            padded=self.padded,
        )

    def memory_model(self, workload: WorkloadSpec) -> MemoryModel:
        """The memory-constraint model for this system's padding setting.

        Partitioned systems are checked per shard against per-device
        capacity rather than in aggregate.
        """
        if self.partition is not None:
            return PartitionedMemoryModel(
                model=self.model,
                hardware=self.hardware,
                workload=workload,
                padded=self.padded,
                plan=self.partition,
            )
        return MemoryModel(
            model=self.model,
            hardware=self.hardware,
            workload=workload,
            padded=self.padded,
        )

    def effective_prompt_len(self, workload: WorkloadSpec) -> int:
        """Prompt length charged per request under this system's padding."""
        return workload.effective_prompt_len(self.padded)

    # ------------------------------------------------------------------
    # End-to-end run
    # ------------------------------------------------------------------
    def run(
        self,
        workload: WorkloadSpec,
        policy: Policy | None = None,
        simulate: bool = True,
    ) -> SystemResult:
        """Run ``workload`` end-to-end and return throughput.

        ``simulate=True`` (the default) obtains the decode time from the
        discrete-event simulation of this system's schedule; ``False`` falls
        back to the analytical performance model, which is faster and useful
        for wide parameter sweeps.
        """
        chosen = policy or self.select_policy(workload)
        self.memory_model(workload).check(chosen)
        performance = self.performance_model(workload)
        prefill = performance.prefill_time(chosen)
        prompt = self.effective_prompt_len(workload)

        step_timing: StepTiming | None = None
        if simulate:
            schedule = self.make_schedule(chosen)
            decode = schedule.decode_time(
                chosen,
                start_context=prompt,
                generation_len=workload.generation_len,
                num_samples=self.decode_samples,
            )
            mid_context = prompt + max(1, workload.generation_len // 2)
            step_timing = schedule.step_timing(chosen, mid_context)
            if isinstance(performance, PartitionedPerformanceModel):
                # The schedule simulators are single-node; charge the
                # partition plan's per-step collectives on top.
                decode += (
                    performance.collective_decode_step_time(chosen)
                    * workload.generation_len
                )
        else:
            decode = performance.decode_time(chosen)

        tokens = chosen.batch_size * workload.generation_len
        return SystemResult(
            system=self.name,
            model=self.model.name,
            hardware=self.hardware.name,
            workload=workload.name,
            policy=chosen,
            prefill_time=prefill,
            decode_time=decode,
            tokens_generated=tokens,
            padded=self.padded,
            step_timing=step_timing,
            num_shards=self.num_shards,
        )
