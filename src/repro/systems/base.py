"""Common machinery for end-to-end offloading inference systems."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.memory_model import MemoryModel
from repro.core.performance_model import EfficiencyModel, PerformanceModel
from repro.core.policy import Policy
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.schedules.base import PipelineSchedule, StepTiming
from repro.utils.validation import require_positive_int
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class SystemResult:
    """End-to-end result of running one workload on one system."""

    system: str
    model: str
    hardware: str
    workload: str
    policy: Policy
    prefill_time: float
    decode_time: float
    tokens_generated: int
    padded: bool
    step_timing: StepTiming | None = None

    @property
    def total_time(self) -> float:
        """Prefill plus decode time for one full batch."""
        return self.prefill_time + self.decode_time

    @property
    def generation_throughput(self) -> float:
        """Generated tokens per second including prefill (the paper's metric)."""
        if self.total_time <= 0:
            return 0.0
        return self.tokens_generated / self.total_time

    @property
    def decode_throughput(self) -> float:
        """Generated tokens per second over decode time only."""
        if self.decode_time <= 0:
            return 0.0
        return self.tokens_generated / self.decode_time

    def as_row(self) -> dict[str, object]:
        """Flat dictionary used by experiment report tables."""
        return {
            "system": self.system,
            "model": self.model,
            "hardware": self.hardware,
            "workload": self.workload,
            "throughput": self.generation_throughput,
            "decode_throughput": self.decode_throughput,
            "prefill_time": self.prefill_time,
            "decode_time": self.decode_time,
            "batch_size": self.policy.batch_size,
            "micro_batch_size": self.policy.micro_batch_size,
            "weights_gpu_ratio": self.policy.weights_gpu_ratio,
            "kv_cache_gpu_ratio": self.policy.kv_cache_gpu_ratio,
            "attention_on_gpu": self.policy.attention_on_gpu,
        }


class OffloadingSystem(abc.ABC):
    """Base class: policy selection + prefill model + decode schedule."""

    #: Registry / report name; subclasses override.
    name: str = "base"
    #: Whether the system pads every request to the batch's maximum prompt.
    padded: bool = True

    def __init__(
        self,
        model: ModelConfig,
        hardware: HardwareSpec,
        efficiency: EfficiencyModel | None = None,
        max_sim_layers: int | None = 8,
        decode_samples: int = 3,
    ) -> None:
        require_positive_int("decode_samples", decode_samples)
        self.model = model
        self.hardware = hardware
        self.efficiency = efficiency or EfficiencyModel()
        self.max_sim_layers = max_sim_layers
        self.decode_samples = decode_samples

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def select_policy(self, workload: WorkloadSpec) -> Policy:
        """Choose the policy this system would run ``workload`` with."""

    @abc.abstractmethod
    def make_schedule(self, policy: Policy) -> PipelineSchedule:
        """Instantiate the decode schedule used for ``policy``."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def performance_model(self, workload: WorkloadSpec) -> PerformanceModel:
        """The analytical model used for prefill and sanity estimates."""
        return PerformanceModel(
            model=self.model,
            hardware=self.hardware,
            workload=workload,
            efficiency=self.efficiency,
            padded=self.padded,
        )

    def memory_model(self, workload: WorkloadSpec) -> MemoryModel:
        """The memory-constraint model for this system's padding setting."""
        return MemoryModel(
            model=self.model,
            hardware=self.hardware,
            workload=workload,
            padded=self.padded,
        )

    def effective_prompt_len(self, workload: WorkloadSpec) -> int:
        """Prompt length charged per request under this system's padding."""
        return workload.effective_prompt_len(self.padded)

    # ------------------------------------------------------------------
    # End-to-end run
    # ------------------------------------------------------------------
    def run(
        self,
        workload: WorkloadSpec,
        policy: Policy | None = None,
        simulate: bool = True,
    ) -> SystemResult:
        """Run ``workload`` end-to-end and return throughput.

        ``simulate=True`` (the default) obtains the decode time from the
        discrete-event simulation of this system's schedule; ``False`` falls
        back to the analytical performance model, which is faster and useful
        for wide parameter sweeps.
        """
        chosen = policy or self.select_policy(workload)
        self.memory_model(workload).check(chosen)
        performance = self.performance_model(workload)
        prefill = performance.prefill_time(chosen)
        prompt = self.effective_prompt_len(workload)

        step_timing: StepTiming | None = None
        if simulate:
            schedule = self.make_schedule(chosen)
            decode = schedule.decode_time(
                chosen,
                start_context=prompt,
                generation_len=workload.generation_len,
                num_samples=self.decode_samples,
            )
            mid_context = prompt + max(1, workload.generation_len // 2)
            step_timing = schedule.step_timing(chosen, mid_context)
        else:
            decode = performance.decode_time(chosen)

        tokens = chosen.batch_size * workload.generation_len
        return SystemResult(
            system=self.name,
            model=self.model.name,
            hardware=self.hardware.name,
            workload=workload.name,
            policy=chosen,
            prefill_time=prefill,
            decode_time=decode,
            tokens_generated=tokens,
            padded=self.padded,
            step_timing=step_timing,
        )
