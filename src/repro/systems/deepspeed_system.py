"""DeepSpeed ZeRO-Inference baseline.

ZeRO-Inference pins the model weights in CPU memory and streams them to the
GPU layer by layer.  It does not micro-batch (the whole batch is one kernel
launch) and keeps the KV cache in GPU memory, so its batch size — and hence
the amortisation of the enormous weight traffic — is capped by GPU memory.
That is why DeepSpeed's throughput in the paper is weight-transfer bound at
small batch sizes (Table 4 reports ``N/μ = 1`` with batch sizes around 100).
"""

from __future__ import annotations

from repro.core.policy import Policy
from repro.schedules.base import PipelineSchedule
from repro.schedules.deepspeed import DeepSpeedSchedule
from repro.systems.base import OffloadingSystem
from repro.utils.errors import InfeasiblePolicyError
from repro.workloads.spec import WorkloadSpec


class DeepSpeedZeroSystem(OffloadingSystem):
    """DeepSpeed ZeRO-Inference-style layer streaming."""

    name = "deepspeed"
    padded = True

    def select_policy(self, workload: WorkloadSpec) -> Policy:
        """Largest whole-batch policy whose GPU-resident KV cache still fits."""
        memory = self.memory_model(workload)

        def feasible(batch_size: int) -> bool:
            policy = Policy(
                batch_size=batch_size,
                micro_batch_size=batch_size,
                attention_on_gpu=True,
                ffn_on_gpu=True,
                weights_gpu_ratio=0.0,
                kv_cache_gpu_ratio=1.0,
            )
            return memory.is_feasible(policy)

        if not feasible(1):
            raise InfeasiblePolicyError(
                f"DeepSpeed cannot fit a single request of {workload.name} "
                f"on {self.hardware.name}"
            )
        low, high = 1, 2
        while high <= workload.num_requests and feasible(high):
            low, high = high, high * 2
        high = min(high, workload.num_requests)
        # Binary search the largest feasible batch in (low, high].
        while low < high:
            mid = (low + high + 1) // 2
            if feasible(mid):
                low = mid
            else:
                high = mid - 1
        return Policy(
            batch_size=low,
            micro_batch_size=low,
            attention_on_gpu=True,
            ffn_on_gpu=True,
            weights_gpu_ratio=0.0,
            kv_cache_gpu_ratio=1.0,
        )

    def make_schedule(self, policy: Policy) -> PipelineSchedule:
        """The layer-streaming schedule with whole-batch kernels."""
        return DeepSpeedSchedule(
            self.model,
            self.hardware,
            efficiency=self.efficiency,
            max_sim_layers=self.max_sim_layers,
        )
