"""FlexGen and FlexGen(c) baselines.

FlexGen pads every request in a batch to the maximum prompt length, runs
attention on the GPU by swapping each micro-batch's KV cache over PCIe
(schedule S4), and transfers weights as monolithic per-layer blobs.
FlexGen(c) switches to its synchronous CPU attention path (schedule S3).

Policy selection supports two modes:

* ``policy_mode="native"`` — a conservative heuristic that mimics FlexGen's
  own cost-model-driven choices: a small micro-batch sized by a fixed
  fraction of GPU memory at the padded prompt length, the largest batch the
  CPU-side KV cache allows, and whatever weight fraction still fits on the
  GPU.  This reproduces the "FlexGen w/ their policy" rows of Table 5 and
  the suboptimal small-μ behaviour of Fig. 1.
* ``policy_mode="hrm"`` — our HRM optimizer restricted to FlexGen's
  execution model (GPU attention, padding); this is "FlexGen w/ our policy".

Multi-GPU FlexGen uses pipeline parallelism, which within a single node
keeps several layers active at once and multiplies peak CPU memory pressure
(§5.3); we model that by charging the CPU-side KV budget ``tp_size`` times,
which is why FlexGen fails to scale from 2 to 4 GPUs in the reproduction as
in the paper.
"""

from __future__ import annotations

from repro.core.memory_model import MemoryModel
from repro.core.optimizer import PolicyOptimizer
from repro.core.policy import Policy
from repro.models.memory import (
    activation_bytes,
    model_weight_bytes,
)
from repro.schedules.base import PipelineSchedule
from repro.schedules.flexgen import FlexGenSchedule
from repro.schedules.flexgen_cpu import FlexGenCPUSchedule
from repro.systems.base import OffloadingSystem
from repro.utils.errors import ConfigurationError, InfeasiblePolicyError
from repro.workloads.spec import WorkloadSpec


class FlexGenSystem(OffloadingSystem):
    """FlexGen (GPU attention) / FlexGen(c) (CPU attention) baseline."""

    name = "flexgen"
    padded = True

    #: Fraction of GPU memory the native heuristic budgets for one
    #: micro-batch's prefill activations (FlexGen sizes μ conservatively).
    native_activation_fraction = 0.04

    def __init__(
        self,
        *args,
        cpu_attention: bool = False,
        policy_mode: str = "native",
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if policy_mode not in ("native", "hrm"):
            raise ConfigurationError(
                f"policy_mode must be 'native' or 'hrm', got {policy_mode!r}"
            )
        self.cpu_attention = cpu_attention
        self.policy_mode = policy_mode
        if cpu_attention:
            self.name = "flexgen(c)"

    def _clone_kwargs(self) -> dict:
        return {
            "cpu_attention": self.cpu_attention,
            "policy_mode": self.policy_mode,
        }

    # ------------------------------------------------------------------
    # Pipeline-parallel CPU memory pressure
    # ------------------------------------------------------------------
    def memory_model(self, workload: WorkloadSpec) -> MemoryModel:
        """Pipeline parallelism shrinks the CPU-side KV/working-set headroom.

        With ``tp_size`` GPUs FlexGen runs pipeline parallelism, keeping that
        many layers active at once and multiplying the peak CPU memory used
        by in-flight activations and KV working sets (§5.3).  The weights are
        still stored once, so only the headroom above the weights is divided.

        A cluster-built system keeps the partitioned (per-device) model from
        the base class: an explicit partition plan supersedes the aggregate
        pipeline-parallel approximation.
        """
        base = super().memory_model(workload)
        if self.partition is not None or self.hardware.tp_size <= 1:
            return base
        weights = model_weight_bytes(self.model)
        headroom = max(0.0, self.hardware.cpu_memory - weights)
        # Two pipeline stages' working sets are live at any time on the host
        # (the saturated-phase overlap); weights are stored only once.
        penalty = min(self.hardware.tp_size, 2)
        shrunk_hardware = self.hardware.with_cpu_memory(
            max(1.0, weights + headroom / penalty)
        )
        return MemoryModel(
            model=self.model,
            hardware=shrunk_hardware,
            workload=workload,
            padded=self.padded,
        )

    # ------------------------------------------------------------------
    # Policy selection
    # ------------------------------------------------------------------
    def _native_micro_batch(self, workload: WorkloadSpec) -> int:
        """FlexGen-style conservative micro-batch size."""
        prompt = self.effective_prompt_len(workload)
        budget = self.hardware.gpu_memory * self.native_activation_fraction
        micro_batch = 1
        while True:
            candidate = micro_batch * 2
            if activation_bytes(self.model, candidate * prompt) > budget:
                break
            micro_batch = candidate
            if micro_batch >= 512:
                break
        return micro_batch

    def _native_policy(self, workload: WorkloadSpec) -> Policy:
        """Mimic FlexGen's own policy: small μ, CPU-memory-bound N."""
        memory = self.memory_model(workload)
        micro_batch = self._native_micro_batch(workload)
        probe = Policy(
            batch_size=micro_batch,
            micro_batch_size=micro_batch,
            attention_on_gpu=not self.cpu_attention,
            ffn_on_gpu=True,
        )
        max_batch = min(memory.max_batch_size(probe), workload.num_requests)
        if max_batch < micro_batch:
            raise InfeasiblePolicyError(
                f"FlexGen cannot fit even one micro-batch of {micro_batch} "
                f"requests for {workload.name} on {self.hardware.name}"
            )
        batch_size = (max_batch // micro_batch) * micro_batch
        policy = Policy(
            batch_size=batch_size,
            micro_batch_size=micro_batch,
            attention_on_gpu=not self.cpu_attention,
            ffn_on_gpu=True,
        )
        return policy.with_weights_gpu_ratio(memory.max_weights_gpu_ratio(policy))

    def _hrm_policy(self, workload: WorkloadSpec) -> Policy:
        """Our optimizer constrained to FlexGen's execution model."""
        optimizer = PolicyOptimizer(
            model=self.model,
            hardware=self.hardware,
            workload=workload,
            efficiency=self.efficiency,
            padded=True,
            allow_cpu_attention=self.cpu_attention,
            allow_gpu_attention=not self.cpu_attention,
            partition=self.partition,
        )
        return optimizer.search().policy

    def select_policy(self, workload: WorkloadSpec) -> Policy:
        """Pick the policy according to the configured ``policy_mode``."""
        if self.policy_mode == "native":
            return self._native_policy(workload)
        return self._hrm_policy(workload)

    def make_schedule(self, policy: Policy) -> PipelineSchedule:
        """S3 when CPU attention is enabled, S4 otherwise."""
        schedule_cls = FlexGenCPUSchedule if self.cpu_attention else FlexGenSchedule
        return schedule_cls(
            self.model,
            self.hardware,
            efficiency=self.efficiency,
            max_sim_layers=self.max_sim_layers,
        )
