"""MoE-Lightning: HRM-driven policy search + CGOPipe execution.

``padded=False`` (the default) is the full system with variable-length
request batching (Algorithm 2); ``padded=True`` is MoE-Lightning(p), the
variant that pads every request to the batch maximum so it can be compared
like-for-like against FlexGen.

The policy optimizer searches both attention placements; in the paper's
memory-constrained settings it always lands on CPU attention + GPU FFN, in
which case decode runs under CGOPipe.  If a hardware configuration makes GPU
attention preferable (§6.3), the system falls back to the S4-style schedule,
exactly as the paper prescribes ("when A_g = 1, MoE-Lightning adopts S4").
"""

from __future__ import annotations

from repro.core.optimizer import PolicyOptimizer
from repro.core.policy import Policy
from repro.schedules.base import PipelineSchedule
from repro.schedules.cgopipe import CGOPipeSchedule
from repro.schedules.flexgen import FlexGenSchedule
from repro.systems.base import OffloadingSystem
from repro.workloads.spec import WorkloadSpec


class MoELightningSystem(OffloadingSystem):
    """The paper's system (CGOPipe + HRM policy optimizer)."""

    name = "moe-lightning"

    def __init__(self, *args, padded: bool = False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.padded = padded
        if padded:
            self.name = "moe-lightning(p)"

    def _clone_kwargs(self) -> dict:
        return {"padded": self.padded}

    def optimizer(self, workload: WorkloadSpec) -> PolicyOptimizer:
        """The HRM-based policy optimizer configured for this system.

        On a cluster, the partition plan flows into the optimizer so the
        search prunes on per-shard memory fit and scores candidates with
        collective costs included.
        """
        return PolicyOptimizer(
            model=self.model,
            hardware=self.hardware,
            workload=workload,
            efficiency=self.efficiency,
            padded=self.padded,
            allow_cpu_attention=True,
            allow_gpu_attention=True,
            partition=self.partition,
        )

    def select_policy(self, workload: WorkloadSpec) -> Policy:
        """Search the full policy space with the HRM performance model."""
        return self.optimizer(workload).search().policy

    def make_schedule(self, policy: Policy) -> PipelineSchedule:
        """CGOPipe for CPU attention, the S4 schedule for GPU attention."""
        schedule_cls = FlexGenSchedule if policy.attention_on_gpu else CGOPipeSchedule
        return schedule_cls(
            self.model,
            self.hardware,
            efficiency=self.efficiency,
            max_sim_layers=self.max_sim_layers,
        )
