"""Shared utilities: units, errors, validation and text rendering helpers."""

from repro.utils.errors import (
    ConfigurationError,
    InfeasiblePolicyError,
    ReproError,
    SimulationError,
)
from repro.utils.units import (
    GB,
    GIGA,
    KB,
    MB,
    TERA,
    bytes_to_gib,
    bytes_to_mib,
    format_bytes,
    format_flops,
    format_seconds,
    format_throughput,
    gib,
    mib,
)

__all__ = [
    "GB",
    "GIGA",
    "KB",
    "MB",
    "TERA",
    "ReproError",
    "ConfigurationError",
    "InfeasiblePolicyError",
    "SimulationError",
    "bytes_to_gib",
    "bytes_to_mib",
    "format_bytes",
    "format_flops",
    "format_seconds",
    "format_throughput",
    "gib",
    "mib",
]
