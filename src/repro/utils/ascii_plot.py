"""Minimal ASCII rendering of series data for terminal-friendly "figures".

The benchmark harnesses regenerate the paper's figures as *data series*
(lists of (x, y) points).  For quick eyeballing without matplotlib, this
module renders a log-log or linear scatter of those series on a character
grid.  It is intentionally simple; the numeric series themselves are the
primary artefact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

#: Eight-level block characters for sparklines, lowest to highest.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render ``values`` as a one-line block-character sparkline.

    ``width`` resamples the series to at most that many characters (each
    character shows the mean of its bucket); ``None`` renders one character
    per value.  A constant series renders at the lowest level.
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    if width is not None and width > 0 and len(series) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(series) // width
            hi = max(lo + 1, (i + 1) * len(series) // width)
            bucket = series[lo:hi]
            bucketed.append(sum(bucket) / len(bucket))
        series = bucketed
    low, high = min(series), max(series)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(series)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int(round((v - low) / span * top))] for v in series
    )


@dataclass
class Series:
    """A named sequence of (x, y) points to plot."""

    name: str
    xs: Sequence[float]
    ys: Sequence[float]
    marker: str = "*"

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.name!r}: xs ({len(self.xs)}) and ys "
                f"({len(self.ys)}) must have the same length"
            )


@dataclass
class AsciiPlot:
    """Collects series and renders them onto a character grid."""

    width: int = 72
    height: int = 20
    log_x: bool = False
    log_y: bool = False
    title: str = ""
    series: list[Series] = field(default_factory=list)

    def add_series(
        self, name: str, xs: Sequence[float], ys: Sequence[float], marker: str = "*"
    ) -> None:
        """Register a series; markers identify series in the legend."""
        self.series.append(Series(name=name, xs=list(xs), ys=list(ys), marker=marker))

    def _transform(self, value: float, log: bool) -> float:
        if log:
            return math.log10(max(value, 1e-300))
        return value

    def render(self) -> str:
        """Render all registered series onto the grid and return the text."""
        points: list[tuple[float, float, str]] = []
        for series in self.series:
            for x, y in zip(series.xs, series.ys):
                if x is None or y is None:
                    continue
                if (self.log_x and x <= 0) or (self.log_y and y <= 0):
                    continue
                points.append(
                    (
                        self._transform(float(x), self.log_x),
                        self._transform(float(y), self.log_y),
                        series.marker,
                    )
                )
        if not points:
            return f"{self.title}\n(no points)"

        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        x_span = (x_max - x_min) or 1.0
        y_span = (y_max - y_min) or 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        for x, y, marker in points:
            col = int(round((x - x_min) / x_span * (self.width - 1)))
            row = int(round((y - y_min) / y_span * (self.height - 1)))
            grid[self.height - 1 - row][col] = marker

        lines = []
        if self.title:
            lines.append(self.title)
        lines.extend("|" + "".join(row) for row in grid)
        lines.append("+" + "-" * self.width)
        legend = "  ".join(f"{s.marker}={s.name}" for s in self.series)
        lines.append(legend)
        return "\n".join(lines)
