"""Exception hierarchy for the MoE-Lightning reproduction.

All library-specific exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish configuration mistakes from runtime simulation failures.
"""


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A model, hardware or workload configuration is invalid.

    Raised during construction/validation of configuration dataclasses, e.g.
    a negative hidden dimension or a top-k larger than the number of experts.
    """


class InfeasiblePolicyError(ReproError):
    """A policy violates the GPU or CPU memory constraints.

    The policy optimizer raises this when the search space contains no
    feasible point (for example, the model does not fit in CPU + GPU memory),
    and the performance model raises it when asked to evaluate a policy that
    does not fit.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state.

    Examples: a task was scheduled on a busy exclusive channel, an event was
    emitted in the past, or a dependency cycle prevented progress.
    """


class ScheduleError(ReproError):
    """A pipeline schedule produced an invalid task graph."""


class MemoryManagerError(ReproError):
    """Paged memory allocation failed (out of pages, double free, bad page)."""
