"""Plain-text table rendering for experiment reports.

The experiment harnesses print paper-style tables to stdout (and to
``EXPERIMENTS.md``).  This module provides a dependency-free fixed-width
table renderer plus a tiny helper for aligning numbers.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value: object, precision: int = 2) -> str:
    """Render a single table cell.

    Floats are rounded to ``precision`` decimal places; everything else uses
    ``str``.  ``None`` renders as an em-dash, matching how the paper marks
    missing baselines.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have the same length as ``headers``.
    precision:
        Number of decimals used for float cells.
    title:
        Optional title printed above the table.
    """
    str_rows = [[format_cell(cell, precision) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(str(h)) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(separator))
    lines.append(render_row([str(h) for h in headers]))
    lines.append(separator)
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
) -> str:
    """Render a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    str_rows = [[format_cell(cell, precision) for cell in row] for row in rows]
    header_line = "| " + " | ".join(str(h) for h in headers) + " |"
    divider = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(row) + " |" for row in str_rows]
    return "\n".join([header_line, divider, *body])
