"""Unit constants and human-readable formatting helpers.

The performance model works internally in base SI units: bytes, FLOPs,
seconds, bytes/second and FLOPs/second.  These helpers keep conversions in
one place so hardware specs can be written naturally (``24 * GB``,
``242 * TERA``) and reports can render values the way the paper does
(GB, GFLOPS/s, tokens/s).
"""

from __future__ import annotations

# Binary-ish decimal units.  The paper (and GPU marketing) uses decimal
# gigabytes for memory sizes and bandwidths, so we follow that convention.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Prefixes for FLOP counts / rates.
KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000
TERA = 1_000_000_000_000

# Binary units, used only when talking about "GiB of GPU memory" explicitly.
KIB = 1024
MIB = 1024**2
GIB = 1024**3


def gib(value: float) -> float:
    """Convert a value expressed in GiB into bytes."""
    return float(value) * GIB


def mib(value: float) -> float:
    """Convert a value expressed in MiB into bytes."""
    return float(value) * MIB


def bytes_to_gib(num_bytes: float) -> float:
    """Convert bytes to GiB."""
    return float(num_bytes) / GIB


def bytes_to_mib(num_bytes: float) -> float:
    """Convert bytes to MiB."""
    return float(num_bytes) / MIB


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with an adaptive unit (B, KB, MB, GB, TB)."""
    value = float(num_bytes)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(value) >= unit:
            return f"{value / unit:.2f} {name}"
    return f"{value:.0f} B"


def format_flops(flops: float) -> str:
    """Render a FLOP count with an adaptive unit (FLOP, GFLOP, TFLOP)."""
    value = float(flops)
    if abs(value) >= TERA:
        return f"{value / TERA:.2f} TFLOP"
    if abs(value) >= GIGA:
        return f"{value / GIGA:.2f} GFLOP"
    if abs(value) >= MEGA:
        return f"{value / MEGA:.2f} MFLOP"
    return f"{value:.0f} FLOP"


def format_seconds(seconds: float) -> str:
    """Render a duration with an adaptive unit (s, ms, us)."""
    value = float(seconds)
    if abs(value) >= 1.0:
        return f"{value:.3f} s"
    if abs(value) >= 1e-3:
        return f"{value * 1e3:.3f} ms"
    return f"{value * 1e6:.1f} us"


def format_throughput(tokens_per_second: float) -> str:
    """Render a generation throughput the way the paper reports it."""
    return f"{tokens_per_second:.2f} tokens/s"
