"""Small validation helpers used by configuration dataclasses.

Each helper raises :class:`~repro.utils.errors.ConfigurationError` with a
message that names the offending field, which keeps the ``__post_init__``
methods of the configuration dataclasses short and uniform.
"""

from __future__ import annotations

from typing import Iterable

from repro.utils.errors import ConfigurationError


def require_positive(name: str, value: float) -> float:
    """Ensure ``value`` is strictly positive, returning it for chaining."""
    if value is None or not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Ensure ``value`` is >= 0, returning it for chaining."""
    if value is None or value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_positive_int(name: str, value: int) -> int:
    """Ensure ``value`` is a strictly positive integer."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive int, got {value!r}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    if value is None or not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def require_in(name: str, value: object, allowed: Iterable[object]) -> object:
    """Ensure ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed}, got {value!r}")
    return value


def require_divides(name: str, divisor: int, dividend: int) -> None:
    """Ensure ``divisor`` divides ``dividend`` exactly."""
    if divisor <= 0 or dividend % divisor != 0:
        raise ConfigurationError(
            f"{name}: expected {divisor} to divide {dividend} exactly"
        )
