"""Workloads: request datatypes, synthetic generators and batching.

Encodes the "Workload Configurations, W" block of Table 1 (average prompt
length ``s`` and generation length ``n``), the three evaluation workloads of
Table 3 (MTBench, HELM synthetic reasoning, HELM summarization) as synthetic
prompt-length distributions, and the request-batching procedure of
Algorithm 2 used to form balanced micro-batches from variable-length
requests.
"""

from repro.workloads.request import Batch, MicroBatch, Request
from repro.workloads.spec import ChatWorkloadSpec, WorkloadSpec
from repro.workloads.generators import (
    WORKLOAD_REGISTRY,
    chat,
    generate_chat_requests,
    generate_requests,
    get_workload,
    list_workloads,
    mtbench,
    register_workload,
    summarization,
    synthetic_reasoning,
    uniform_workload,
)
from repro.workloads.batching import BatchingResult, batch_requests, pad_requests

__all__ = [
    "Batch",
    "MicroBatch",
    "Request",
    "ChatWorkloadSpec",
    "WorkloadSpec",
    "WORKLOAD_REGISTRY",
    "chat",
    "generate_chat_requests",
    "generate_requests",
    "get_workload",
    "list_workloads",
    "mtbench",
    "register_workload",
    "summarization",
    "synthetic_reasoning",
    "uniform_workload",
    "BatchingResult",
    "batch_requests",
    "pad_requests",
]
