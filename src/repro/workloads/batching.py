"""Request batching (paper Algorithm 2) and request padding.

Algorithm 2 assigns variable-length requests to ``n_ub`` micro-batches so
that token counts are balanced: requests are sorted by descending prompt
length and each is placed into the micro-batch with the fewest prompt
tokens, unless doing so would overflow the per-micro-batch KV-cache budget
(in which case the request is aborted to the next batch).  A micro-batch
that reaches the target size ``ubs`` is sealed and removed from the open
partitions.

``pad_requests`` implements the padding behaviour of FlexGen and
MoE-Lightning(p): every request in a batch is padded to the batch's maximum
prompt length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.utils.validation import require_non_negative, require_positive_int
from repro.workloads.request import Batch, MicroBatch, Request


@dataclass
class BatchingResult:
    """Output of :func:`batch_requests`.

    ``micro_batches`` are the sealed micro-batches (plus any non-empty open
    partitions flushed at the end); ``aborted`` holds requests that could not
    fit the cache budget and should be carried to the next batch, in the
    order they were rejected.
    """

    micro_batches: list[MicroBatch] = field(default_factory=list)
    aborted: list[Request] = field(default_factory=list)

    @property
    def batch(self) -> Batch:
        """The accepted micro-batches wrapped as a :class:`Batch`."""
        return Batch(micro_batches=self.micro_batches)

    @property
    def num_accepted(self) -> int:
        """Number of requests placed into micro-batches."""
        return sum(mb.size for mb in self.micro_batches)


def batch_requests(
    requests: Sequence[Request],
    num_micro_batches: int,
    micro_batch_size: int,
    generation_len: int,
    cache_size_tokens: float = float("inf"),
) -> BatchingResult:
    """Partition ``requests`` into balanced micro-batches (Algorithm 2).

    Parameters
    ----------
    requests:
        The request queue for this batch.
    num_micro_batches:
        ``n_ub`` — number of micro-batches to fill.
    micro_batch_size:
        ``ubs`` — maximum number of requests per micro-batch.
    generation_len:
        ``gen_len`` — tokens that will be generated per request; counted
        against the cache budget because the KV cache grows during decode.
    cache_size_tokens:
        ``cache_size`` — maximum KV-cache tokens a micro-batch may occupy at
        the end of generation.  Defaults to unlimited.
    """
    require_positive_int("num_micro_batches", num_micro_batches)
    require_positive_int("micro_batch_size", micro_batch_size)
    require_positive_int("generation_len", generation_len)
    require_non_negative("cache_size_tokens", cache_size_tokens)

    partitions: list[list[Request]] = [[] for _ in range(num_micro_batches)]
    partition_sums: list[int] = [0 for _ in range(num_micro_batches)]
    sealed: list[MicroBatch] = []
    aborted: list[Request] = []

    queue = sorted(requests, key=lambda req: req.input_len, reverse=True)
    for request in queue:
        if not partitions:
            aborted.append(request)
            continue
        idx = min(range(len(partitions)), key=lambda i: partition_sums[i])
        projected_prompt_tokens = partition_sums[idx] + request.input_len
        projected_cache = projected_prompt_tokens + (
            1 + len(partitions[idx])
        ) * generation_len
        if projected_cache > cache_size_tokens:
            aborted.append(request)
            continue
        partitions[idx].append(request)
        partition_sums[idx] += request.input_len
        if len(partitions[idx]) == micro_batch_size:
            sealed.append(
                MicroBatch(requests=partitions[idx], micro_batch_id=len(sealed))
            )
            partitions.pop(idx)
            partition_sums.pop(idx)

    for leftover in partitions:
        if leftover:
            sealed.append(MicroBatch(requests=leftover, micro_batch_id=len(sealed)))

    return BatchingResult(micro_batches=sealed, aborted=aborted)


def pad_requests(requests: Sequence[Request], pad_to: int | None = None) -> list[Request]:
    """Pad every request to ``pad_to`` (default: the longest prompt present).

    This models FlexGen's requirement that all requests in a batch share a
    prompt length, and MoE-Lightning(p)'s padded variant used for
    like-for-like comparisons.
    """
    if not requests:
        return []
    target = pad_to if pad_to is not None else max(req.input_len for req in requests)
    return [req.padded_to(max(target, req.input_len)) for req in requests]


def balance_report(result: BatchingResult) -> dict[str, float]:
    """Summary statistics about how balanced the produced micro-batches are."""
    token_counts = [mb.total_input_tokens for mb in result.micro_batches]
    sizes = [mb.size for mb in result.micro_batches]
    if not token_counts:
        return {
            "num_micro_batches": 0,
            "min_tokens": 0,
            "max_tokens": 0,
            "imbalance": 0.0,
            "min_size": 0,
            "max_size": 0,
        }
    max_tokens = max(token_counts)
    min_tokens = min(token_counts)
    return {
        "num_micro_batches": len(token_counts),
        "min_tokens": min_tokens,
        "max_tokens": max_tokens,
        "imbalance": (max_tokens - min_tokens) / max(max_tokens, 1),
        "min_size": min(sizes),
        "max_size": max(sizes),
    }
