"""Synthetic workload generators matching the paper's Table 3 statistics.

The paper evaluates on MTBench (avg prompt 77, max 418), HELM synthetic
reasoning (avg 242, max 256) and HELM summarization (avg 1693, max 1984).
Those datasets enter the evaluation only through their prompt-length
distributions, so we reproduce them with deterministic synthetic samplers:
a log-normal-ish distribution for MTBench (short questions with a long
tail) and tight near-maximum distributions for the two HELM tasks.

Every generator accepts a ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, Iterator

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int
from repro.workloads.request import Request
from repro.workloads.spec import ChatWorkloadSpec, WorkloadSpec

#: Synthetic vocabulary: token ids are drawn uniformly below this bound.
_VOCAB_SIZE = 32000

WORKLOAD_REGISTRY: Dict[str, Callable[..., WorkloadSpec]] = {}


def register_workload(name: str, factory: Callable[..., WorkloadSpec]) -> None:
    """Register a workload factory under ``name``."""
    key = name.lower()
    if key in WORKLOAD_REGISTRY:
        raise ConfigurationError(f"workload {name!r} is already registered")
    WORKLOAD_REGISTRY[key] = factory


def get_workload(name: str, **kwargs) -> WorkloadSpec:
    """Instantiate a registered workload by name."""
    key = name.lower()
    if key not in WORKLOAD_REGISTRY:
        known = ", ".join(sorted(WORKLOAD_REGISTRY))
        raise ConfigurationError(f"unknown workload {name!r}; known: {known}")
    return WORKLOAD_REGISTRY[key](**kwargs)


def list_workloads() -> list[str]:
    """Names of all registered workloads."""
    return sorted(WORKLOAD_REGISTRY)


# ----------------------------------------------------------------------
# Workload specifications (Table 3)
# ----------------------------------------------------------------------
def mtbench(generation_len: int = 128, num_requests: int = 8000) -> WorkloadSpec:
    """MTBench: avg prompt 77, max prompt 418 (Table 3)."""
    return WorkloadSpec(
        name="mtbench",
        avg_prompt_len=77,
        max_prompt_len=418,
        generation_len=generation_len,
        num_requests=num_requests,
    )


def synthetic_reasoning(
    generation_len: int = 50, num_requests: int = 4000
) -> WorkloadSpec:
    """HELM synthetic reasoning: avg prompt 242, max 256, gen len 50."""
    return WorkloadSpec(
        name="synthetic_reasoning",
        avg_prompt_len=242,
        max_prompt_len=256,
        generation_len=generation_len,
        num_requests=num_requests,
    )


def summarization(generation_len: int = 64, num_requests: int = 2000) -> WorkloadSpec:
    """HELM summarization: avg prompt 1693, max 1984, gen len 64."""
    return WorkloadSpec(
        name="summarization",
        avg_prompt_len=1693,
        max_prompt_len=1984,
        generation_len=generation_len,
        num_requests=num_requests,
    )


def uniform_workload(
    prompt_len: int = 512,
    generation_len: int = 32,
    num_requests: int = 1000,
    name: str = "uniform",
) -> WorkloadSpec:
    """A constant-prompt-length workload (used by the Fig. 10 sweep)."""
    return WorkloadSpec(
        name=name,
        avg_prompt_len=prompt_len,
        max_prompt_len=prompt_len,
        generation_len=generation_len,
        num_requests=num_requests,
    )


def chat(
    generation_len: int = 32,
    num_requests: int = 64,
    turns_per_session: int = 4,
    num_sessions: int | None = None,
    system_prompt_len: int = 64,
    user_turn_len: int = 32,
) -> ChatWorkloadSpec:
    """Multi-turn chat: shared system prompt + growing per-session history.

    Not a paper workload — it opens the scenario class the prefix cache is
    for.  Prompt lengths are deterministic per turn (only the token values
    vary with the seed), so the spec's average/maximum are exact.
    """
    require_positive_int("turns_per_session", turns_per_session)
    require_positive_int("num_requests", num_requests)
    if num_sessions is None:
        num_sessions = max(1, -(-num_requests // turns_per_session))
    lengths = [
        system_prompt_len + turn * (user_turn_len + generation_len) + user_turn_len
        for turn in range(turns_per_session)
    ]
    return ChatWorkloadSpec(
        name="chat",
        avg_prompt_len=max(1, round(sum(lengths) / len(lengths))),
        max_prompt_len=lengths[-1],
        generation_len=generation_len,
        num_requests=num_requests,
        num_sessions=num_sessions,
        turns_per_session=turns_per_session,
        system_prompt_len=system_prompt_len,
        user_turn_len=user_turn_len,
    )


register_workload("mtbench", mtbench)
register_workload("synthetic_reasoning", synthetic_reasoning)
register_workload("summarization", summarization)
register_workload("uniform", uniform_workload)
register_workload("chat", chat)


# ----------------------------------------------------------------------
# Request sampling
# ----------------------------------------------------------------------
def _sample_lengths(spec: WorkloadSpec, count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample prompt lengths whose mean/max track the workload spec.

    MTBench-like workloads (max far above mean) use a log-normal shape; the
    HELM tasks (max close to mean) use a narrow triangular distribution near
    the maximum.
    """
    spread = spec.max_prompt_len / spec.avg_prompt_len
    if spread > 1.5:
        # Long-tailed distribution: log-normal with the target mean, clipped.
        sigma = 0.6
        mu = np.log(spec.avg_prompt_len) - sigma**2 / 2
        lengths = rng.lognormal(mean=mu, sigma=sigma, size=count)
    else:
        # Tight distribution just below the maximum.
        low = max(1, 2 * spec.avg_prompt_len - spec.max_prompt_len)
        lengths = rng.triangular(
            left=low, mode=spec.avg_prompt_len, right=spec.max_prompt_len, size=count
        )
    lengths = np.clip(np.round(lengths), 1, spec.max_prompt_len).astype(int)
    return lengths


def generate_chat_requests(
    spec: ChatWorkloadSpec,
    count: int | None = None,
    seed: int = 0,
) -> list[Request]:
    """Materialise a multi-turn chat stream with real shared token prefixes.

    Every session's turn-``t`` prompt is the shared system prompt, the
    session's accumulated conversation (user turns plus the assistant
    replies synthesised for earlier turns) and a fresh user message; token
    values are deterministic in ``seed``.  Requests are emitted turn-major —
    every session's turn 0, then every session's turn 1, ... — so a
    session's turns arrive in order under any monotone arrival process.
    Streams longer than ``num_sessions * turns_per_session`` open additional
    sessions (which still share the system prompt).
    """
    count = count if count is not None else spec.num_requests
    require_positive_int("count", count)
    system_tokens = _chat_system_tokens(spec, seed)
    num_sessions = max(spec.num_sessions, -(-count // spec.turns_per_session))
    histories: list[tuple[int, ...]] = [system_tokens] * num_sessions
    session_rngs = [
        np.random.default_rng([seed, 0x5E55, session]) for session in range(num_sessions)
    ]
    requests: list[Request] = []
    for turn in range(spec.turns_per_session):
        for session in range(num_sessions):
            if len(requests) >= count:
                return requests
            rng = session_rngs[session]
            user = tuple(rng.integers(0, _VOCAB_SIZE, spec.user_turn_len).tolist())
            prompt = histories[session] + user
            requests.append(
                Request(
                    input_len=len(prompt),
                    generation_len=spec.generation_len,
                    session_id=session,
                    token_ids=prompt,
                )
            )
            assistant = tuple(
                rng.integers(0, _VOCAB_SIZE, spec.generation_len).tolist()
            )
            histories[session] = prompt + assistant
    return requests


def generate_requests(
    spec: WorkloadSpec,
    count: int | None = None,
    seed: int = 0,
) -> list[Request]:
    """Materialise ``count`` requests drawn from the workload distribution.

    The sample's maximum prompt length is forced to equal the spec's maximum
    (by assigning it to one request) so padding-based systems pay the same
    worst case the paper describes.  Chat workloads dispatch to
    :func:`generate_chat_requests`, whose per-turn lengths are deterministic.
    """
    if isinstance(spec, ChatWorkloadSpec):
        return generate_chat_requests(spec, count=count, seed=seed)
    count = count if count is not None else spec.num_requests
    require_positive_int("count", count)
    rng = np.random.default_rng(seed)
    lengths = _sample_lengths(spec, count, rng)
    if count > 1:
        lengths[0] = spec.max_prompt_len
    requests = [
        Request(input_len=int(length), generation_len=spec.generation_len)
        for length in lengths
    ]
    return requests


# ----------------------------------------------------------------------
# Columnar prefix identity (chat)
# ----------------------------------------------------------------------
#: Sessions hashed per chunk: bounds the transient token matrix to a few MB
#: regardless of stream length.
_HASH_CHUNK_SESSIONS = 2048


def _chat_system_tokens(spec: ChatWorkloadSpec, seed: int) -> tuple[int, ...]:
    """The shared system prompt — one draw, identical across sessions."""
    system_rng = np.random.default_rng([seed, 0xC047])
    return tuple(
        system_rng.integers(0, _VOCAB_SIZE, spec.system_prompt_len).tolist()
    )


def _resolve_chat_tokens(
    system_tokens: tuple[int, ...], seed: int, session: int, draw_count: int
) -> tuple[int, ...]:
    """Regenerate one chat prompt's token tuple on demand.

    A session's turn-``t`` prompt is the system prompt followed by the first
    ``t * (user + generation) + user`` values of the session RNG stream —
    drawing them in one batched call yields the same values as the object
    path's per-turn draws (numpy PCG64 output is call-shape independent).
    """
    rng = np.random.default_rng([seed, 0x5E55, session])
    return system_tokens + tuple(
        rng.integers(0, _VOCAB_SIZE, draw_count).tolist()
    )


def _hash_token_row_matrix(tokens: np.ndarray, block_tokens: int) -> np.ndarray:
    """Chained block hashes of every row of a token matrix, vectorised.

    Row-for-row equal to ``repro.runtime.block_store.chain_block_hashes``:
    the same polynomial (multiplier 1000003, seed 0x9E3779B97F4A7C15) over
    the same ``(token + 1)`` terms, with uint64 wraparound standing in for
    the mod-``2**64`` reduction.  Each block's contribution is a dot product
    with the precomputed multiplier powers; the sequential part is one
    multiply-add per *block*, vectorised across rows.
    """
    num_rows, width = tokens.shape
    num_blocks = width // block_tokens
    multiplier = 1000003
    modulus = 2**64
    powers = np.array(
        [pow(multiplier, block_tokens - 1 - j, modulus) for j in range(block_tokens)],
        dtype=np.uint64,
    )
    step = np.uint64(pow(multiplier, block_tokens, modulus))
    values = (
        tokens[:, : num_blocks * block_tokens].astype(np.uint64) + np.uint64(1)
    ).reshape(num_rows, num_blocks, block_tokens)
    contributions = (values * powers).sum(axis=2, dtype=np.uint64)
    hashes = np.empty((num_rows, num_blocks), dtype=np.uint64)
    value = np.full(num_rows, 0x9E3779B97F4A7C15, dtype=np.uint64)
    for block_index in range(num_blocks):
        value = value * step + contributions[:, block_index]
        hashes[:, block_index] = value
    return hashes


def _chat_prefix_hash_rows(
    spec: ChatWorkloadSpec,
    num_sessions: int,
    seed: int,
    block_tokens: int,
) -> np.ndarray:
    """Per-session block-hash rows covering the final turn's prompt.

    Returns a ``(num_sessions, max_prompt // block_tokens)`` uint64 matrix;
    a turn-``t`` request's chain is the first ``input_len // block_tokens``
    entries of its session's row (turn prompts are strict prefixes of one
    another).  Token matrices are built per session chunk and discarded, so
    peak transient memory is bounded by the chunk, not the stream.
    """
    max_prompt = spec.prompt_len_at_turn(spec.turns_per_session - 1)
    num_blocks = max_prompt // block_tokens
    hashes = np.empty((num_sessions, num_blocks), dtype=np.uint64)
    if num_blocks == 0:
        return hashes
    system = np.array(_chat_system_tokens(spec, seed), dtype=np.int64)
    hashed_len = num_blocks * block_tokens
    system_part = min(len(system), hashed_len)
    draw_count = hashed_len - system_part
    for start in range(0, num_sessions, _HASH_CHUNK_SESSIONS):
        stop = min(start + _HASH_CHUNK_SESSIONS, num_sessions)
        tokens = np.empty((stop - start, hashed_len), dtype=np.int64)
        tokens[:, :system_part] = system[:system_part]
        if draw_count:
            for offset, session in enumerate(range(start, stop)):
                rng = np.random.default_rng([seed, 0x5E55, session])
                tokens[offset, system_part:] = rng.integers(
                    0, _VOCAB_SIZE, draw_count
                )
        hashes[start:stop] = _hash_token_row_matrix(tokens, block_tokens)
    return hashes


# ----------------------------------------------------------------------
# Columnar generation (the streaming hot path)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RequestColumns:
    """A request stream as parallel numpy columns instead of objects.

    The hot-path counterpart of :func:`generate_requests`: lengths (and,
    for chat, session ids) are produced vectorised in one shot, and
    :meth:`iter_requests` materialises :class:`Request` objects lazily —
    one at a time, as the serving loop consumes them — so a million-long
    stream never exists as a million simultaneous objects.

    Prompt *content* travels as prefix identity, not token ids: chat
    streams built with ``prefix_block_tokens`` carry one uint64 block-hash
    row per session (``prefix_hash_rows``), and each emitted request gets
    the row slice covering its prompt plus a ``token_source`` that can
    regenerate the full token tuple on demand.  The serving hot path
    (admission, prefix matching, cache-aware routing) consumes the hash
    chains directly; token ids only materialise if somebody actually reads
    ``Request.token_ids``.  Everything else (length distributions, the
    forced-max first request, chat's deterministic per-turn lengths and
    turn-major session order) matches the object path value-for-value.
    """

    input_lens: np.ndarray
    generation_lens: np.ndarray
    session_ids: np.ndarray | None = None
    prefix_hash_rows: np.ndarray | None = None
    prefix_block_tokens: int | None = None
    system_tokens: tuple[int, ...] | None = None
    seed: int | None = None

    def __len__(self) -> int:
        return len(self.input_lens)

    def iter_requests(self) -> Iterator[Request]:
        """Yield :class:`Request` objects one at a time, in stream order."""
        input_lens = self.input_lens.tolist()
        generation_lens = self.generation_lens.tolist()
        if self.session_ids is None:
            for input_len, generation_len in zip(input_lens, generation_lens):
                yield Request(input_len=input_len, generation_len=generation_len)
        elif self.prefix_hash_rows is None:
            for input_len, generation_len, session in zip(
                input_lens, generation_lens, self.session_ids.tolist()
            ):
                yield Request(
                    input_len=input_len,
                    generation_len=generation_len,
                    session_id=session,
                )
        else:
            block_tokens = self.prefix_block_tokens
            hash_rows = self.prefix_hash_rows
            system_tokens = self.system_tokens
            system_len = len(system_tokens)
            for input_len, generation_len, session in zip(
                input_lens, generation_lens, self.session_ids.tolist()
            ):
                chain = tuple(
                    hash_rows[session, : input_len // block_tokens].tolist()
                )
                yield Request(
                    input_len=input_len,
                    generation_len=generation_len,
                    session_id=session,
                    prefix_hashes=chain,
                    prefix_block_tokens=block_tokens,
                    token_source=partial(
                        _resolve_chat_tokens,
                        system_tokens,
                        self.seed,
                        session,
                        input_len - system_len,
                    ),
                )

    def materialize(self) -> list[Request]:
        """Eager list form (for tests and small streams)."""
        return list(self.iter_requests())


def generate_request_columns(
    spec: WorkloadSpec,
    count: int | None = None,
    seed: int = 0,
    prefix_block_tokens: int | None = None,
) -> RequestColumns:
    """Vectorised :func:`generate_requests`: columns, not objects.

    Non-chat workloads draw the same ``np.random.default_rng(seed)``
    length sample as the object path (and force the first request to the
    spec maximum the same way).  Chat prompt lengths are deterministic
    arithmetic in the turn index, so the columns are built directly with
    ``np.repeat``/``np.tile`` in the object path's turn-major emission
    order.  Passing ``prefix_block_tokens`` additionally hashes each
    session's token stream into a shared uint64 block-hash row (vectorised,
    chunked) so emitted chat requests carry their prefix chain plus a lazy
    token source — bit-identical content identity to the object path
    without materialising any token list up front.
    """
    count = count if count is not None else spec.num_requests
    require_positive_int("count", count)
    if isinstance(spec, ChatWorkloadSpec):
        num_sessions = max(spec.num_sessions, -(-count // spec.turns_per_session))
        turn_lens = np.array(
            [
                spec.system_prompt_len
                + turn * (spec.user_turn_len + spec.generation_len)
                + spec.user_turn_len
                for turn in range(spec.turns_per_session)
            ],
            dtype=np.int64,
        )
        input_lens = np.repeat(turn_lens, num_sessions)[:count]
        session_ids = np.tile(
            np.arange(num_sessions, dtype=np.int64), spec.turns_per_session
        )[:count]
        generation_lens = np.full(count, spec.generation_len, dtype=np.int64)
        if prefix_block_tokens is not None:
            require_positive_int("prefix_block_tokens", prefix_block_tokens)
            return RequestColumns(
                input_lens=input_lens,
                generation_lens=generation_lens,
                session_ids=session_ids,
                prefix_hash_rows=_chat_prefix_hash_rows(
                    spec, num_sessions, seed, prefix_block_tokens
                ),
                prefix_block_tokens=prefix_block_tokens,
                system_tokens=_chat_system_tokens(spec, seed),
                seed=seed,
            )
        return RequestColumns(
            input_lens=input_lens,
            generation_lens=generation_lens,
            session_ids=session_ids,
        )
    rng = np.random.default_rng(seed)
    lengths = _sample_lengths(spec, count, rng)
    if count > 1:
        lengths[0] = spec.max_prompt_len
    generation_lens = np.full(count, spec.generation_len, dtype=np.int64)
    return RequestColumns(input_lens=lengths, generation_lens=generation_lens)
