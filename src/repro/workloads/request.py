"""Request, micro-batch and batch datatypes.

A :class:`Request` is a single prompt plus a target generation length.  A
:class:`MicroBatch` is the unit that a single kernel launch processes on the
GPU (size ``μ`` in the paper); a :class:`Batch` is a collection of
micro-batches processed in one pass of the whole model (size ``N``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_non_negative, require_positive_int

_request_counter = itertools.count()


@dataclass(frozen=True)
class Request:
    """A single inference request.

    ``input_len`` is the prompt length in tokens; ``generation_len`` the
    number of tokens to decode.  ``padded_len`` records the length the
    request is padded to under padding-based systems (FlexGen and
    MoE-Lightning(p)); it defaults to the true ``input_len``.

    Prompt content can be carried three ways, cheapest first:

    * ``prefix_hashes`` — the chained block-hash prefix of the prompt at
      ``prefix_block_tokens`` tokens per block, as produced by
      ``repro.runtime.block_store.chain_block_hashes``.  This is the only
      content identity the serving hot path (admission, prefix matching,
      cache-aware routing) needs, and for chat workloads it is a slice of
      a per-session hash row shared across turns.
    * ``token_source`` — a zero-argument callable that regenerates the
      full token tuple on demand.  ``token_ids`` then materialises lazily
      on first read and is cached; nothing is paid if nobody reads it.
    * ``token_ids`` — the eager token tuple, as before.
    """

    input_len: int
    generation_len: int
    request_id: int = field(default_factory=lambda: next(_request_counter))
    padded_len: int | None = None
    session_id: int | None = None
    token_ids: tuple[int, ...] | None = None
    prefix_hashes: tuple[int, ...] | None = field(
        default=None, repr=False, compare=False
    )
    prefix_block_tokens: int | None = field(
        default=None, repr=False, compare=False
    )
    token_source: Callable[[], Sequence[int]] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        require_positive_int("input_len", self.input_len)
        require_positive_int("generation_len", self.generation_len)
        if self.padded_len is not None and self.padded_len < self.input_len:
            raise ConfigurationError(
                f"padded_len ({self.padded_len}) must be >= input_len "
                f"({self.input_len})"
            )
        # Read the raw slot, not the property: validation must not trigger
        # lazy materialisation.
        token_ids = self.__dict__.get("token_ids")
        if token_ids is not None and len(token_ids) != self.input_len:
            raise ConfigurationError(
                f"token_ids holds {len(token_ids)} tokens but input_len "
                f"is {self.input_len}"
            )
        if self.prefix_hashes is not None and self.prefix_block_tokens is None:
            raise ConfigurationError(
                "prefix_hashes requires prefix_block_tokens"
            )

    @property
    def session_key(self) -> int:
        """Stable key for session-affinity routing.

        Session ids and the sessionless request-id fallback live in disjoint
        key spaces (a tag bit in the LSB), so ``session_id=5`` can never
        collide with a sessionless request whose ``request_id`` is 5.
        """
        if self.session_id is not None:
            return (self.session_id << 1) | 1
        return self.request_id << 1

    @property
    def effective_input_len(self) -> int:
        """Prompt length as seen by the system (padded if padding applies)."""
        return self.padded_len if self.padded_len is not None else self.input_len

    @property
    def total_len(self) -> int:
        """Prompt plus generated tokens (final KV-cache length)."""
        return self.effective_input_len + self.generation_len

    def block_hash_chain(self, block_tokens: int) -> tuple[int, ...] | None:
        """Chained block hashes of the prompt at ``block_tokens`` per block.

        Returns the stored ``prefix_hashes`` when they were computed at the
        same block size (no token materialisation), falls back to hashing
        ``token_ids``, and returns ``None`` when the request carries no
        content identity at all.
        """
        if (
            self.prefix_hashes is not None
            and self.prefix_block_tokens == block_tokens
        ):
            return self.prefix_hashes
        token_ids = self.token_ids
        if token_ids is None:
            return None
        # Local import: workloads must stay importable without runtime/.
        from repro.runtime.block_store import chain_block_hashes

        return tuple(chain_block_hashes(token_ids, block_tokens))

    def padded_to(self, length: int) -> "Request":
        """Return a copy of this request padded to ``length`` tokens."""
        if length < self.input_len:
            raise ConfigurationError(
                f"cannot pad request of length {self.input_len} to {length}"
            )
        return Request(
            input_len=self.input_len,
            generation_len=self.generation_len,
            request_id=self.request_id,
            padded_len=length,
            session_id=self.session_id,
            token_ids=self.__dict__.get("token_ids"),
            prefix_hashes=self.prefix_hashes,
            prefix_block_tokens=self.prefix_block_tokens,
            token_source=self.token_source,
        )


def _request_token_ids_get(self: Request) -> tuple[int, ...] | None:
    tokens = self.__dict__.get("token_ids")
    if tokens is None:
        source = self.__dict__.get("token_source")
        if source is not None:
            tokens = tuple(source())
            if len(tokens) != self.input_len:
                raise ConfigurationError(
                    f"token_source produced {len(tokens)} tokens but "
                    f"input_len is {self.input_len}"
                )
            self.__dict__["token_ids"] = tokens
    return tokens


def _request_token_ids_set(self: Request, value: tuple[int, ...] | None) -> None:
    self.__dict__["token_ids"] = value


# ``token_ids`` is a data descriptor so lazy requests materialise on first
# read.  The frozen dataclass ``__init__`` assigns via ``object.__setattr__``,
# which routes through the property setter into the instance dict; direct
# attribute assignment still raises FrozenInstanceError as before.
Request.token_ids = property(  # type: ignore[assignment]
    _request_token_ids_get, _request_token_ids_set
)


@dataclass
class MicroBatch:
    """A group of requests executed together by a single kernel launch."""

    requests: list[Request] = field(default_factory=list)
    micro_batch_id: int = 0

    @property
    def size(self) -> int:
        """Number of requests (= rows) in the micro-batch."""
        return len(self.requests)

    @property
    def total_input_tokens(self) -> int:
        """Sum of effective prompt lengths across requests."""
        return sum(req.effective_input_len for req in self.requests)

    @property
    def max_input_len(self) -> int:
        """Longest effective prompt in the micro-batch (0 when empty)."""
        return max((req.effective_input_len for req in self.requests), default=0)

    @property
    def max_total_len(self) -> int:
        """Longest final sequence (prompt + generation) in the micro-batch."""
        return max((req.total_len for req in self.requests), default=0)

    def total_kv_tokens(self, decoded_tokens: int = 0) -> int:
        """Tokens held in the KV cache after ``decoded_tokens`` decode steps."""
        require_non_negative("decoded_tokens", decoded_tokens)
        return sum(
            min(req.effective_input_len + decoded_tokens, req.total_len)
            for req in self.requests
        )

    def add(self, request: Request) -> None:
        """Append a request to the micro-batch."""
        self.requests.append(request)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)


@dataclass
class Batch:
    """A full batch: the micro-batches processed in one pass of the model."""

    micro_batches: list[MicroBatch] = field(default_factory=list)

    @classmethod
    def from_requests(
        cls, requests: Sequence[Request], micro_batch_size: int
    ) -> "Batch":
        """Split ``requests`` into consecutive micro-batches of equal size."""
        require_positive_int("micro_batch_size", micro_batch_size)
        micro_batches = []
        for index, start in enumerate(range(0, len(requests), micro_batch_size)):
            chunk = list(requests[start : start + micro_batch_size])
            micro_batches.append(MicroBatch(requests=chunk, micro_batch_id=index))
        return cls(micro_batches=micro_batches)

    @property
    def num_micro_batches(self) -> int:
        """Number of micro-batches in the batch."""
        return len(self.micro_batches)

    @property
    def num_requests(self) -> int:
        """Total requests across all micro-batches (the batch size ``N``)."""
        return sum(mb.size for mb in self.micro_batches)

    @property
    def max_micro_batch_size(self) -> int:
        """Largest micro-batch size (the ``μ`` the kernels must handle)."""
        return max((mb.size for mb in self.micro_batches), default=0)

    @property
    def generation_len(self) -> int:
        """Maximum generation length across all requests in the batch."""
        return max(
            (req.generation_len for mb in self.micro_batches for req in mb),
            default=0,
        )

    def all_requests(self) -> list[Request]:
        """Flat list of every request in the batch."""
        return [req for mb in self.micro_batches for req in mb]

    def total_kv_tokens(self, decoded_tokens: int = 0) -> int:
        """KV-cache tokens across the whole batch after some decode steps."""
        return sum(mb.total_kv_tokens(decoded_tokens) for mb in self.micro_batches)

    def __iter__(self) -> Iterator[MicroBatch]:
        return iter(self.micro_batches)

    def __len__(self) -> int:
        return len(self.micro_batches)


def total_generated_tokens(requests: Iterable[Request]) -> int:
    """Total number of tokens that will be generated for ``requests``."""
    return sum(req.generation_len for req in requests)
