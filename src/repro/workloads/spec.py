"""Workload specification used by the performance model and the optimizer.

The paper's performance model takes the workload as an *average* prompt
length ``s`` and a generation length ``n`` (Table 1).  The specification here
also carries the maximum prompt length (needed by padding-based baselines,
which pad every request in a batch to the maximum) and the number of
requests available, so end-to-end harnesses can materialise a request list.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class WorkloadSpec:
    """A batch-inference workload.

    Attributes
    ----------
    name:
        Workload identifier (e.g. ``"mtbench"``).
    avg_prompt_len:
        Average prompt length ``s`` in tokens.
    max_prompt_len:
        Maximum prompt length; padding-based systems pad to this value.
    generation_len:
        Number of tokens to generate per request ``n``.
    num_requests:
        Number of requests available (the paper replicates MTBench "into
        thousands of questions"); harnesses may draw fewer.
    """

    name: str
    avg_prompt_len: int
    max_prompt_len: int
    generation_len: int
    num_requests: int = 1000

    def __post_init__(self) -> None:
        require_positive_int("avg_prompt_len", self.avg_prompt_len)
        require_positive_int("max_prompt_len", self.max_prompt_len)
        require_positive_int("generation_len", self.generation_len)
        require_positive_int("num_requests", self.num_requests)
        if self.max_prompt_len < self.avg_prompt_len:
            raise ConfigurationError(
                f"max_prompt_len ({self.max_prompt_len}) must be >= "
                f"avg_prompt_len ({self.avg_prompt_len})"
            )

    @property
    def avg_total_len(self) -> int:
        """Average final sequence length (prompt + generated tokens)."""
        return self.avg_prompt_len + self.generation_len

    @property
    def padded_total_len(self) -> int:
        """Final sequence length when every request is padded to the max."""
        return self.max_prompt_len + self.generation_len

    def effective_prompt_len(self, padded: bool) -> int:
        """Prompt length the performance model should use.

        Padding-based systems (FlexGen, MoE-Lightning(p)) pay for the maximum
        prompt length on every request; systems with variable-length batching
        pay only for the average.
        """
        return self.max_prompt_len if padded else self.avg_prompt_len

    def with_generation_len(self, generation_len: int) -> "WorkloadSpec":
        """Copy of this workload with a different generation length."""
        require_positive_int("generation_len", generation_len)
        return replace(self, generation_len=generation_len)

    def with_num_requests(self, num_requests: int) -> "WorkloadSpec":
        """Copy of this workload with a different request count."""
        require_positive_int("num_requests", num_requests)
        return replace(self, num_requests=num_requests)

    def describe(self) -> str:
        """Human-readable one-line summary used by reports."""
        return (
            f"{self.name}: avg prompt {self.avg_prompt_len}, max prompt "
            f"{self.max_prompt_len}, gen len {self.generation_len}, "
            f"{self.num_requests} requests"
        )
