"""Workload specification used by the performance model and the optimizer.

The paper's performance model takes the workload as an *average* prompt
length ``s`` and a generation length ``n`` (Table 1).  The specification here
also carries the maximum prompt length (needed by padding-based baselines,
which pad every request in a batch to the maximum) and the number of
requests available, so end-to-end harnesses can materialise a request list.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.errors import ConfigurationError
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class WorkloadSpec:
    """A batch-inference workload.

    Attributes
    ----------
    name:
        Workload identifier (e.g. ``"mtbench"``).
    avg_prompt_len:
        Average prompt length ``s`` in tokens.
    max_prompt_len:
        Maximum prompt length; padding-based systems pad to this value.
    generation_len:
        Number of tokens to generate per request ``n``.
    num_requests:
        Number of requests available (the paper replicates MTBench "into
        thousands of questions"); harnesses may draw fewer.
    """

    name: str
    avg_prompt_len: int
    max_prompt_len: int
    generation_len: int
    num_requests: int = 1000

    def __post_init__(self) -> None:
        require_positive_int("avg_prompt_len", self.avg_prompt_len)
        require_positive_int("max_prompt_len", self.max_prompt_len)
        require_positive_int("generation_len", self.generation_len)
        require_positive_int("num_requests", self.num_requests)
        if self.max_prompt_len < self.avg_prompt_len:
            raise ConfigurationError(
                f"max_prompt_len ({self.max_prompt_len}) must be >= "
                f"avg_prompt_len ({self.avg_prompt_len})"
            )

    @property
    def avg_total_len(self) -> int:
        """Average final sequence length (prompt + generated tokens)."""
        return self.avg_prompt_len + self.generation_len

    @property
    def padded_total_len(self) -> int:
        """Final sequence length when every request is padded to the max."""
        return self.max_prompt_len + self.generation_len

    def effective_prompt_len(self, padded: bool) -> int:
        """Prompt length the performance model should use.

        Padding-based systems (FlexGen, MoE-Lightning(p)) pay for the maximum
        prompt length on every request; systems with variable-length batching
        pay only for the average.
        """
        return self.max_prompt_len if padded else self.avg_prompt_len

    def with_generation_len(self, generation_len: int) -> "WorkloadSpec":
        """Copy of this workload with a different generation length."""
        require_positive_int("generation_len", generation_len)
        return replace(self, generation_len=generation_len)

    def with_num_requests(self, num_requests: int) -> "WorkloadSpec":
        """Copy of this workload with a different request count."""
        require_positive_int("num_requests", num_requests)
        return replace(self, num_requests=num_requests)

    def describe(self) -> str:
        """Human-readable one-line summary used by reports."""
        return (
            f"{self.name}: avg prompt {self.avg_prompt_len}, max prompt "
            f"{self.max_prompt_len}, gen len {self.generation_len}, "
            f"{self.num_requests} requests"
        )


@dataclass(frozen=True)
class ChatWorkloadSpec(WorkloadSpec):
    """A multi-turn chat workload: sessions with growing shared prefixes.

    Every session opens with the *same* system prompt of
    ``system_prompt_len`` tokens; each turn appends a ``user_turn_len``-token
    user message, and the assistant's ``generation_len``-token reply is woven
    into the next turn's prompt.  Turn ``t`` of a session therefore prompts
    with ``system + t * (user_turn_len + generation_len) + user_turn_len``
    tokens, of which everything up to the final user message is a prefix of
    turn ``t + 1`` — the structure a prefix cache exists to exploit.
    """

    num_sessions: int = 8
    turns_per_session: int = 4
    system_prompt_len: int = 64
    user_turn_len: int = 32

    def __post_init__(self) -> None:
        super().__post_init__()
        require_positive_int("num_sessions", self.num_sessions)
        require_positive_int("turns_per_session", self.turns_per_session)
        require_positive_int("system_prompt_len", self.system_prompt_len)
        require_positive_int("user_turn_len", self.user_turn_len)

    def prompt_len_at_turn(self, turn: int) -> int:
        """Prompt length of any session's ``turn``-th request (0-based)."""
        if turn < 0 or turn >= self.turns_per_session:
            raise ConfigurationError(
                f"turn must be in [0, {self.turns_per_session}), got {turn}"
            )
        history = turn * (self.user_turn_len + self.generation_len)
        return self.system_prompt_len + history + self.user_turn_len
