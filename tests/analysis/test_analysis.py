"""Tests for the analysis helpers (HRM case studies, bottlenecks, scaling)."""


from repro.analysis import (
    attention_case_study,
    classify_policy,
    compare_schedules,
    ffn_case_study,
    sweep_batch_size,
    tensor_parallel_scaling,
)
from repro.core.policy import Policy
from repro.workloads import mtbench


def test_attention_case_study_prefers_cpu(mixtral, l4_node):
    """Fig. 4: fp16 and int4 GQA decode attention sit below P1 on the L4."""
    study = attention_case_study(mixtral, l4_node, context_len=512)
    assert study.prefer_cpu["float16"]
    assert study.prefer_cpu["int4"]
    assert study.intensities["int4"] > study.intensities["float16"]
    for dtype in ("float16", "int4"):
        assert study.intensities[dtype] < study.p1_intensity[dtype]
    rows = study.as_rows()
    assert len(rows) == 2 and {"kv_dtype", "prefer_cpu"} <= set(rows[0])


def test_ffn_case_study_turning_points_and_saturation(mixtral, l4_node):
    """Fig. 5: performance climbs along the interconnect roof and saturates."""
    study = ffn_case_study(mixtral, l4_node, micro_batch_size=128)
    assert study.p1_intensity < study.p2_intensity
    assert study.attainable == sorted(study.attainable)
    assert study.bottlenecks[0] == "interconnect"
    assert study.bottlenecks[-1] != "interconnect"
    assert study.balance_batch_size is not None
    assert study.attainable[-1] <= study.kernel_performance * 1.001


def test_ffn_case_study_smaller_micro_batch_lowers_ceiling(mixtral, l4_node):
    large = ffn_case_study(mixtral, l4_node, micro_batch_size=128)
    small = ffn_case_study(mixtral, l4_node, micro_batch_size=16)
    assert small.kernel_performance < large.kernel_performance


def test_classify_policy_reports_bottleneck(mixtral, t4_node):
    workload = mtbench(generation_len=64)
    policy = Policy(
        batch_size=512, micro_batch_size=64, attention_on_gpu=False,
        ffn_on_gpu=True, weights_gpu_ratio=0.05,
    )
    report = classify_policy(mixtral, t4_node, workload, policy, padded=True)
    assert report.pipeline_bottleneck in ("htod", "gpu", "cpu", "dtoh")
    assert 0 <= report.gpu_memory_utilization
    assert report.capacity_bound in ("gpu", "cpu", "gpu+cpu", "none")
    assert report.throughput > 0


def test_sweep_batch_size_shows_cpu_memory_fill(mixtral, t4_node):
    workload = mtbench(generation_len=64)
    base = Policy(batch_size=64, micro_batch_size=64, attention_on_gpu=False)
    reports = sweep_batch_size(
        mixtral, t4_node, workload, base, batch_sizes=[64, 512, 2048], padded=True
    )
    utils = [r.cpu_memory_utilization for r in reports]
    assert utils == sorted(utils)
    assert reports[-1].throughput > reports[0].throughput


def test_compare_schedules_orders_cgopipe_first(mixtral, t4_node):
    policy = Policy(
        batch_size=480, micro_batch_size=96, attention_on_gpu=False,
        ffn_on_gpu=True, weights_gpu_ratio=0.05,
    )
    results = compare_schedules(
        mixtral, t4_node, policy, context_len=400, max_sim_layers=3
    )
    assert [r.schedule for r in results] == [
        "cgopipe", "fastdecode", "flexgen_cpu", "flexgen",
    ]
    for result in results:
        assert result.step_time > 0
        assert result.gantt  # ASCII rendering produced
        assert set(result.as_row()) >= {"schedule", "step_time_ms", "gpu_util"}


def test_tensor_parallel_scaling_improves_for_padded_mixtral_8x22b(
    mixtral_8x22b, multi_t4_node
):
    """Fig. 7 S6 vs S7: adding GPUs raises MoE-Lightning(p)'s throughput.

    The gain is driven by the larger resident-weight fraction the extra GPU
    memory allows; the paper observes a super-linear factor on its testbed,
    while the PCIe-bound analytical substrate reproduces the direction with a
    smaller factor (documented in EXPERIMENTS.md).
    """
    base = multi_t4_node.with_tensor_parallel(1)
    workload = mtbench(generation_len=64)
    points = tensor_parallel_scaling(
        mixtral_8x22b, base, workload, tp_sizes=(2, 4), padded=True,
        max_sim_layers=3, simulate=False,
    )
    assert [p.tp_size for p in points] == [2, 4]
    speedup = points[1].speedup_over(points[0])
    assert speedup > 1.05
    assert points[1].weights_gpu_ratio > points[0].weights_gpu_ratio
