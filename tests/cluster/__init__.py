"""Tests for the cluster abstraction (specs and partition plans)."""
