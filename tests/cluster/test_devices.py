"""DeviceSpec / heterogeneous ClusterSpec: validation, roles, load states."""

import pytest

from repro.cluster.spec import ClusterSpec, DeviceSpec
from repro.utils.errors import ConfigurationError


@pytest.fixture()
def devices(t4_node, l4_node):
    return [
        DeviceSpec(device_id=0, node=l4_node, role="prefill"),
        DeviceSpec(device_id=1, node=t4_node, role="decode"),
    ]


class TestDeviceSpecValidation:
    def test_defaults_are_ready_unified(self, t4_node):
        device = DeviceSpec(device_id=0, node=t4_node)
        assert device.role == "unified"
        assert device.state == "ready"
        assert device.ready_at == 0.0
        assert device.serves

    def test_unknown_role_rejected(self, t4_node):
        with pytest.raises(ConfigurationError, match="role"):
            DeviceSpec(device_id=0, node=t4_node, role="prefil")

    def test_unknown_state_rejected(self, t4_node):
        with pytest.raises(ConfigurationError, match="state"):
            DeviceSpec(device_id=0, node=t4_node, state="warming")

    def test_multi_gpu_node_rejected(self, multi_t4_node):
        with pytest.raises(ConfigurationError, match="tp_size"):
            DeviceSpec(device_id=0, node=multi_t4_node)

    def test_ready_device_cannot_have_future_ready_at(self, t4_node):
        with pytest.raises(ConfigurationError, match="ready_at"):
            DeviceSpec(device_id=0, node=t4_node, ready_at=5.0)

    def test_loading_device_serves_after_ready_at(self, t4_node):
        device = DeviceSpec(
            device_id=0, node=t4_node, state="loading", ready_at=30.0
        )
        assert device.serves
        assert device.ready_at == 30.0

    def test_no_model_device_never_serves(self, t4_node):
        device = DeviceSpec(device_id=0, node=t4_node, state="no-model")
        assert not device.serves


class TestOfDevices:
    def test_empty_device_list_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ClusterSpec.of_devices([])

    def test_heterogeneous_and_disaggregated_views(self, devices):
        cluster = ClusterSpec.of_devices(devices)
        assert cluster.num_devices == 2
        assert cluster.is_heterogeneous
        assert cluster.is_disaggregated
        assert cluster.device(0).role == "prefill"
        assert cluster.device(1).role == "decode"
        assert cluster.device_hardware(0).gpu.name != (
            cluster.device_hardware(1).gpu.name
        )

    def test_homogeneous_unified_cluster_is_neither(self, t4_node):
        cluster = ClusterSpec.of_devices(
            [DeviceSpec(device_id=i, node=t4_node) for i in range(3)]
        )
        assert not cluster.is_heterogeneous
        assert not cluster.is_disaggregated

    def test_mixing_unified_with_phase_roles_rejected(self, t4_node):
        with pytest.raises(ConfigurationError):
            ClusterSpec.of_devices(
                [
                    DeviceSpec(device_id=0, node=t4_node, role="unified"),
                    DeviceSpec(device_id=1, node=t4_node, role="prefill"),
                ]
            )

    def test_disaggregated_cluster_needs_both_pools(self, t4_node):
        with pytest.raises(ConfigurationError):
            ClusterSpec.of_devices(
                [
                    DeviceSpec(device_id=i, node=t4_node, role="prefill")
                    for i in range(2)
                ]
            )

    def test_scalar_cluster_synthesizes_ready_devices(self, t4_node):
        cluster = ClusterSpec.scale_out(t4_node, 2)
        device = cluster.device(1)
        assert device.role == "unified"
        assert device.serves
        assert device.ready_at == 0.0

    def test_device_id_out_of_range(self, devices):
        cluster = ClusterSpec.of_devices(devices)
        with pytest.raises(ConfigurationError, match="out of range"):
            cluster.device(2)
