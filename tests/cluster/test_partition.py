"""PartitionPlan: shape validation, byte accounting, collective traffic."""

import pytest

from repro.cluster import ClusterSpec, PartitionPlan
from repro.core.policy import Policy
from repro.models.memory import kv_cache_bytes_per_token, model_weight_bytes
from repro.utils.errors import ConfigurationError


@pytest.fixture
def cluster4(multi_t4_node):
    return ClusterSpec.from_hardware(multi_t4_node)


def test_degrees_must_cover_devices(cluster4):
    with pytest.raises(ConfigurationError):
        PartitionPlan(cluster=cluster4, tp_size=3)
    plan = PartitionPlan(cluster=cluster4, tp_size=2, ep_size=2)
    assert plan.num_shards == 4


def test_validate_model_checks_divisibility(cluster4, mixtral):
    PartitionPlan(cluster=cluster4, tp_size=4).validate_model(mixtral)
    with pytest.raises(ConfigurationError):
        # Mixtral has 8 experts; 3 expert-parallel groups cannot split them
        # (a 3-device cluster is needed to even build the plan).
        PartitionPlan(
            cluster=ClusterSpec.from_hardware(
                multi_node_with(cluster4.node, 3)
            ),
            tp_size=1,
            ep_size=3,
        ).validate_model(mixtral)


def multi_node_with(node, count):
    from dataclasses import replace

    return replace(node, tp_size=count, name=f"{count}x{node.gpu.name}")


def test_shard_bytes_divide_evenly(cluster4, dbrx):
    plan = PartitionPlan(cluster=cluster4, tp_size=4)
    assert plan.shard_weight_bytes(dbrx) == model_weight_bytes(dbrx) / 4
    assert plan.shard_kv_bytes_per_token(dbrx) == (
        kv_cache_bytes_per_token(dbrx) / 4
    )


def test_shard_activations_keep_replicated_hidden(cluster4, mixtral):
    from repro.models.memory import activation_bytes

    plan = PartitionPlan(cluster=cluster4, tp_size=4)
    per_shard = plan.shard_activation_bytes(mixtral, 64)
    unsharded = activation_bytes(mixtral, 64)
    hidden = 2 * 64 * mixtral.hidden_size * mixtral.dtype.num_bytes
    # The hidden states are replicated on every shard, so a shard holds
    # strictly more than a quarter of the unsharded activations — but the
    # sharded projections keep it strictly below the whole.
    assert unsharded / 4 < per_shard < unsharded
    assert per_shard == pytest.approx(hidden + (unsharded - hidden) / 4)


def test_trivial_plan_moves_no_bytes(t4_node, mixtral):
    plan = PartitionPlan(cluster=ClusterSpec.single(t4_node), tp_size=1)
    policy = Policy(batch_size=8, micro_batch_size=8)
    traffic = plan.layer_collective_traffic(mixtral, policy, tokens=8)
    assert traffic.is_empty


def test_tensor_parallel_traffic_two_allreduces(cluster4, mixtral):
    plan = PartitionPlan(cluster=cluster4, tp_size=4)
    policy = Policy(batch_size=16, micro_batch_size=16, ffn_on_gpu=True)
    traffic = plan.layer_collective_traffic(mixtral, policy, tokens=16)
    hidden_bytes = 16 * mixtral.hidden_size * mixtral.dtype.num_bytes
    ring = 2.0 * 3 / 4 * hidden_bytes
    assert traffic.bytes_on_link == pytest.approx(2 * ring)
    assert traffic.launches == 4


def test_cpu_ffn_skips_ffn_collective(cluster4, mixtral):
    plan = PartitionPlan(cluster=cluster4, tp_size=4)
    gpu_ffn = Policy(batch_size=16, micro_batch_size=16, ffn_on_gpu=True)
    cpu_ffn = Policy(batch_size=16, micro_batch_size=16, ffn_on_gpu=False)
    assert plan.layer_collective_traffic(
        mixtral, cpu_ffn, tokens=16
    ).bytes_on_link < plan.layer_collective_traffic(
        mixtral, gpu_ffn, tokens=16
    ).bytes_on_link


def test_expert_parallel_adds_alltoall(cluster4, mixtral):
    tensor_only = PartitionPlan(cluster=cluster4, tp_size=4)
    expert = PartitionPlan(cluster=cluster4, tp_size=2, ep_size=2)
    policy = Policy(batch_size=16, micro_batch_size=16, ffn_on_gpu=True)
    t_traffic = tensor_only.layer_collective_traffic(mixtral, policy, 16)
    e_traffic = expert.layer_collective_traffic(mixtral, policy, 16)
    # Mixtral routes top-2: dispatch+combine all-to-alls dominate the saved
    # all-reduce, so expert parallelism moves more bytes here.
    assert e_traffic.bytes_on_link > t_traffic.bytes_on_link
