"""ClusterSpec: construction, aggregate/shard views, validation."""

import pytest

from repro.cluster import ClusterSpec, GPULinkSpec, nvlink, pcie_peer_link
from repro.hardware import get_hardware
from repro.utils.errors import ConfigurationError


def test_single_is_trivial(t4_node):
    cluster = ClusterSpec.single(t4_node)
    assert cluster.is_trivial
    assert cluster.num_devices == 1
    assert cluster.node == t4_node
    assert cluster.aggregate_hardware() == t4_node


def test_single_splits_aggregate_nodes(multi_t4_node):
    cluster = ClusterSpec.single(multi_t4_node)
    assert cluster.num_devices == multi_t4_node.tp_size == 4
    assert cluster.node.tp_size == 1


def test_from_hardware_round_trips_table1_symbols(multi_t4_node):
    cluster = ClusterSpec.from_hardware(multi_t4_node)
    aggregate = cluster.aggregate_hardware()
    assert aggregate.gpu_memory == multi_t4_node.gpu_memory
    assert aggregate.gpu_bandwidth == multi_t4_node.gpu_bandwidth
    assert aggregate.gpu_flops == multi_t4_node.gpu_flops
    assert aggregate.cpu_memory == multi_t4_node.cpu_memory
    assert aggregate.cpu_gpu_bandwidth == multi_t4_node.cpu_gpu_bandwidth
    assert aggregate.name == multi_t4_node.name


def test_node_must_hold_one_gpu(multi_t4_node):
    with pytest.raises(ConfigurationError):
        ClusterSpec(name="bad", node=multi_t4_node, num_devices=2)


def test_shared_host_shard_splits_host_resources(multi_t4_node):
    cluster = ClusterSpec.from_hardware(multi_t4_node)
    shard = cluster.shard_hardware()
    assert shard.gpu_memory == cluster.node.gpu.memory_bytes
    assert shard.cpu_memory == pytest.approx(multi_t4_node.cpu_memory / 4)
    assert shard.cpu_gpu_bandwidth == pytest.approx(
        multi_t4_node.cpu_gpu_bandwidth / 4
    )


def test_scale_out_shard_owns_whole_node(t4_node):
    cluster = ClusterSpec.scale_out(t4_node, 4)
    assert not cluster.host_shared
    assert cluster.shard_hardware() == t4_node
    aggregate = cluster.aggregate_hardware()
    assert aggregate.cpu_memory == pytest.approx(4 * t4_node.cpu_memory)
    assert aggregate.cpu_gpu_bandwidth == pytest.approx(
        4 * t4_node.cpu_gpu_bandwidth
    )


def test_links_validate():
    assert nvlink().bandwidth > pcie_peer_link().bandwidth
    with pytest.raises(ConfigurationError):
        GPULinkSpec(name="zero", bandwidth=0.0)
    with pytest.raises(ConfigurationError):
        GPULinkSpec(name="negative-latency", bandwidth=1e9, latency=-1.0)


def test_describe_mentions_link_and_count():
    cluster = ClusterSpec.from_hardware(get_hardware("2xT4"))
    text = cluster.describe()
    assert "2x" in text and "PCIe-P2P" in text
