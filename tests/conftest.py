"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.performance_model import EfficiencyModel
from repro.core.policy import Policy
from repro.hardware import get_hardware
from repro.models import get_model
from repro.workloads import mtbench, summarization, synthetic_reasoning


@pytest.fixture(scope="session")
def mixtral():
    """Mixtral 8x7B model configuration."""
    return get_model("mixtral-8x7b")


@pytest.fixture(scope="session")
def mixtral_8x22b():
    """Mixtral 8x22B model configuration."""
    return get_model("mixtral-8x22b")


@pytest.fixture(scope="session")
def dbrx():
    """DBRX model configuration."""
    return get_model("dbrx")


@pytest.fixture(scope="session")
def tiny_model():
    """The miniature MoE used by the functional engine tests."""
    return get_model("tiny-moe")


@pytest.fixture(scope="session")
def t4_node():
    """Single-T4 node (setting S1)."""
    return get_hardware("1xT4")


@pytest.fixture(scope="session")
def l4_node():
    """Single-L4 node (setting S2)."""
    return get_hardware("1xL4")


@pytest.fixture(scope="session")
def multi_t4_node():
    """4x T4 node (settings S7/S9)."""
    return get_hardware("4xT4")


@pytest.fixture(scope="session")
def mtbench_workload():
    """MTBench with the paper's default generation length of 128."""
    return mtbench(generation_len=128)


@pytest.fixture(scope="session")
def reasoning_workload():
    """HELM synthetic-reasoning workload."""
    return synthetic_reasoning()


@pytest.fixture(scope="session")
def summarization_workload():
    """HELM summarization workload."""
    return summarization()


@pytest.fixture(scope="session")
def efficiency():
    """The default efficiency (derating) model."""
    return EfficiencyModel()


@pytest.fixture
def cpu_attention_policy():
    """A CGOPipe-style policy (CPU attention, GPU FFN, streamed weights)."""
    return Policy(
        batch_size=256,
        micro_batch_size=64,
        attention_on_gpu=False,
        ffn_on_gpu=True,
        weights_gpu_ratio=0.05,
    )


@pytest.fixture
def gpu_attention_policy():
    """A FlexGen-style policy (GPU attention with KV swapping)."""
    return Policy(
        batch_size=256,
        micro_batch_size=64,
        attention_on_gpu=True,
        ffn_on_gpu=True,
        weights_gpu_ratio=0.05,
        kv_cache_gpu_ratio=0.0,
    )


@pytest.fixture
def rng():
    """Deterministic numpy random generator."""
    return np.random.default_rng(1234)
