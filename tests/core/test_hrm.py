"""Tests for the Hierarchical Roofline Model (Eqs. 4-11)."""

import pytest

from repro.core.hrm import (
    HierarchicalRoofline,
    MemoryLevel,
    balance_point_intensity,
    turning_point_p1,
    turning_point_p2,
)
from repro.utils.errors import ConfigurationError
from repro.utils.units import GB, TERA


@pytest.fixture
def gpu_level():
    return MemoryLevel(name="gpu", peak_flops=242 * TERA, peak_bandwidth=300 * GB, capacity_bytes=24 * GB)


@pytest.fixture
def cpu_level():
    return MemoryLevel(name="cpu", peak_flops=1.3 * TERA, peak_bandwidth=100 * GB, capacity_bytes=192 * GB)


@pytest.fixture
def hrm(gpu_level, cpu_level):
    return HierarchicalRoofline(gpu=gpu_level, cpu=cpu_level, cross_bandwidth=32 * GB)


def test_from_hardware_matches_manual_construction(l4_node, hrm):
    from_hw = HierarchicalRoofline.from_hardware(l4_node)
    assert from_hw.gpu.peak_flops == hrm.gpu.peak_flops
    assert from_hw.cpu.peak_bandwidth == hrm.cpu.peak_bandwidth
    assert from_hw.cross_bandwidth == hrm.cross_bandwidth


def test_attainable_is_min_of_three_roofs(hrm):
    roofs = hrm.roofs_on_gpu(gpu_intensity=10.0, cpu_intensity=5.0)
    assert roofs.attainable == pytest.approx(
        min(roofs.compute_roof, roofs.local_memory_roof, roofs.cross_memory_roof)
    )
    # At this point the interconnect (32 GB/s * 5) binds.
    assert roofs.bottleneck == "interconnect"
    assert roofs.attainable == pytest.approx(32 * GB * 5.0)


def test_cpu_execution_reduces_to_classic_roofline(hrm):
    # Eq. 8: min(P_peak, B * I).
    assert hrm.attainable_on_cpu(1.0) == pytest.approx(100 * GB)
    assert hrm.attainable_on_cpu(1e6) == pytest.approx(1.3 * TERA)


def test_turning_point_p1_definition(cpu_level):
    # Eq. 9 with a memory-bound CPU-side computation.
    intensity = 4.0
    p1 = turning_point_p1(cpu_level, cross_bandwidth=32 * GB, intensity_at_lower=intensity)
    assert p1 == pytest.approx(min(1.3 * TERA, 100 * GB * intensity) / (32 * GB))


def test_turning_point_p2_definition(gpu_level):
    intensity = 32.0
    p2 = turning_point_p2(gpu_level, cross_bandwidth=32 * GB, intensity_at_upper=intensity)
    assert p2 == pytest.approx(min(242 * TERA, 300 * GB * intensity) / (32 * GB))


def test_balance_point_equalises_roofs(gpu_level):
    gpu_intensity = 32.0
    balance = balance_point_intensity(gpu_level, 32 * GB, gpu_intensity)
    assert 300 * GB * gpu_intensity == pytest.approx(32 * GB * balance)


def test_p1_below_p2_for_l4_case_study(hrm):
    """In the Fig. 5 case study P1 sits left of P2."""
    gpu_intensity = 32.0  # MoE FFN at mu = 128 (roughly)
    cpu_intensity = 8.0
    assert hrm.p1(cpu_intensity) < hrm.p2(gpu_intensity)


def test_prefer_cpu_for_low_intensity_attention(hrm):
    """Fig. 4: fp16 GQA decode attention (I ~ 4) should stay on the CPU."""
    assert hrm.prefer_cpu(gpu_intensity=4.0, cpu_intensity=4.0)


def test_prefer_gpu_for_high_intensity(hrm):
    assert not hrm.prefer_cpu(gpu_intensity=1000.0, cpu_intensity=1000.0)


def test_sweep_cross_intensity_monotone_until_balance(hrm):
    sweep = hrm.sweep_cross_intensity(32.0, [1, 10, 100, 1000, 10000])
    assert all(b >= a - 1e-9 for a, b in zip(sweep, sweep[1:]))
    # Saturation: the last two points are equal (hit the GPU-side roof).
    assert sweep[-1] == pytest.approx(sweep[-2])


def test_classify_gpu_execution_names_bottleneck(hrm):
    assert hrm.classify_gpu_execution(32.0, 1.0) == "interconnect"
    assert hrm.classify_gpu_execution(32.0, 1e9) == "local_memory"
    assert hrm.classify_gpu_execution(1e9, 1e9) == "compute"


def test_hrm_rejects_inverted_hierarchy(gpu_level, cpu_level):
    with pytest.raises(ConfigurationError):
        HierarchicalRoofline(gpu=cpu_level, cpu=gpu_level, cross_bandwidth=32 * GB)
