"""Tests for the policy memory-constraint model."""

import pytest

from repro.core.memory_model import MemoryModel
from repro.core.policy import Policy
from repro.models.memory import model_weight_bytes
from repro.utils.errors import InfeasiblePolicyError


@pytest.fixture
def memory_model(mixtral, t4_node, mtbench_workload):
    return MemoryModel(model=mixtral, hardware=t4_node, workload=mtbench_workload, padded=True)


def test_usable_memory_applies_reserve(memory_model, t4_node):
    assert memory_model.usable_gpu_memory < t4_node.gpu_memory
    assert memory_model.usable_cpu_memory < t4_node.cpu_memory


def test_mixtral_does_not_fit_on_t4_gpu_alone(memory_model):
    """The premise of the paper: the model is far larger than GPU memory."""
    policy = Policy(batch_size=32, micro_batch_size=32, weights_gpu_ratio=1.0)
    usage = memory_model.usage(policy)
    assert not usage.gpu_fits
    assert usage.gpu.weights > memory_model.usable_gpu_memory


def test_streaming_policy_fits(memory_model):
    policy = Policy(batch_size=256, micro_batch_size=32, weights_gpu_ratio=0.0)
    usage = memory_model.usage(policy)
    assert usage.gpu_fits
    assert usage.cpu_fits
    assert usage.feasible


def test_kv_cache_charged_to_cpu_for_cpu_attention(memory_model):
    policy = Policy(batch_size=512, micro_batch_size=32, attention_on_gpu=False)
    usage = memory_model.usage(policy)
    assert usage.gpu.kv_cache == 0.0
    assert usage.cpu.kv_cache > 0.0
    assert usage.cpu.kv_cache == pytest.approx(memory_model.kv_cache_total_bytes(policy))


def test_kv_cache_split_follows_ratio(memory_model):
    policy = Policy(
        batch_size=512, micro_batch_size=32, attention_on_gpu=True, kv_cache_gpu_ratio=0.25
    )
    usage = memory_model.usage(policy)
    total = memory_model.kv_cache_total_bytes(policy)
    assert usage.gpu.kv_cache == pytest.approx(0.25 * total)
    assert usage.cpu.kv_cache == pytest.approx(0.75 * total)


def test_double_buffer_workspace_scales_with_streamed_fraction(memory_model):
    full_stream = Policy(batch_size=64, micro_batch_size=32, weights_gpu_ratio=0.0)
    half_stream = Policy(batch_size=64, micro_batch_size=32, weights_gpu_ratio=0.5)
    assert memory_model.gpu_usage(full_stream).workspace == pytest.approx(
        2 * memory_model.gpu_usage(half_stream).workspace
    )


def test_padding_increases_cpu_kv_footprint(mixtral, t4_node, mtbench_workload):
    policy = Policy(batch_size=512, micro_batch_size=32)
    padded = MemoryModel(mixtral, t4_node, mtbench_workload, padded=True)
    unpadded = MemoryModel(mixtral, t4_node, mtbench_workload, padded=False)
    # (418 + 128) / (77 + 128) = 2.66x more KV bytes per request when padding.
    assert padded.kv_cache_total_bytes(policy) > 2.5 * unpadded.kv_cache_total_bytes(policy)


def test_check_raises_for_infeasible_policy(memory_model, mtbench_workload):
    huge = Policy(batch_size=mtbench_workload.num_requests, micro_batch_size=64)
    if not memory_model.is_feasible(huge):
        with pytest.raises(InfeasiblePolicyError):
            memory_model.check(huge)


def test_max_weights_gpu_ratio_is_feasible_bound(memory_model):
    policy = Policy(batch_size=256, micro_batch_size=32)
    ratio = memory_model.max_weights_gpu_ratio(policy)
    assert 0.0 <= ratio <= 1.0
    assert memory_model.is_feasible(policy.with_weights_gpu_ratio(ratio))
    if ratio < 0.97:
        slightly_more = min(1.0, ratio + 0.03)
        assert not memory_model.gpu_usage(
            policy.with_weights_gpu_ratio(slightly_more)
        ).fits_within(memory_model.usable_gpu_memory)


def test_max_batch_size_respects_cpu_memory(memory_model, mixtral):
    policy = Policy(batch_size=64, micro_batch_size=64)
    max_batch = memory_model.max_batch_size(policy)
    assert max_batch > 64
    at_bound = policy.with_batch_size(max_batch)
    assert memory_model.cpu_usage(at_bound).total <= memory_model.usable_cpu_memory
    over = policy.with_batch_size(int(max_batch * 1.2))
    assert memory_model.cpu_usage(over).total > memory_model.usable_cpu_memory


def test_weights_dominate_cpu_footprint(memory_model, mixtral):
    policy = Policy(batch_size=64, micro_batch_size=64, weights_gpu_ratio=0.0)
    usage = memory_model.cpu_usage(policy)
    assert usage.weights == pytest.approx(model_weight_bytes(mixtral))
